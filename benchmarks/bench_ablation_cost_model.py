"""Ablation 1 — the GPU-aware cost model (paper Section III-A.2).

SAFARA prices candidates as count × latency; the Carr-Kennedy metric is
count only.  Setting every latency equal in the model degenerates the
ranking to count-only, isolating the cost model's contribution: under a
tight register budget the latency-aware ranking picks the *uncoalesced*
chain (the paper's Figure 5 argument: replacing b beats replacing a) and
wins on time.
"""

import pytest

from repro.analysis.cost_model import LatencyModel
from repro.feedback import optimize_region
from repro.gpu.registers import ptxas_info
from repro.gpu.timing import estimate_time
from repro.codegen import generate_kernel
from repro.ir import build_module
from repro.lang import parse_program

#: A kernel with one coalesced chain (more references) and one uncoalesced
#: chain (fewer references) — the paper's Figure 5 tension.  Both chains
#: need the same 4 registers, so a 4-register budget admits exactly one:
#: count-only ranking picks `coal` (3 refs), latency-aware picks `uncoal`.
SRC = """
kernel mixed(double out[1:ny][1:nx], const double coal[1:ny][1:nx],
             const double uncoal[1:nx][1:ny], int nx, int ny) {
  #pragma acc kernels loop gang vector(64)
  for (i = 2; i < nx - 1; i++) {
    #pragma acc loop seq
    for (j = 2; j < ny - 1; j++) {
      out[j][i] = coal[j][i] * coal[j][i] + coal[j-1][i]
                + uncoal[i][j] + uncoal[i][j-1];
    }
  }
}
"""

ENV = {"nx": 4096, "ny": 512}

#: Count-only ranking: all latencies identical.
FLAT = LatencyModel(
    global_mem=100.0,
    readonly_cache=100.0,
    constant_cache=100.0,
    shared_mem=100.0,
    local_mem=100.0,
    uncoalesced_factor=1.0,
    uniform_factor=1.0,
)


def _run(latency, budget_regs):
    fn = build_module(parse_program(SRC)).functions[0]
    region = fn.regions()[0]
    base_regs = ptxas_info(generate_kernel(region, fn.symtab)).registers
    optimize_region(
        fn.symtab and region,
        fn.symtab,
        register_limit=base_regs + budget_regs,
        latency=latency,
    )
    kernel = generate_kernel(region, fn.symtab)
    info = ptxas_info(kernel)
    return estimate_time(kernel, info, ENV).time_ms


def test_latency_aware_ranking_beats_count_only(benchmark):
    def run_both():
        # Budget fits exactly one span-1 double chain (4 registers).
        aware = _run(None, budget_regs=4)
        flat = _run(FLAT, budget_regs=4)
        return aware, flat

    aware, flat = benchmark.pedantic(run_both, iterations=1, rounds=1)
    # The latency-aware choice (the uncoalesced chain) is faster.
    assert aware < flat
    print(f"\nablation[cost-model]: latency-aware={aware:.3f}ms count-only={flat:.3f}ms "
          f"advantage={flat/aware:.2f}x")
