"""Ablation 2 — iterative assembler feedback (paper Section III-B.2).

The paper compiles the kernel repeatedly, reading PTXAS register usage
back each round, instead of guessing a register budget once.  This bench
compares the full iterative loop against a one-shot variant and against
blind fixed budgets, on the seismic flagship.
"""

from repro.bench import load_all
from repro.feedback import FeedbackCompiler, optimize_region
from repro.ir import build_module
from repro.lang import parse_program
from repro.transforms import apply_safara


def _seismic_region():
    spec, _ = load_all()
    src = spec.get("355.seismic").source
    fn = build_module(parse_program(src)).functions[0]
    return fn, fn.regions()[0]


def test_feedback_vs_one_shot(benchmark):
    def run():
        # Full iterative feedback.
        fn_a, region_a = _seismic_region()
        full, fb_full = optimize_region(region_a, fn_a.symtab)

        # One feedback round only.
        fn_b, region_b = _seismic_region()
        fb = FeedbackCompiler(symtab=fn_b.symtab)
        one_shot = apply_safara(region_b, fn_b.symtab, fb, max_iterations=1)
        return full, fb_full, one_shot

    full, fb_full, one_shot = benchmark.pedantic(run, iterations=1, rounds=1)

    # The iterative loop keeps compiling until nothing more fits.
    assert fb_full.compilations >= 2
    assert full.groups_replaced >= one_shot.groups_replaced
    # Feedback keeps the final count under the limit *by construction* —
    # the defining property a blind budget cannot guarantee.
    assert full.final_registers <= full.register_limit
    print(
        f"\nablation[feedback]: iterative groups={full.groups_replaced} "
        f"(compilations={fb_full.compilations}) vs one-shot groups="
        f"{one_shot.groups_replaced}"
    )


def test_feedback_adapts_to_tight_limits(benchmark):
    def run():
        results = {}
        for limit in (None, 160, 112):
            fn, region = _seismic_region()
            report, _ = optimize_region(region, fn.symtab, register_limit=limit)
            results[limit or 255] = report
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    # Tighter limits -> fewer replacements, never a limit violation.
    counts = [results[k].groups_replaced for k in sorted(results, reverse=True)]
    assert counts == sorted(counts, reverse=True)
    for limit, report in results.items():
        assert report.final_registers <= limit
