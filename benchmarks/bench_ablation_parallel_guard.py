"""Ablation 3 — the parallel-loop guard (paper Section III-B, limitation 1).

Applying classic Carr-Kennedy to the paper's Figure 3 loop rotates
registers across a *parallel* loop and sequentialises it: the launch
collapses to a single thread's worth of work per former-iteration block
and the GPU starves.  SAFARA's guard refuses the rotation and keeps the
loop parallel.  This bench quantifies that cliff.
"""

from repro.compiler import BASE, CARR_KENNEDY, SAFARA_ONLY, compile_source, time_program

FIG3_SRC = """
kernel fig3(double a[sz], const double b[sz], int SIZE, int sz) {
  #pragma acc kernels loop gang vector(128)
  for (i = 1; i <= SIZE; i++) {
    a[i] = (b[i] + b[i+1]) / 2;
  }
}
"""

ENV = {"SIZE": (1 << 20) - 2, "sz": 1 << 20}


def test_carr_kennedy_sequentialises_and_pays(benchmark):
    def run():
        times = {}
        for cfg in (BASE, SAFARA_ONLY, CARR_KENNEDY):
            prog = compile_source(FIG3_SRC, cfg)
            times[cfg.name] = (
                time_program(prog, ENV).total_ms,
                prog.kernels[0].vir.launch.total_threads(ENV),
            )
        return times

    times = benchmark.pedantic(run, iterations=1, rounds=1)
    base_ms, base_threads = times[BASE.name]
    safara_ms, safara_threads = times[SAFARA_ONLY.name]
    ck_ms, ck_threads = times[CARR_KENNEDY.name]

    # SAFARA's guard preserves the launch topology.
    assert safara_threads == base_threads
    assert safara_ms <= base_ms * 1.05

    # Carr-Kennedy collapses the parallel loop: single-threaded launch and
    # a catastrophic slowdown (the Figure 3/4 hazard).
    assert ck_threads < base_threads
    assert ck_ms > 10 * base_ms
    print(
        f"\nablation[parallel-guard]: base={base_ms:.2f}ms safara={safara_ms:.2f}ms "
        f"carr-kennedy={ck_ms:.2f}ms ({ck_ms/base_ms:.0f}x slower, "
        f"threads {base_threads} -> {ck_threads})"
    )
