"""Vectorized execution engine sweep — scalar interpreter vs batched NumPy.

Runs every modelled SPEC ACCEL / NAS benchmark through both functional
executors at scaled-up problem sizes, asserts bit-identical outputs and
exactly-equal :class:`~repro.gpu.interpreter.ExecutionStats`, and records
the wall-clock speedup table to ``benchmarks/results/exec_vectorized.txt``.

Usage::

    PYTHONPATH=src python benchmarks/bench_exec_vectorized.py          # full
    PYTHONPATH=src python benchmarks/bench_exec_vectorized.py --quick  # CI

``--quick`` runs at the tiny ``test_env`` sizes (a correctness smoke, not
a timing claim) and does not touch the committed results file.  The full
run scales each benchmark's test sizes up (capped at the paper's real
sizes) so the Python-loop interpreter takes measurable time while the
batched engine's per-step NumPy cost stays amortised.
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys
import time

import numpy as np

from repro.bench import SPEC, NAS, load_all
from repro.bench.args import build_test_args, copy_args
from repro.bench.core import BenchmarkSpec
from repro.gpu.interpreter import run_kernel
from repro.gpu.vector_exec import execute_kernel

RESULTS = pathlib.Path(__file__).parent / "results" / "exec_vectorized.txt"

#: Full-mode size multiplier over ``test_env`` (capped at the real sizes).
FULL_SCALE = 4

#: Per-benchmark overrides: 3D stencils grow cubically with the scale, so
#: x4 already gives the interpreter seconds of work — but the 1D/sparse
#: benchmarks (LBM sites, MRI points, MD neighbour lists, CSR rows) grow
#: linearly and need larger factors before the batched engine's fixed
#: per-step cost amortises.
FULL_SCALES = {
    "304.olbm": 16,
    "314.omriq": 8,
    "350.md": 12,
    "354.cg": 128,
    "CG": 128,
}


def scaled_env(spec: BenchmarkSpec, scale: int) -> dict[str, int]:
    """Scale the benchmark's test sizes by ``scale``.

    Keys the full-size ``env`` keeps equal to ``test_env`` are structural
    constants (block widths like 356.sp's ``n5``) and stay fixed, as do
    ``__``-prefixed harness knobs (trip counts).  Everything else scales,
    capped at the paper's real size.  The CG benchmarks' ``nrows1`` is the
    CSR offset-array length and is re-derived as ``nrows + 1``.
    """
    base = dict(spec.test_env or spec.env)
    full = dict(spec.env)
    out: dict[str, int] = {}
    for key, value in base.items():
        if key.startswith("__") or full.get(key) == value:
            out[key] = value
        else:
            out[key] = min(value * scale, full.get(key, value * scale))
    if "nrows" in out and "nrows1" in out:
        out["nrows1"] = out["nrows"] + 1
    return out


def run_one(spec: BenchmarkSpec, scale: int) -> dict:
    env = scaled_env(spec, scale)
    fn, args = build_test_args(spec, env=env)

    t0 = time.perf_counter()
    scalar_arrays, scalar_stats = run_kernel(fn, copy_args(args))
    t_scalar = time.perf_counter() - t0

    fn2, args2 = build_test_args(spec, env=env)
    t0 = time.perf_counter()
    vec_arrays, vec_stats, info = execute_kernel(fn2, args2, executor="auto")
    t_vector = time.perf_counter() - t0

    identical = sorted(scalar_arrays) == sorted(vec_arrays) and all(
        np.array_equal(scalar_arrays[k], vec_arrays[k]) for k in scalar_arrays
    )
    return {
        "name": spec.name,
        "scale": scale,
        "executor": info.used,
        "reason": info.fallback_reason,
        "iterations": scalar_stats.iterations,
        "scalar_ms": t_scalar * 1e3,
        "vector_ms": t_vector * 1e3,
        "speedup": t_scalar / t_vector if t_vector > 0 else float("inf"),
        "identical": identical,
        "stats_equal": scalar_stats == vec_stats,
    }


def render(rows: list[dict]) -> str:
    lines = [
        "vectorized execution engine: scalar interpreter vs batched NumPy",
        "(deterministic inputs, sizes = test_env x scale capped at real "
        "sizes; identical = bit-for-bit output equality, stats = exact "
        "ExecutionStats equality)",
        "",
        f"{'benchmark':<14} {'scale':>5} {'executor':<8} {'iterations':>10} "
        f"{'scalar_ms':>10} {'vector_ms':>10} {'speedup':>8}  "
        f"{'identical':<9} {'stats':<5}",
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<14} {r['scale']:>5} {r['executor']:<8} "
            f"{r['iterations']:>10} "
            f"{r['scalar_ms']:>10.2f} {r['vector_ms']:>10.2f} "
            f"{r['speedup']:>7.1f}x  "
            f"{str(r['identical']).lower():<9} "
            f"{str(r['stats_equal']).lower():<5}"
        )
    vec = [r["speedup"] for r in rows if r["executor"] == "vector"]
    if vec:
        geomean = math.exp(sum(math.log(s) for s in vec) / len(vec))
        lines.append("")
        lines.append(
            f"geomean speedup over {len(vec)} vectorized kernels: "
            f"{geomean:.1f}x"
        )
    fallbacks = [r for r in rows if r["executor"] != "vector"]
    for r in fallbacks:
        lines.append(f"fallback {r['name']}: {r['reason']}")
    return "\n".join(lines)


def sweep(scale: int, overrides: dict[str, int] | None = None) -> list[dict]:
    load_all()
    overrides = overrides or {}
    return [
        run_one(s, overrides.get(s.name, scale))
        for s in list(SPEC.all()) + list(NAS.all())
    ]


def test_quick() -> None:
    """Correctness smoke at test sizes (collected by `pytest benchmarks/`)."""
    rows = sweep(scale=1)
    assert all(r["identical"] for r in rows), rows
    assert all(r["stats_equal"] for r in rows), rows
    assert any(r["executor"] == "vector" for r in rows)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="test-env sizes, no results file (CI smoke)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help=f"uniform size multiplier (default: {FULL_SCALE} with "
        "per-benchmark overrides for linearly-scaling kernels)",
    )
    opts = parser.parse_args(argv)
    if opts.quick:
        rows = sweep(1)
    elif opts.scale is not None:
        rows = sweep(opts.scale)
    else:
        rows = sweep(FULL_SCALE, FULL_SCALES)
    table = render(rows)
    print(table)

    bad = [r for r in rows if not (r["identical"] and r["stats_equal"])]
    if bad:
        print(f"\nFAIL: {len(bad)} benchmark(s) diverged", file=sys.stderr)
        return 1
    if not opts.quick:
        RESULTS.parent.mkdir(exist_ok=True)
        RESULTS.write_text(table + "\n")
        print(f"\nwrote {RESULTS}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
