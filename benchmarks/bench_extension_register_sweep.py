"""Extension bench — the registers-vs-occupancy sweep the paper points at.

Section IV: "Finding the best combination between what is the optimal
number of registers to use by each thread and thread occupancy is a
complex problem [Volkov].  Note that this paper does not solve this
problem."  With a register-limit knob on the feedback loop (the analogue
of ``ptxas --maxrregcount``), the simulated substrate lets us *chart* that
problem: SAFARA replaces as much as fits under each cap, and the timing
model scores the occupancy/reuse trade-off.
"""

from repro.bench import load_all
from repro.compiler import SMALL_DIM_SAFARA, compile_source, time_program
from dataclasses import replace

LIMITS = [32, 48, 64, 96, 128, 255]


def test_register_limit_sweep(benchmark):
    spec_suite, _ = load_all()
    spec = spec_suite.get("355.seismic")

    def run():
        results = {}
        for limit in LIMITS:
            config = replace(
                SMALL_DIM_SAFARA,
                name=f"limit{limit}",
                register_limit=limit,
            )
            prog = compile_source(spec.source, config)
            t = time_program(prog, dict(spec.env), launches=spec.launches)
            results[limit] = (t.total_ms, prog.max_registers)
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for limit, (ms, regs) in results.items():
        print(f"extension[maxregcount]: limit={limit:3d} regs_max={regs:3d} time={ms:9.1f} ms")

    # The cap is always respected.
    for limit, (_, regs) in results.items():
        assert regs <= limit

    # The sweep is informative: register policy moves the needle...
    times = [ms for ms, _ in results.values()]
    assert max(times) / min(times) > 1.1
    # ...and the best cap is an *interior* point: an explicit register cap
    # beats (or at worst ties) letting SAFARA run to the hardware maximum —
    # exactly the Volkov trade-off the paper leaves open.
    best_limit = min(results, key=lambda k: results[k][0])
    assert results[best_limit][0] <= results[255][0]
    assert best_limit < 255
    print(f"extension[maxregcount]: best cap = {best_limit}")
