"""Figure 10 — NAS cumulative speedups: small → +SAFARA (no dim: C codes).

Paper facts reproduced: BT/LU/SP gain the most (uncoalesced chains in the
line solves), EP is flat, and the suite max approaches the paper's 2.5×.
"""

from repro.bench import fig10


def test_fig10(record_experiment):
    result = record_experiment(fig10)
    rows = {r["benchmark"]: r for r in result.rows}

    # EP: nothing to optimise.
    assert rows["EP"]["small+SAFARA"] <= 1.02

    # The line-solve benchmarks are the big winners.
    for name in ("BT", "LU", "SP"):
        assert rows[name]["small+SAFARA"] >= 1.4, name

    # Stencil/sparse benchmarks gain moderately.
    assert 1.05 <= rows["MG"]["small+SAFARA"] <= 1.4

    # Nothing regresses.
    for name, row in rows.items():
        assert row["small+SAFARA"] >= 0.97, name
