"""Figure 11 — SPEC normalised execution time: OpenUH configs vs PGI.

Paper claim: "In the second and third cases [SAFARA, SAFARA+clauses], the
OpenUH compiler generates efficient GPU kernels that outperform the PGI
compiler", while the base OpenUH does not consistently win.
"""

from repro.bench import fig11


def test_fig11(record_experiment):
    result = record_experiment(fig11)
    rows = result.rows

    wins = sum(1 for r in rows if r["openuh_wins"] == "yes")
    # OpenUH(SAFARA+clauses) beats PGI on the clear majority of the suite.
    assert wins >= len(rows) - 2

    # Base OpenUH is NOT consistently better than PGI (PGI's mature backend
    # wins the compute-bound cases) — the reason the optimisations matter.
    base_beats_pgi = sum(
        1 for r in rows if r["OpenUH(base)"] < r["PGI"]
    )
    assert base_beats_pgi < len(rows) // 2

    # Normalisation invariant: the worst configuration reads exactly 1.0.
    for r in rows:
        values = [
            r["OpenUH(base)"],
            r["OpenUH(SAFARA)"],
            r["OpenUH(SAFARA+clauses)"],
            r["PGI"],
        ]
        assert max(values) == 1.0
