"""Figure 12 — NAS normalised execution time: OpenUH configs vs PGI."""

from repro.bench import fig12


def test_fig12(record_experiment):
    result = record_experiment(fig12)
    rows = result.rows

    wins = sum(1 for r in rows if r["openuh_wins"] == "yes")
    assert wins >= len(rows) - 1  # all but (at most) the compute-bound EP

    # The optimised OpenUH strictly improves on its own base everywhere.
    for r in rows:
        assert r["OpenUH(SAFARA+clauses)"] <= r["OpenUH(base)"]
