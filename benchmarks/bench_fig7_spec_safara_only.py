"""Figure 7 — SPEC ACCEL speedups with SAFARA only.

The motivating study: SAFARA alone gives modest gains on most benchmarks
and *regresses* 355.seismic by exhausting its registers (low occupancy),
which is why the paper proposes the dim/small clauses.
"""

from repro.bench import fig7


def test_fig7(record_experiment):
    result = record_experiment(fig7)
    rows = {r["benchmark"]: r for r in result.rows}

    # The headline fact of Figure 7: seismic slows down under SAFARA alone.
    assert rows["355.seismic"]["measured"] < 1.0

    # The control case: EP has nothing to optimise.
    assert rows["352.ep"]["measured"] == 1.0

    # Every benchmark reproduces the paper's direction.
    for name, row in rows.items():
        if name == "geometric-mean":
            continue
        assert row["direction_ok"] != "NO", f"{name} diverges from the paper"
