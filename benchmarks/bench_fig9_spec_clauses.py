"""Figure 9 — SPEC ACCEL cumulative speedups: small → +dim → +SAFARA.

The paper's key result: after the clauses free the dope/offset registers,
SAFARA no longer regresses anything and 355.seismic becomes the biggest
winner (paper: 2.08× max on SPEC).
"""

from repro.bench import fig9


def test_fig9(record_experiment):
    result = record_experiment(fig9)
    rows = {r["benchmark"]: r for r in result.rows}

    seismic = rows["355.seismic"]
    # Cumulative improvement: small <= small+dim <= small+dim+SAFARA.
    assert seismic["small"] <= seismic["small+dim"] <= seismic["small+dim+SAFARA"]
    # Seismic is the suite's biggest winner and lands in the paper's regime
    # (2.08x; shape tolerance one order-of-magnitude band around it).
    finals = {
        n: r["small+dim+SAFARA"]
        for n, r in rows.items()
        if n != "geometric-mean"
    }
    assert max(finals, key=finals.get) == "355.seismic"
    assert 1.5 <= finals["355.seismic"] <= 3.5

    # dim is inapplicable on the C benchmarks: no change over small alone.
    for c_bench in ("303.ostencil", "304.olbm", "314.omriq", "357.csp"):
        assert rows[c_bench]["small"] == rows[c_bench]["small+dim"]

    # Unlike Figure 7, nothing regresses once the clauses are in place.
    for name, final in finals.items():
        assert final >= 0.97, f"{name} regressed with clauses+SAFARA"
