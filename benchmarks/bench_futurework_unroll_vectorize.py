"""Future-work bench (paper Section VII): "combine other classical
optimizations like loop unrolling and memory vectorization with SAFARA".

Runs the full optimisation stack with and without the two future-work
passes over the chain-heavy benchmarks, quantifying what the paper
anticipated: unrolling amortises rotation overhead and exposes more
intra-iteration reuse; vector loads halve the load issue/latency count on
adjacent pairs.
"""

from repro.bench import load_all
from repro.bench.runner import run_configs
from repro.compiler import BASE, SMALL_DIM_SAFARA, UNROLL_SAFARA, VECTOR_SAFARA

BENCHES = ["355.seismic", "303.ostencil"]


def test_unroll_and_vectorize_extend_safara(benchmark):
    spec_suite, _ = load_all()

    def run():
        out = {}
        for name in BENCHES:
            spec = spec_suite.get(name)
            results = run_configs(
                spec, [BASE, SMALL_DIM_SAFARA, UNROLL_SAFARA, VECTOR_SAFARA]
            )
            base = results[BASE.name].total_ms
            out[name] = {
                cfg: base / results[cfg].total_ms
                for cfg in (
                    SMALL_DIM_SAFARA.name,
                    UNROLL_SAFARA.name,
                    VECTOR_SAFARA.name,
                )
            }
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for name, speedups in out.items():
        row = "  ".join(f"{k.split('(')[1][:-1]}={v:.2f}x" for k, v in speedups.items())
        print(f"futurework[{name}]: {row}")
        # The extended stacks never regress the plain SAFARA+clauses stack
        # by more than a small occupancy wobble, and at least one of them
        # improves on it for these chain-heavy benchmarks.
        plain = speedups[SMALL_DIM_SAFARA.name]
        extended = max(
            speedups[UNROLL_SAFARA.name], speedups[VECTOR_SAFARA.name]
        )
        assert extended >= plain * 0.95
