"""Compile-cache / batch-compilation sweep (the compilation-service bench).

Compiles every modelled benchmark under every configuration three ways:

* **cold serial** — a fresh session, one `compile_source` per job;
* **cold parallel** — a fresh session, one `compile_many` batch (used for
  the bit-identity check against the serial results);
* **warm parallel** — the same batch again on the now-populated session.

Asserts the acceptance properties: the warm-cache batch is >= 3x faster
than the cold serial baseline, and parallel results are bit-identical to
the serial loop.  Writes ``benchmarks/results/pipeline.txt``.
"""

import time

from repro.bench.experiments import ExperimentResult
from repro.bench.runner import benchmark_job
from repro.bench.suites.registry import load_all
from repro.compiler import ALL_CONFIGS, CompilerSession


def _fingerprint(program):
    return [
        (k.name, k.registers, k.ptxas.summary(), k.vir.dump())
        for k in program.kernels
    ]


def _run_pipeline_cache() -> ExperimentResult:
    spec, nas = load_all()
    jobs = [
        benchmark_job(s, cfg)
        for s in spec.all() + nas.all()
        for cfg in ALL_CONFIGS.values()
    ]

    serial_session = CompilerSession()
    t0 = time.perf_counter()
    serial = [
        serial_session.compile_source(
            j.source, j.config, kernel_name=j.kernel_name, env=j.env
        )
        for j in jobs
    ]
    cold_serial_s = time.perf_counter() - t0

    batch_session = CompilerSession()
    t0 = time.perf_counter()
    parallel = batch_session.compile_many(jobs)
    cold_parallel_s = time.perf_counter() - t0

    identical = all(
        _fingerprint(s) == _fingerprint(p) for s, p in zip(serial, parallel)
    )

    t0 = time.perf_counter()
    warm = batch_session.compile_many(jobs)
    warm_parallel_s = time.perf_counter() - t0
    warm_identity = all(w is p for w, p in zip(warm, parallel))

    speedup = cold_serial_s / warm_parallel_s if warm_parallel_s else float("inf")
    result = ExperimentResult(
        experiment="pipeline",
        title="compile cache + batch compilation sweep "
        f"({len(jobs)} jobs = {len(spec.all() + nas.all())} benchmarks x "
        f"{len(ALL_CONFIGS)} configs)",
        columns=["phase", "seconds", "hits", "misses", "speedup_vs_cold_serial"],
    )
    result.rows.append(
        {
            "phase": "cold-serial",
            "seconds": cold_serial_s,
            "hits": serial_session.cache.hits,
            "misses": serial_session.cache.misses,
            "speedup_vs_cold_serial": 1.0,
        }
    )
    result.rows.append(
        {
            "phase": "cold-parallel",
            "seconds": cold_parallel_s,
            "hits": 0,
            "misses": batch_session.cache.misses,
            "speedup_vs_cold_serial": cold_serial_s / cold_parallel_s,
        }
    )
    result.rows.append(
        {
            "phase": "warm-parallel",
            "seconds": warm_parallel_s,
            "hits": batch_session.cache.hits,
            "misses": batch_session.cache.misses,
            "speedup_vs_cold_serial": speedup,
        }
    )
    result.notes.append(
        f"parallel bit-identical to serial: {'yes' if identical else 'NO'}"
    )
    result.notes.append(
        "warm batch returns the cached objects "
        f"({'yes' if warm_identity else 'NO'}); acceptance: warm >= 3x cold serial"
    )
    # stash the assertions' raw facts for the test below
    result.rows[-1]["_identical"] = identical
    return result


def test_pipeline_cache(record_experiment):
    result = record_experiment(_run_pipeline_cache)
    warm = result.row("phase", "warm-parallel")
    cold = result.row("phase", "cold-serial")
    assert warm["_identical"], "parallel batch diverged from serial loop"
    assert warm["hits"] >= warm["misses"], "warm batch should be all cache hits"
    assert warm["speedup_vs_cold_serial"] >= 3.0, (
        f"warm-cache batch only {warm['speedup_vs_cold_serial']:.1f}x faster "
        f"than cold serial ({cold['seconds']:.2f}s -> {warm['seconds']:.2f}s)"
    )
