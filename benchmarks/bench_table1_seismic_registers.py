"""Table I — 355.seismic per-kernel register usage (base / +small / w dim).

The registers are *emergent*: they come from running the ptxas-simulator
over generated code, so this bench checks our columns land in the paper's
regime and move in the paper's direction, not that they match digit-for-
digit (a different allocator cannot).
"""

from repro.bench import table1
from repro.bench.paper_data import TABLE1_SEISMIC


def test_table1(record_experiment):
    result = record_experiment(table1)
    paper = {r.kernel: r for r in TABLE1_SEISMIC}

    for row in result.rows:
        p = paper[row["kernel"]]
        # Monotone effect of the clauses, as in every paper row.
        assert row["+small"] <= row["base"]
        assert row["w dim"] is not None and row["w dim"] <= row["+small"]
        # Regime: within a factor of 1.6 of the paper's base and dim columns.
        assert p.base / 1.6 <= row["base"] <= p.base * 1.6
        assert p.dim / 1.6 <= row["w dim"] <= p.dim * 1.6

    # HOT1 is the heaviest kernel in both (128 regs in the paper).
    ours = {r["kernel"]: r["base"] for r in result.rows}
    assert max(ours, key=ours.get) in ("HOT1", "HOT2")
