"""Table II — 356.sp per-kernel register usage, including the NA rows
(kernels touching fewer than two same-shape allocatable arrays, where the
dim clause has nothing to merge)."""

from repro.bench import table2
from repro.bench.paper_data import TABLE2_SP


def test_table2(record_experiment):
    result = record_experiment(table2)
    paper = {r.kernel: r for r in TABLE2_SP}

    ours_na = {r["kernel"] for r in result.rows if r["w dim"] is None}
    paper_na = {k for k, r in paper.items() if r.dim is None}
    assert ours_na == paper_na, "NA pattern must match the paper's Table II"

    for row in result.rows:
        assert row["+small"] <= row["base"]
        if row["w dim"] is not None:
            assert row["w dim"] <= row["+small"]

    # HOT8 is the register monster in both tables.
    ours = {r["kernel"]: r["base"] for r in result.rows}
    assert max(ours, key=ours.get) == "HOT8"
    # HOT5 shows the steepest relative small saving (74 -> 37 in the paper).
    h5 = next(r for r in result.rows if r["kernel"] == "HOT5")
    assert h5["+small"] <= 0.7 * h5["base"]
