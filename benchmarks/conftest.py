"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures: it runs the
experiment once under ``pytest-benchmark`` (pedantic mode — these are
deterministic model evaluations, not microbenchmarks), writes the rendered
table to ``benchmarks/results/``, and asserts the shape properties the
paper reports.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_experiment(benchmark):
    """Run an experiment function once, save its rendering, return it."""

    def _run(fn):
        result = benchmark.pedantic(fn, iterations=1, rounds=1)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment}.txt"
        path.write_text(result.render() + "\n")
        return result

    return _run
