"""Benchmark-regression ledger over the analytic performance model.

Compiles every modelled SPEC ACCEL / NAS benchmark under a set of compiler
configurations, evaluates the timing model at the paper's problem sizes,
and writes one ledger entry per (benchmark, configuration) cell to
``BENCH_obs.json`` at the repository root:

* ``model_ms`` — the analytic timing-model estimate (deterministic);
* ``max_registers`` — peak per-kernel register usage (deterministic);
* ``speedup_over_base`` — model speedup vs the ``OpenUH(base)`` config.

Before writing, the run is compared against the previous ledger over the
intersection of keys and **fails (exit 1) on a >20% regression** in any
gated metric: model time up, speedup down, or registers up.  The gated
metrics come from the deterministic compile pipeline and analytic model —
not wall clock — so the gate is machine-independent and a failure means a
*code* change moved the model, never scheduler noise.  Wall-clock compile
time and cache counters are recorded informationally in ``meta``.

The ledger also carries a ``serve`` row measuring the warm-restart
property of the persistent compile cache (``docs/serving.md``): the
quick benchmark set is compiled cold through a disk-backed session, then
again through a *fresh* session over the same cache directory.  The gate
is on deterministic counters, consistent with the rest of the ledger:
the warm pass must perform **zero** backend (ptxas) compilations and hit
the disk cache once per job; cold/warm wall times are informational.

A ``tune`` row exercises the ``repro.tune`` autotuner on 355.seismic
(``docs/tuning.md``): the tuned configuration's modeled time must not be
worse than the ``OpenUH(SAFARA+small+dim)`` default, and a warm re-tune
through the shared tuning ledger must replay every score with zero
backend compilations.

An ``esat`` row gates the equality-saturation pass end to end
(``docs/optimizer.md``): every benchmark compiled with ``saturate`` on
must model no slower than ``OpenUH(base)`` — the dual-compile pressure
guard's never-worse contract — the geomean model speedup must be at
least 1.0 with register pressure strictly reduced on three or more
kernels, and a warm re-tune over the widened knob space
(``saturate=(False, True)``) must replay every score from the tuning
ledger with zero backend compilations.

A ``hotpath`` row gates the generated-code serving hot path
(``docs/execution.md``, ``docs/serving.md``): warm in-process compiles
through the two-tier cache must answer in under a millisecond at p50,
the generated-NumPy executor must be at least break-even (geomean) with
the interpreting vector engine across every benchmark it covers, and
``compile_many`` must overlap injected backend latency by more than
1.5x at 4 workers.

An ``slo`` row gates the serving tier under open-loop load
(``docs/observability.md``): the quick loadgen profile (fixed-rate
arrivals, compile/run mix, prewarmed shared disk cache) must finish with
zero errors, a >= 0.9 warm compile hit rate and a warm p99 under a
generous absolute bound — latencies are measured from each request's
*scheduled* arrival, so a backlog cannot hide behind coordinated
omission.

A ``cluster`` row gates the sharded serving tier
(``docs/sharding.md``): the open-loop profile against a two-shard
consistent-hash router must finish with zero errors, balanced per-shard
routing (busiest shard within 20% of fair), and a p99 under the ``slo``
bound; a drain + restart of one shard *mid-run* must also finish with
zero errors and a >= 0.9 warm hit rate after the shard rejoins (the
shared disk tier carries its keys); and a hedged retry must beat a
deliberately laggy primary.

A ``fleet`` row gates the multi-arch serving layer
(``docs/serving.md``): the CDNA2 profile's waves-per-SIMD table must
match the published MI200 occupancy limits at every tier, and fleet
placement over the full benchmark suite must never route a benchmark to
an arch whose modeled time is worse than the single-arch default.

Usage::

    PYTHONPATH=src python benchmarks/regress.py            # full sweep
    PYTHONPATH=src python benchmarks/regress.py --quick    # CI subset
    PYTHONPATH=src python benchmarks/regress.py --trace t.json

``--quick`` restricts the benchmark and configuration set; entries are
deterministic, so quick-run cells agree with full-run cells and the
key-intersection comparison stays sound across modes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.bench import NAS, SPEC, load_all
from repro.bench.runner import run_configs
from repro.compiler.options import (
    BASE,
    CARR_KENNEDY,
    SAFARA_ONLY,
    SMALL_DIM_SAFARA,
)
from repro.compiler.session import CompilerSession

LEDGER = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"

#: Relative regression tolerance on every gated metric.
THRESHOLD = 0.20

QUICK_BENCHMARKS = ("303.ostencil", "304.olbm", "354.cg", "BT", "SP")
QUICK_CONFIGS = (BASE, SMALL_DIM_SAFARA)
FULL_CONFIGS = (BASE, CARR_KENNEDY, SAFARA_ONLY, SMALL_DIM_SAFARA)


def collect(quick: bool) -> dict:
    """Run the sweep and build the ledger document."""
    load_all()
    specs = list(SPEC.all()) + list(NAS.all())
    configs = list(QUICK_CONFIGS if quick else FULL_CONFIGS)
    if quick:
        specs = [s for s in specs if s.name in QUICK_BENCHMARKS]

    session = CompilerSession()
    entries: dict[str, dict] = {}
    t0 = time.perf_counter()
    for spec in specs:
        results = run_configs(spec, configs, session=session)
        base_ms = results[BASE.name].total_ms
        for cfg in configs:
            r = results[cfg.name]
            entries[f"{spec.name}|{cfg.name}"] = {
                "model_ms": round(r.total_ms, 6),
                "max_registers": r.max_registers,
                "speedup_over_base": round(base_ms / r.total_ms, 6),
            }
    wall_ms = (time.perf_counter() - t0) * 1000.0
    return {
        "version": 1,
        "quick": quick,
        "entries": entries,
        "meta": {
            "benchmarks": len(specs),
            "configs": [c.name for c in configs],
            "wall_ms": round(wall_ms, 3),
            "cache": session.cache.as_dict(),
            "compilations": session.stats.compilations,
        },
    }


def collect_serve() -> dict:
    """The warm-restart serving row (cold compile vs disk-cache restart).

    Models a ``repro serve`` daemon kill/restart: the second session is a
    fresh process stand-in sharing only the cache directory.  Returns the
    ledger row; :func:`check_serve` gates its deterministic counters.
    """
    import tempfile

    load_all()
    specs = list(SPEC.all()) + list(NAS.all())
    specs = [s for s in specs if s.name in QUICK_BENCHMARKS]
    backend_metric = "pipeline.pass.safara.backend_compilations"

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        cold = CompilerSession(cache_dir=tmp)
        t0 = time.perf_counter()
        for spec in specs:
            cold.compile_source(spec.source, SMALL_DIM_SAFARA)
        cold_ms = (time.perf_counter() - t0) * 1000.0
        cold_backend = cold.metrics.get(backend_metric)

        warm = CompilerSession(cache_dir=tmp)
        t0 = time.perf_counter()
        for spec in specs:
            warm.compile_source(spec.source, SMALL_DIM_SAFARA)
        warm_ms = (time.perf_counter() - t0) * 1000.0
        warm_backend = warm.metrics.get(backend_metric)

        return {
            "benchmarks": [s.name for s in specs],
            "config": SMALL_DIM_SAFARA.name,
            # gated (deterministic counters):
            "cold_backend_compilations": int(cold_backend.value)
            if cold_backend
            else 0,
            "warm_backend_compilations": int(warm_backend.value)
            if warm_backend
            else 0,
            "disk_hits": warm.disk_cache.hits,
            # informational (wall clock):
            "cold_compile_ms": round(cold_ms, 3),
            "warm_compile_ms": round(warm_ms, 3),
        }


def collect_tune() -> dict:
    """The autotuning row: ``repro.tune`` on the paper's seismic kernel.

    Cold-tunes 355.seismic (beam search over the default knob space, a
    shared compile cache directory and tuning ledger), then re-tunes
    through a *fresh* session over the same ledger — the warm pass must
    replay every score and perform zero backend compilations.  The tuned
    configuration is gated against the PR-4 default
    (``OpenUH(SAFARA+small+dim)``): its modeled time must not be worse.
    """
    import tempfile

    from repro.bench.runner import run_benchmark
    from repro.tune import tune

    load_all()
    spec = SPEC.get("355.seismic")
    backend_metric = "pipeline.pass.safara.backend_compilations"

    with tempfile.TemporaryDirectory(prefix="repro-tune-bench-") as tmp:
        ledger = pathlib.Path(tmp) / "tune_ledger.json"
        default_ms = run_benchmark(
            spec, SMALL_DIM_SAFARA, session=CompilerSession(cache_dir=tmp)
        ).timing.total_ms

        cold_session = CompilerSession(cache_dir=tmp)
        t0 = time.perf_counter()
        cold = tune(
            spec.source,
            env=dict(spec.env),
            launches=spec.launches,
            strategy="beam",
            budget=12,
            session=cold_session,
            ledger=ledger,
        )
        cold_ms = (time.perf_counter() - t0) * 1000.0

        warm_session = CompilerSession(cache_dir=tmp)
        t0 = time.perf_counter()
        warm = tune(
            spec.source,
            env=dict(spec.env),
            launches=spec.launches,
            strategy="beam",
            budget=12,
            session=warm_session,
            ledger=ledger,
        )
        warm_ms = (time.perf_counter() - t0) * 1000.0
        warm_backend = warm_session.metrics.get(backend_metric)

        return {
            "benchmark": spec.name,
            "strategy": "beam",
            "budget": 12,
            # gated (deterministic model times and counters):
            "default_ms": round(default_ms, 6),
            "tuned_ms": round(cold.best.model_ms, 6),
            "speedup_over_default": round(default_ms / cold.best.model_ms, 6),
            "warm_evaluated": warm.evaluated,
            "warm_backend_compilations": int(warm_backend.value)
            if warm_backend
            else 0,
            "warm_ledger_hits": warm.ledger_hits,
            # informational:
            "best_point": cold.best.point.as_dict(),
            "trials": len(cold.trials),
            "cold_tune_ms": round(cold_ms, 3),
            "warm_tune_ms": round(warm_ms, 3),
        }


def collect_esat() -> dict:
    """The equality-saturation row (``docs/optimizer.md``).

    Compiles every benchmark under ``OpenUH(base)`` and the same config
    with ``saturate`` on.  The dual-compile pressure guard makes the
    pass fail-safe *per kernel* by construction, so the gates are
    absolute: the saturated model time must never be worse on any
    benchmark, the geomean model speedup must be >= 1.0 with at least
    three kernels reducing peak register pressure, and a warm re-tune
    over the widened knob space (``saturate=(False, True)``) must replay
    every score from the tuning ledger with zero backend compilations.
    """
    import dataclasses
    import math
    import tempfile

    from repro.tune import tune
    from repro.tune.space import default_space

    load_all()
    specs = list(SPEC.all()) + list(NAS.all())
    sat_cfg = BASE.derive(name="OpenUH(base+esat)", saturate=True)
    backend_metric = "pipeline.pass.safara.backend_compilations"

    session = CompilerSession()
    kernels: dict[str, dict] = {}
    for spec in specs:
        results = run_configs(spec, [BASE, sat_cfg], session=session)
        base_r = results[BASE.name]
        sat_r = results[sat_cfg.name]
        kernels[spec.name] = {
            "base_ms": round(base_r.total_ms, 6),
            "saturated_ms": round(sat_r.total_ms, 6),
            "base_registers": base_r.max_registers,
            "saturated_registers": sat_r.max_registers,
            "speedup": round(base_r.total_ms / sat_r.total_ms, 6),
        }
    geomean = math.exp(
        sum(math.log(cell["base_ms"] / cell["saturated_ms"])
            for cell in kernels.values())
        / len(kernels)
    )
    register_wins = sorted(
        name
        for name, cell in kernels.items()
        if cell["saturated_registers"] < cell["base_registers"]
    )

    # Warm re-tune over the widened space: the saturate axis rides in
    # the ledger key suffix, so a pre-widening ledger stays valid and a
    # re-tune of the widened task replays without a single compile.
    tune_spec = SPEC.get("356.sp")
    space = dataclasses.replace(
        default_space(tune_spec.source), saturate=(False, True)
    )
    with tempfile.TemporaryDirectory(prefix="repro-esat-bench-") as tmp:
        ledger = pathlib.Path(tmp) / "tune_ledger.json"
        cold_session = CompilerSession(cache_dir=tmp)
        cold = tune(
            tune_spec.source,
            env=dict(tune_spec.env),
            launches=tune_spec.launches,
            strategy="beam",
            budget=12,
            space=space,
            session=cold_session,
            ledger=ledger,
        )
        warm_session = CompilerSession(cache_dir=tmp)
        warm = tune(
            tune_spec.source,
            env=dict(tune_spec.env),
            launches=tune_spec.launches,
            strategy="beam",
            budget=12,
            space=space,
            session=warm_session,
            ledger=ledger,
        )
        warm_backend = warm_session.metrics.get(backend_metric)

    return {
        "base_config": BASE.name,
        "saturated_config": sat_cfg.name,
        # gated (deterministic model times and counters):
        "kernels": kernels,
        "geomean_speedup": round(geomean, 6),
        "register_wins": register_wins,
        "tune_benchmark": tune_spec.name,
        "tune_trials": len(cold.trials),
        "warm_evaluated": warm.evaluated,
        "warm_backend_compilations": int(warm_backend.value)
        if warm_backend
        else 0,
        "warm_ledger_hits": warm.ledger_hits,
        # informational:
        "tuned_best_point": cold.best.point.as_dict(),
        "tuned_ms": round(cold.best.model_ms, 6),
    }


def check_esat(row: dict) -> list[str]:
    """Absolute gates on the equality-saturation row."""
    problems: list[str] = []
    for name, cell in row["kernels"].items():
        if cell["saturated_ms"] > cell["base_ms"]:
            problems.append(
                f"esat: {name} modeled slower with saturation "
                f"({cell['saturated_ms']} ms vs {cell['base_ms']} ms) — "
                f"the dual-compile guard should have rejected the rewrite"
            )
        if cell["saturated_registers"] > cell["base_registers"]:
            problems.append(
                f"esat: {name} register pressure rose under saturation "
                f"({cell['base_registers']} -> "
                f"{cell['saturated_registers']})"
            )
    if row["geomean_speedup"] < 1.0:
        problems.append(
            f"esat: geomean model speedup {row['geomean_speedup']} < 1.0"
        )
    if len(row["register_wins"]) < 3:
        problems.append(
            f"esat: only {len(row['register_wins'])} kernel(s) reduced "
            f"register pressure (expected >= 3): {row['register_wins']}"
        )
    if row["warm_evaluated"] != 0:
        problems.append(
            f"esat: warm re-tune over the widened space evaluated "
            f"{row['warm_evaluated']} points (expected 0)"
        )
    if row["warm_backend_compilations"] != 0:
        problems.append(
            f"esat: warm re-tune performed "
            f"{row['warm_backend_compilations']} backend compilations "
            f"(expected 0)"
        )
    if row["warm_ledger_hits"] != row["tune_trials"]:
        problems.append(
            f"esat: warm re-tune replayed {row['warm_ledger_hits']} of "
            f"{row['tune_trials']} cold trials"
        )
    return problems


def collect_hotpath() -> dict:
    """The generated-code hot-path row (``docs/execution.md``).

    Three measurements, three gates:

    * **warm compile p50** — repeat ``compile_source`` of an
      already-compiled benchmark through a disk-backed session; the
      memory tier must answer in under a millisecond at the median;
    * **codegen speedup** — min-of-5 warm launches of every benchmark
      the generated-NumPy tier covers, against the interpreting vector
      engine; the geomean must be at least break-even;
    * **compile_many scaling** — 8 distinct jobs under 20 ms of
      injected backend latency (``latency_scope``): 4 workers must beat
      the serial wall-clock by more than 1.5x.
    """
    import math
    import statistics
    import tempfile

    from repro.bench.args import build_test_args, copy_args
    from repro.compiler import CompileJob
    from repro.feedback import latency_scope
    from repro.gpu.vector_exec import execute_kernel

    load_all()
    specs = list(SPEC.all()) + list(NAS.all())

    # Warm-compile latency through the two-tier cache.
    with tempfile.TemporaryDirectory(prefix="repro-hotpath-") as tmp:
        spec = SPEC.get("303.ostencil")
        session = CompilerSession(cache_dir=tmp)
        session.compile_source(spec.source, SMALL_DIM_SAFARA)  # cold
        samples = []
        for _ in range(21):
            t0 = time.perf_counter()
            session.compile_source(spec.source, SMALL_DIM_SAFARA)
            samples.append((time.perf_counter() - t0) * 1000.0)
        warm_p50 = statistics.median(samples)

    # Generated code vs the interpreting vector engine, warm launches.
    speedups: dict[str, float] = {}
    for spec in specs:
        fn, args = build_test_args(spec)
        key = f"hotpath:{spec.name}"
        _, _, info = execute_kernel(fn, copy_args(args), content_key=key)
        if info.used != "codegen":
            continue  # EP-family kernels fall back by design

        def best(executor: str, **kw) -> float:
            times = []
            for _ in range(5):
                run_args = copy_args(args)
                t0 = time.perf_counter()
                execute_kernel(fn, run_args, executor=executor, **kw)
                times.append(time.perf_counter() - t0)
            return min(times)

        c = best("codegen", content_key=key)
        v = best("vector")
        speedups[spec.name] = round(v / c, 4)
    geomean = math.exp(
        sum(math.log(s) for s in speedups.values()) / len(speedups)
    )

    # Batch-compile scaling under injected backend latency.
    template = """
    kernel k{i}(const double x[1:n], double y[1:n], int n) {{
      #pragma acc kernels loop gang vector(64)
      for (i = 1; i < n; i++) {{ y[i] = x[i] * {i}.0 + y[i]; }}
    }}
    """
    jobs = [
        CompileJob(source=template.format(i=i), config=BASE) for i in range(8)
    ]
    with latency_scope(0.02):
        t0 = time.perf_counter()
        CompilerSession().compile_many(jobs, max_workers=1)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        CompilerSession().compile_many(jobs, max_workers=4)
        parallel_s = time.perf_counter() - t0

    return {
        "benchmarks": sorted(speedups),
        # gated:
        "warm_compile_p50_ms": round(warm_p50, 4),
        "codegen_speedup_x": round(geomean, 4),
        "compile_many_scaling_x": round(serial_s / parallel_s, 4),
        # informational (wall clock):
        "per_benchmark_speedup": speedups,
        "scaling_serial_ms": round(serial_s * 1000.0, 3),
        "scaling_parallel_ms": round(parallel_s * 1000.0, 3),
    }


def check_hotpath(row: dict) -> list[str]:
    """Absolute gates on the generated-code hot-path row."""
    problems: list[str] = []
    if row["warm_compile_p50_ms"] >= 1.0:
        problems.append(
            f"hotpath: warm compile p50 is {row['warm_compile_p50_ms']} ms "
            f"(gate: < 1 ms) — the memory tier is not answering"
        )
    if row["codegen_speedup_x"] < 1.0:
        problems.append(
            f"hotpath: generated code is {row['codegen_speedup_x']}x the "
            f"interpreting engine (gate: >= 1.0x geomean)"
        )
    if row["compile_many_scaling_x"] <= 1.5:
        problems.append(
            f"hotpath: compile_many scaled {row['compile_many_scaling_x']}x "
            f"at 4 workers (gate: > 1.5x) — backend latency is not "
            f"overlapping"
        )
    if len(row["benchmarks"]) < 14:
        problems.append(
            f"hotpath: only {len(row['benchmarks'])} benchmarks ran on "
            f"generated code (expected >= 14)"
        )
    return problems


#: Generous absolute bound on warm-path p99 under the quick open-loop
#: profile.  The point is catching a serving collapse (a stalled queue,
#: a lost worker pool), not micro-benchmarking the scheduler: a warm
#: seismic ``run`` costs ~80 ms of service time by itself, so typical
#: p99 lands around 150-200 ms and a real backlog blows far past this.
#: Cache regressions are gated separately by ``warm_hit_rate``.
SLO_P99_MS = 500.0


def collect_slo(attempts: int = 3) -> dict:
    """The open-loop serving SLO row (``docs/observability.md``).

    Runs the CI quick profile (fixed-rate arrivals over the two small
    runnable benchmarks, compile/run mix) against an in-process broker
    backed by a shared disk cache, prewarming every distinct source so
    the measured window is the warm path.  Latency is charged from each
    request's scheduled arrival (coordinated-omission safe); the report's
    quantiles come from log-spaced HDR histograms.

    The row measures wall clock, so a transient machine-load spike can
    push the tail past the gate on a healthy build: a failing attempt is
    re-measured (up to ``attempts`` total) and the first passing row —
    or the last failing one — is returned.  A genuine serving collapse
    fails every attempt.
    """
    row: dict = {}
    for _ in range(max(1, attempts)):
        row = _measure_slo()
        if not check_slo(row):
            return row
    return row


def _measure_slo() -> dict:
    import tempfile

    from repro.loadgen import quick_profile, run_load
    from repro.serve.broker import Broker, BrokerConfig

    profile = quick_profile(rate_rps=25.0, duration_s=1.2)
    with tempfile.TemporaryDirectory(prefix="repro-slo-bench-") as tmp:
        with Broker(BrokerConfig(workers=4, cache_dir=tmp)) as broker:
            # Warm the *run* path too: loadgen's prewarm covers compiles,
            # but the first run on each worker still pays the one-time
            # executor build.  The SLO is a steady-state property.
            run_load(
                quick_profile(rate_rps=20.0, duration_s=0.5), broker=broker
            )
            report = run_load(profile, broker=broker)
    overall = report["latency_ms"]["overall"]
    return {
        "profile": report["profile"],
        # gated:
        "error_rate": report["error_rate"],
        "warm_hit_rate": report["warm_hit_rate"],
        "p99_ms": overall["p99"],
        "coordinated_omission_safe": report["arrival"][
            "coordinated_omission_safe"
        ],
        "latency_basis": report["arrival"]["latency_basis"],
        # informational (wall clock):
        "scheduled": report["requests"]["scheduled"],
        "completed": report["requests"]["completed"],
        "offered_rps": report["offered_rps"],
        "throughput_rps": report["throughput_rps"],
        "p50_ms": overall["p50"],
        "p999_ms": overall["p999"],
        "degradation_rate": report["degradation_rate"],
    }


def check_slo(row: dict) -> list[str]:
    """Absolute gates on the open-loop serving row."""
    problems: list[str] = []
    if row["completed"] != row["scheduled"]:
        problems.append(
            f"slo: only {row['completed']} of {row['scheduled']} scheduled "
            f"requests completed"
        )
    if row["error_rate"] != 0.0:
        problems.append(
            f"slo: error rate {row['error_rate']} under the quick profile "
            f"(gate: 0) — the warm serving path is failing requests"
        )
    if row["warm_hit_rate"] is None or row["warm_hit_rate"] < 0.9:
        problems.append(
            f"slo: warm compile hit rate {row['warm_hit_rate']} "
            f"(gate: >= 0.9) — prewarmed sources are missing the cache"
        )
    if row["p99_ms"] >= SLO_P99_MS:
        problems.append(
            f"slo: warm p99 is {row['p99_ms']} ms (gate: < {SLO_P99_MS} ms) "
            f"— the serving hot path collapsed under open-loop load"
        )
    if row["latency_basis"] != "scheduled_arrival":
        problems.append(
            "slo: latency is not charged from scheduled arrivals — the "
            "row is vulnerable to coordinated omission and gates nothing"
        )
    return problems


#: Benchmark set for the ``cluster`` row: a five-benchmark mix whose
#: compile *and* run paths are healthy (EP/352.ep are compile-only in
#: the loadgen workload), wide enough that the rendezvous hash spreads
#: keys over both shards.
CLUSTER_BENCHMARKS = (
    "303.ostencil",
    "304.olbm",
    "314.omriq",
    "355.seismic",
    "BT",
)


class _LaggyRegressShard:
    """Delegates to an inner ``LocalShard`` but delivers every response
    ``delay_s`` late — the slow replica in the hedging scenario."""

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def try_submit(self, request):
        import threading
        from concurrent.futures import Future

        inner_future = self._inner.try_submit(request)
        if inner_future is None:
            return None
        slow: Future = Future()

        def deliver(done):
            timer = threading.Timer(
                self._delay_s, lambda: slow.set_result(done.result())
            )
            timer.daemon = True
            timer.start()

        inner_future.add_done_callback(deliver)
        return slow


def collect_cluster(attempts: int = 3) -> dict:
    """The sharded-serving row (``docs/sharding.md``).

    Three sub-measurements against a two-shard consistent-hash router
    over one shared disk-cache namespace:

    * **steady** — the fixed-rate open-loop profile must finish with
      zero errors, a warm hit rate >= 0.9, a router p99 under the
      ``slo`` row's absolute bound, and per-shard balance within 20% of
      fair (``balance_coefficient <= 1.2``);
    * **churn** — the same load with a drain + restart of shard 1 fired
      mid-run must still complete every request with zero errors, and a
      post-restart compile probe over every distinct source must answer
      from a cache tier (>= 0.9 — the shared disk tier carries the
      restarted shard's keys, so a rolling restart loses no warm state);
    * **hedge** — against a deliberately laggy primary, the hedged
      retry must win at least once and every request must still succeed.

    Like ``collect_slo``, the row measures wall clock: a failing attempt
    is re-measured (up to ``attempts`` total) so a transient load spike
    cannot fail a healthy build; a real routing or drain bug fails every
    attempt.
    """
    row: dict = {}
    for _ in range(max(1, attempts)):
        row = _measure_cluster()
        if not check_cluster(row):
            return row
    return row


def _measure_cluster() -> dict:
    import tempfile
    import threading

    from repro.loadgen import LoadProfile, run_load, workload_specs
    from repro.serve.broker import BrokerConfig
    from repro.serve import hashring
    from repro.serve.cluster import (
        ClusterConfig,
        LocalShard,
        Router,
        routing_key,
    )

    profile = LoadProfile(
        rate_rps=25.0,
        duration_s=1.2,
        arrival="fixed",
        benchmarks=CLUSTER_BENCHMARKS,
        seed=0,
    )
    specs, _runnable = workload_specs(profile)
    row: dict = {"shards": 2, "profile": None}
    with tempfile.TemporaryDirectory(prefix="repro-cluster-bench-") as tmp:
        config = ClusterConfig(
            shards=2, broker=BrokerConfig(workers=2, cache_dir=tmp)
        )

        # 1. Steady state: balance and tail latency on the warm path.
        with Router(config) as router:
            # Warm the run path too (first run pays the executor build).
            run_load(
                LoadProfile(
                    rate_rps=20.0,
                    duration_s=0.5,
                    arrival="fixed",
                    benchmarks=CLUSTER_BENCHMARKS,
                    seed=1,
                ),
                broker=router,
            )
            report = run_load(profile, broker=router)
        balance = report["shard_balance"] or {}
        row["profile"] = report["profile"]
        row["steady"] = {
            "scheduled": report["requests"]["scheduled"],
            "completed": report["requests"]["completed"],
            "error_rate": report["error_rate"],
            "warm_hit_rate": report["warm_hit_rate"],
            "p99_ms": report["latency_ms"]["overall"]["p99"],
            "per_shard": report["per_shard"],
            "shards_seen": balance.get("shards_seen", 0),
            "balance_coefficient": balance.get("balance_coefficient"),
        }

        # 2. Churn: drain + restart shard 1 mid-run, same cache dir.
        with Router(config) as router:
            drain_result: dict = {}
            timer = threading.Timer(
                0.45,
                lambda: drain_result.update(
                    router.drain_shard(1, restart=True)
                ),
            )
            timer.start()
            report = run_load(profile, broker=router)
            timer.join()
            # Post-restart probe: shard 1 lost its memory tier, so a
            # cache answer here means the shared disk tier carried it.
            # The env must match loadgen's compile requests — the compile
            # cache keys on it (the routing key does not).
            warm = 0
            for spec in specs:
                env = {k: int(v) for k, v in spec.interpreter_args().items()}
                resp = router.handle(
                    {"op": "compile", "source": spec.source, "env": env}
                )
                if resp.get("ok") and resp["result"].get("cached") in (
                    "memory",
                    "disk",
                ):
                    warm += 1
            stanza = router.telemetry_snapshot()["cluster"]
        row["churn"] = {
            "scheduled": report["requests"]["scheduled"],
            "completed": report["requests"]["completed"],
            "error_rate": report["error_rate"],
            "drains": stanza["drains"],
            "restarts": stanza["restarts"],
            "drain_ms": drain_result.get("drain_ms"),
            "warm_after_restart": warm / len(specs),
        }

        # 3. Hedging: make the shard that owns one key laggy; the hedge
        # to the next rank (disk-warm from the runs above) must win.
        request = {"op": "compile", "source": specs[0].source}
        members = ["shard-0", "shard-1"]
        owner = members.index(hashring.route(routing_key(request), members))
        shards = [
            LocalShard(i, BrokerConfig(workers=1, cache_dir=tmp))
            for i in range(2)
        ]
        shards[owner] = _LaggyRegressShard(shards[owner], delay_s=0.4)
        hedge_config = ClusterConfig(
            shards=2, hedge_after_ms=50.0, hot_key_min_hits=10_000
        )
        with Router(hedge_config, shards=shards) as router:
            ok = sum(
                1 if router.handle(dict(request)).get("ok") else 0
                for _ in range(3)
            )
            stanza = router.telemetry_snapshot()["cluster"]
        row["hedge"] = {
            "requests": 3,
            "ok": ok,
            "hedges": stanza["hedges"],
            "hedge_wins": stanza["hedge_wins"],
        }
    return row


def check_cluster(row: dict) -> list[str]:
    """Absolute gates on the sharded-serving row."""
    problems: list[str] = []
    steady, churn, hedge = row["steady"], row["churn"], row["hedge"]
    for name, part in (("steady", steady), ("churn", churn)):
        if part["completed"] != part["scheduled"]:
            problems.append(
                f"cluster: {name} run completed {part['completed']} of "
                f"{part['scheduled']} scheduled requests"
            )
        if part["error_rate"] != 0.0:
            problems.append(
                f"cluster: {name} run error rate {part['error_rate']} "
                f"(gate: 0) — the router is failing requests"
            )
    if steady["warm_hit_rate"] is None or steady["warm_hit_rate"] < 0.9:
        problems.append(
            f"cluster: steady warm hit rate {steady['warm_hit_rate']} "
            f"(gate: >= 0.9) — sharded routing is missing the cache"
        )
    if steady["p99_ms"] >= SLO_P99_MS:
        problems.append(
            f"cluster: router p99 is {steady['p99_ms']} ms "
            f"(gate: < {SLO_P99_MS} ms)"
        )
    if steady["shards_seen"] != row["shards"]:
        problems.append(
            f"cluster: load reached {steady['shards_seen']} of "
            f"{row['shards']} shards — routing is not spreading keys"
        )
    coefficient = steady["balance_coefficient"]
    if coefficient is None or coefficient > 1.2:
        problems.append(
            f"cluster: balance coefficient {coefficient} (gate: <= 1.2, "
            f"i.e. the busiest shard within 20% of its fair 1/N share)"
        )
    if churn["drains"] < 1 or churn["restarts"] < 1:
        problems.append(
            f"cluster: mid-run churn recorded {churn['drains']} drains / "
            f"{churn['restarts']} restarts (expected >= 1 each) — the "
            f"drain never happened, the run gated nothing"
        )
    if churn["warm_after_restart"] < 0.9:
        problems.append(
            f"cluster: warm hit rate after drain+restart is "
            f"{churn['warm_after_restart']} (gate: >= 0.9) — the shared "
            f"disk tier did not carry the restarted shard's keys"
        )
    if hedge["ok"] != hedge["requests"]:
        problems.append(
            f"cluster: {hedge['ok']} of {hedge['requests']} hedged "
            f"requests succeeded against a laggy primary"
        )
    if hedge["hedge_wins"] < 1:
        problems.append(
            f"cluster: {hedge['hedge_wins']} hedge wins over "
            f"{hedge['hedges']} hedges — the hedged retry never beat the "
            f"laggy primary"
        )
    return problems


#: Published MI200-series occupancy ladder: architected VGPRs per lane
#: -> resident wavefronts per SIMD (the CDNA2 rule the `fleet` row
#: gates; the same table is unit-tested in tests/gpu/test_arch_registry.py).
CDNA2_EXPECTED_WAVES = {
    64: 8, 72: 7, 84: 6, 102: 5, 128: 4, 170: 3, 256: 2,
}


def collect_fleet() -> dict:
    """The multi-arch fleet row (``docs/serving.md``): the CDNA2
    occupancy table, and the placement guarantee over the full benchmark
    suite — routing each benchmark across a two-arch fleet must never
    model slower than the single-arch (Kepler) default.
    """
    from repro.gpu.arch import CDNA2_MI250
    from repro.serve.placement import choose_placement

    load_all()
    specs = list(SPEC.all()) + list(NAS.all())
    fleet = ("kepler-k20xm", "cdna2-mi250")

    session = CompilerSession()
    placements: dict[str, dict] = {}
    for spec in specs:
        decision = choose_placement(
            session,
            spec.source,
            SMALL_DIM_SAFARA,
            fleet,
            dict(spec.env),
            launches=spec.launches,
        )
        default_ms = next(
            c.model_ms for c in decision.candidates if c.arch == fleet[0]
        )
        placements[spec.name] = {
            "arch": decision.arch,
            "model_ms": round(decision.model_ms, 6),
            "single_arch_default_ms": round(default_ms, 6),
        }
    return {
        "fleet": list(fleet),
        "config": SMALL_DIM_SAFARA.name,
        # gated (deterministic):
        "cdna2_waves_per_simd": {
            str(vgprs): CDNA2_MI250.waves_per_simd(vgprs)
            for vgprs in CDNA2_EXPECTED_WAVES
        },
        "placements": placements,
    }


def check_fleet(row: dict) -> list[str]:
    """Absolute gates on the fleet row."""
    problems: list[str] = []
    for vgprs, expected in CDNA2_EXPECTED_WAVES.items():
        got = row["cdna2_waves_per_simd"][str(vgprs)]
        if got != expected:
            problems.append(
                f"fleet: CDNA2 occupancy at {vgprs} VGPRs is {got} "
                f"waves/SIMD (published limit: {expected})"
            )
    for name, cell in row["placements"].items():
        if cell["model_ms"] > cell["single_arch_default_ms"]:
            problems.append(
                f"fleet: {name} routed to {cell['arch']} at "
                f"{cell['model_ms']} ms — worse than the single-arch "
                f"default ({cell['single_arch_default_ms']} ms)"
            )
    return problems


def check_tune(row: dict) -> list[str]:
    """Absolute gates on the autotuning row."""
    problems: list[str] = []
    if row["tuned_ms"] > row["default_ms"]:
        problems.append(
            f"tune: tuned config is slower than the default "
            f"({row['tuned_ms']} ms vs {row['default_ms']} ms) — the "
            f"reference-first guarantee is broken"
        )
    if row["warm_evaluated"] != 0:
        problems.append(
            f"tune: warm re-tune evaluated {row['warm_evaluated']} points "
            f"(expected 0) — the ledger did not replay the scores"
        )
    if row["warm_backend_compilations"] != 0:
        problems.append(
            f"tune: warm re-tune performed "
            f"{row['warm_backend_compilations']} backend compilations "
            f"(expected 0)"
        )
    if row["warm_ledger_hits"] != row["trials"]:
        problems.append(
            f"tune: warm re-tune replayed {row['warm_ledger_hits']} of "
            f"{row['trials']} cold trials"
        )
    return problems


def check_serve(serve: dict) -> list[str]:
    """Absolute (not baseline-relative) gates on the serve row."""
    problems: list[str] = []
    if serve["cold_backend_compilations"] <= 0:
        problems.append(
            "serve: cold pass performed no backend compilations — the "
            "SAFARA feedback loop did not run, the row measures nothing"
        )
    if serve["warm_backend_compilations"] > 0:
        problems.append(
            f"serve: warm restart re-ran the feedback loop "
            f"({serve['warm_backend_compilations']} backend compilations; "
            f"expected 0) — the disk cache did not serve the programs"
        )
    expected_hits = len(serve["benchmarks"])
    if serve["disk_hits"] != expected_hits:
        problems.append(
            f"serve: warm restart hit the disk cache {serve['disk_hits']} "
            f"times (expected {expected_hits})"
        )
    return problems


def compare(old: dict, new: dict) -> list[str]:
    """Regression messages over the key intersection of two ledgers."""
    problems: list[str] = []
    old_entries = old.get("entries", {})
    for key, entry in new["entries"].items():
        prev = old_entries.get(key)
        if prev is None:
            continue
        checks = (
            # (metric, regression == new value worse when larger?)
            ("model_ms", True),
            ("speedup_over_base", False),
            ("max_registers", True),
        )
        for metric, larger_is_worse in checks:
            was, now = prev.get(metric), entry.get(metric)
            if not was or now is None:
                continue
            ratio = now / was if larger_is_worse else was / now
            if ratio > 1.0 + THRESHOLD:
                problems.append(
                    f"{key}: {metric} regressed {was} -> {now} "
                    f"({(ratio - 1.0) * 100.0:.1f}% past the "
                    f"{THRESHOLD * 100.0:.0f}% gate)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI subset of benchmarks/configs"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=LEDGER,
        help=f"ledger path (default: {LEDGER})",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        help="write a Chrome trace_event file of the whole sweep",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="compare only; leave the ledger untouched",
    )
    opts = parser.parse_args(argv)

    if opts.trace:
        from repro.obs.chrome import write_chrome_trace
        from repro.obs.tracer import Tracer

        tracer = Tracer(enabled=True)
        with tracer.activate():
            doc = collect(opts.quick)
        write_chrome_trace(opts.trace, tracer)
        print(f"trace: {len(tracer.spans)} spans -> {opts.trace}")
    else:
        doc = collect(opts.quick)

    meta = doc["meta"]
    print(
        f"{len(doc['entries'])} cells over {meta['benchmarks']} benchmarks x "
        f"{len(meta['configs'])} configs in {meta['wall_ms']:.0f} ms "
        f"({meta['cache']['hits']} cache hits)"
    )

    doc["serve"] = collect_serve()
    serve_problems = check_serve(doc["serve"])
    if serve_problems:
        print(f"\nFAIL: serve warm-restart gate:", file=sys.stderr)
        for p in serve_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"serve: warm restart {doc['serve']['warm_compile_ms']:.0f} ms vs "
        f"{doc['serve']['cold_compile_ms']:.0f} ms cold, "
        f"0 backend compilations over {doc['serve']['disk_hits']} disk hits"
    )

    doc["tune"] = collect_tune()
    tune_problems = check_tune(doc["tune"])
    if tune_problems:
        print(f"\nFAIL: tune gate:", file=sys.stderr)
        for p in tune_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"tune: {doc['tune']['benchmark']} best "
        f"{doc['tune']['tuned_ms']:.3f} ms vs default "
        f"{doc['tune']['default_ms']:.3f} ms "
        f"({doc['tune']['speedup_over_default']:.3f}x, "
        f"{doc['tune']['trials']} trials; warm re-tune replayed all, "
        f"0 backend compilations)"
    )

    doc["esat"] = collect_esat()
    esat_problems = check_esat(doc["esat"])
    if esat_problems:
        print(f"\nFAIL: esat gate:", file=sys.stderr)
        for p in esat_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    wins = doc["esat"]["register_wins"]
    print(
        f"esat: {len(doc['esat']['kernels'])} benchmarks never worse, "
        f"geomean {doc['esat']['geomean_speedup']:.4f}x, register "
        f"pressure down on {len(wins)} ({', '.join(wins)}); widened-space "
        f"warm re-tune replayed {doc['esat']['warm_ledger_hits']} trials, "
        f"0 backend compilations"
    )

    doc["hotpath"] = collect_hotpath()
    hotpath_problems = check_hotpath(doc["hotpath"])
    if hotpath_problems:
        print(f"\nFAIL: hotpath gate:", file=sys.stderr)
        for p in hotpath_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"hotpath: warm compile p50 "
        f"{doc['hotpath']['warm_compile_p50_ms']:.3f} ms, codegen "
        f"{doc['hotpath']['codegen_speedup_x']:.3f}x over the interpreting "
        f"engine ({len(doc['hotpath']['benchmarks'])} benchmarks), "
        f"compile_many {doc['hotpath']['compile_many_scaling_x']:.2f}x "
        f"at 4 workers"
    )

    doc["slo"] = collect_slo()
    slo_problems = check_slo(doc["slo"])
    if slo_problems:
        print(f"\nFAIL: slo gate:", file=sys.stderr)
        for p in slo_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        f"slo: {doc['slo']['completed']} requests at "
        f"{doc['slo']['offered_rps']:.0f} rps open-loop, 0 errors, warm hit "
        f"rate {doc['slo']['warm_hit_rate']:.2f}, p99 "
        f"{doc['slo']['p99_ms']:.1f} ms (gate < {SLO_P99_MS:.0f} ms)"
    )

    doc["fleet"] = collect_fleet()
    fleet_problems = check_fleet(doc["fleet"])
    if fleet_problems:
        print(f"\nFAIL: fleet gate:", file=sys.stderr)
        for p in fleet_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    routed = doc["fleet"]["placements"]
    by_arch: dict[str, int] = {}
    for cell in routed.values():
        by_arch[cell["arch"]] = by_arch.get(cell["arch"], 0) + 1
    chosen = ", ".join(f"{n} -> {a}" for a, n in sorted(by_arch.items()))
    print(
        f"fleet: CDNA2 occupancy table matches the published limits; "
        f"{len(routed)} benchmarks routed ({chosen}), none worse than "
        f"the single-arch default"
    )

    doc["cluster"] = collect_cluster()
    cluster_problems = check_cluster(doc["cluster"])
    if cluster_problems:
        print(f"\nFAIL: cluster gate:", file=sys.stderr)
        for p in cluster_problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    steady = doc["cluster"]["steady"]
    churn = doc["cluster"]["churn"]
    print(
        f"cluster: {steady['completed']} requests over 2 shards, 0 errors, "
        f"balance {steady['balance_coefficient']:.2f}, p99 "
        f"{steady['p99_ms']:.1f} ms; mid-run drain+restart kept 0 errors "
        f"with warm hit rate {churn['warm_after_restart']:.2f} after "
        f"rejoin; hedging won {doc['cluster']['hedge']['hedge_wins']} of "
        f"{doc['cluster']['hedge']['hedges']} hedges"
    )

    if opts.output.exists():
        old = json.loads(opts.output.read_text())
        problems = compare(old, doc)
        if problems:
            print(f"\nFAIL: {len(problems)} regression(s) vs {opts.output}:",
                  file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            return 1
        shared = len(set(old.get("entries", {})) & set(doc["entries"]))
        print(f"no regressions over {shared} shared cells")
        # A quick run only covers a subset of cells: keep the cells it did
        # not re-measure so the full baseline survives partial updates.
        doc["entries"] = {**old.get("entries", {}), **doc["entries"]}
    else:
        print(f"no previous ledger at {opts.output}; writing a baseline")

    if not opts.no_write:
        opts.output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {opts.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
