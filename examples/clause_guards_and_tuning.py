#!/usr/bin/env python3
"""Runtime clause guards and register-cap tuning.

Two topics from the paper beyond the core algorithm:

1. **Section IV's safety net** — "the compiler can generate two versions
   of each kernel ... At runtime ... a decision will be made to execute
   the optimized or unoptimized kernel."  We compile a kernel whose `dim`
   clause may or may not be truthful depending on the runtime sizes, and
   watch the guard pick the right version.

2. **The open problem the paper cites (Volkov)** — the optimal
   registers-per-thread vs occupancy trade-off.  With the feedback loop's
   register cap (the `ptxas --maxrregcount` analogue) we sweep the
   trade-off curve on the seismic flagship.

(``compile_guarded``/``compile_source``/``time_program`` are
default-``CompilerSession`` shims; see ``docs/pipeline.md`` for the
session API they delegate to.)

Run:  python examples/clause_guards_and_tuning.py
"""

from repro.bench import load_all
from repro.compiler import SMALL_DIM_SAFARA, compile_guarded, compile_source, time_program
from repro.ir import build_module
from repro.lang import parse_program

GUARDED_SRC = """
kernel blend(const double u[1:nz][1:ny][1:nx], const double v[1:mz][1:my][1:mx],
             double out[1:nz][1:ny][1:nx],
             int nx, int ny, int nz, int mx, int my, int mz) {
  #pragma acc kernels loop gang vector(64) \\
      dim((1:nz, 1:ny, 1:nx)(u, v, out)) small(u, v, out)
  for (i = 1; i < nx; i++) {
    out[1][1][i] = 0.5 * (u[1][1][i] + v[1][1][i]);
  }
}
"""


def main() -> None:
    print("=== 1. runtime clause verification (two-version scheme) ===")
    fn = build_module(parse_program(GUARDED_SRC)).functions[0]
    guarded = compile_guarded(fn.regions()[0], fn.symtab, name="blend")
    print(f"optimized : {guarded.optimized_info.summary()}")
    print(f"fallback  : {guarded.fallback_info.summary()}")

    truthful = {"nx": 64, "ny": 32, "nz": 16, "mx": 64, "my": 32, "mz": 16}
    lying = dict(truthful, mz=8)  # v's shape no longer matches the clause

    for label, env in (("truthful sizes", truthful), ("lying sizes", lying)):
        kernel, info, verdict = guarded.select(env)
        print(f"\n{label}: selected {kernel.name} ({info.registers} regs)")
        for violation in verdict.violations:
            print(f"  runtime check failed -> {violation}")

    print("\n=== 2. register-cap sweep on 355.seismic (the Volkov trade-off) ===")
    spec_suite, _ = load_all()
    spec = spec_suite.get("355.seismic")
    print(f"{'cap':>5s} {'max regs':>9s} {'time':>11s}")
    best = None
    for limit in (32, 48, 64, 96, 128, 255):
        config = SMALL_DIM_SAFARA.derive(name=f"cap{limit}", register_limit=limit)
        prog = compile_source(spec.source, config)
        t = time_program(prog, dict(spec.env), launches=spec.launches)
        marker = ""
        if best is None or t.total_ms < best[1]:
            best = (limit, t.total_ms)
        print(f"{limit:5d} {prog.max_registers:9d} {t.total_ms:9.1f} ms")
    print(
        f"\nbest cap: {best[0]} registers/thread — an *interior* optimum: the "
        "paper's observation that maximum replacement is not maximum speed."
    )


if __name__ == "__main__":
    main()
