#!/usr/bin/env python3
"""Exploring the simulated GPU substrate.

The reproduction's device model is a library in its own right.  This
example:

* runs the Wong-style latency microbenchmarks (the numbers that seed the
  SAFARA cost model — paper reference [19]);
* sweeps occupancy against registers/thread (the curve behind the paper's
  register-pressure argument);
* shows how the same kernel compiles for a Kepler-class vs a Fermi-class
  device (no read-only cache, 63-register limit) and how SAFARA adapts.

(``compile_source``/``time_program`` are default-``CompilerSession``
shims; see ``docs/pipeline.md`` for the session API they delegate to.)

Run:  python examples/device_exploration.py
"""

from repro.compiler import SMALL_DIM_SAFARA, compile_source, time_program
from repro.gpu import FERMI_LIKE, KEPLER_K20XM, compute_occupancy, measure_all

SRC = """
kernel sweep(const double f1[1:nz][1:ny][1:nx], const double f2[1:nz][1:ny][1:nx],
             double out[1:nz][1:ny][1:nx], int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) small(f1, f2, out) \\
      dim((1:nz, 1:ny, 1:nx)(f1, f2, out))
  for (j = 2; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k < nz; k++) {
        out[k][j][i] = f1[k][j][i] - f1[k-1][j][i] + f2[k][j][i] - f2[k-1][j][i];
      }
    }
  }
}
"""

ENV = {"nx": 512, "ny": 256, "nz": 128}


def main() -> None:
    print("=== latency microbenchmark survey (Tesla K20Xm model) ===")
    for m in measure_all():
        print(f"  {m}")

    print("\n=== occupancy vs registers/thread (256 threads/block) ===")
    print(f"  {'regs':>5s} {'blocks/SM':>9s} {'warps':>6s} {'occupancy':>9s}  limited by")
    for regs in (16, 32, 48, 64, 96, 128, 168, 255):
        occ = compute_occupancy(regs, 256)
        print(
            f"  {regs:5d} {occ.blocks_per_sm:9d} {occ.active_warps:6d} "
            f"{occ.occupancy:9.2f}  {occ.limited_by}"
        )

    print("\n=== the same kernel on two device generations ===")
    for arch in (KEPLER_K20XM, FERMI_LIKE):
        config = SMALL_DIM_SAFARA.with_arch(arch)
        prog = compile_source(SRC, config)
        k = prog.kernels[0]
        t = time_program(prog, ENV, launches=50)
        loads = [
            i for i in k.vir.instrs if i.op.value == "ld"
        ]
        readonly = sum(1 for i in loads if i.space.value == "readonly")
        print(
            f"  {arch.name:16s} regs={k.registers:3d} "
            f"(limit {arch.max_registers_per_thread}) "
            f"readonly-cached loads={readonly}/{len(loads)} "
            f"groups={k.safara.groups_replaced} time={t.total_ms:8.2f} ms"
        )
    print(
        "\nNote the Fermi profile: no read-only data cache (the paper calls the"
        "\nread-only class 'available in NVIDIA Kepler GPUs only') and a 63-"
        "\nregister ceiling that the feedback loop respects automatically."
    )


if __name__ == "__main__":
    main()
