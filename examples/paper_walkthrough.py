#!/usr/bin/env python3
"""Walkthrough of the paper's worked examples (Figures 3–6).

Shows, with before/after source listings produced by the actual
transformation machinery:

* Figure 3 → Figure 4: classic Carr-Kennedy scalar replacement turning an
  independent loop into a sequential one (the hazard);
* Figure 5 → Figure 6: SAFARA on the two-loop example — the cost model
  prefers the uncoalesced array ``b`` over the more-referenced ``a``, and
  replaces it only in the *sequential* inner loop;
* the per-step PTXAS feedback trace.

(``compile_function``/``optimize_region`` are default-``CompilerSession``
shims; see ``docs/pipeline.md`` for the session API they delegate to.)

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis import analyze_loops, classify_access, find_reuse_groups
from repro.compiler import CARR_KENNEDY, compile_function
from repro.feedback import optimize_region
from repro.ir import build_module, format_function
from repro.lang import parse_program

FIG3 = """
kernel fig3(double a[sz], const double b[sz], int SIZE, int sz) {
  #pragma acc kernels loop gang vector(128)
  for (i = 1; i <= SIZE; i++) {
    a[i] = (b[i] + b[i+1]) / 2;
  }
}
"""

FIG5 = """
kernel fig5(double a[isz2][jsz2], const double b[jsz2][isz2],
            double c[jsz2], double d[jsz2],
            int ISIZE, int JSIZE, int isz2, int jsz2) {
  #pragma acc kernels loop gang vector(64)
  for (j = 1; j <= JSIZE; j++) {
    c[j] = b[j][0] + b[j][1];
    d[j] = c[j] * b[j][0];
    #pragma acc loop seq
    for (i = 1; i <= ISIZE; i++) {
      a[i][j] += a[i-1][j] + b[j][i-1] + a[i+1][j] + b[j][i+1];
    }
  }
}
"""


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    banner("Figure 3: independent iterations (before)")
    fn = build_module(parse_program(FIG3)).functions[0]
    print(format_function(fn))

    banner("Figure 4: after classic Carr-Kennedy — the loop is now SEQUENTIAL")
    compile_function(fn, CARR_KENNEDY)
    print(format_function(fn))
    from repro.ir import Loop

    loop = next(s for s in fn.regions()[0].body if isinstance(s, Loop))
    print(f"\nloop.sequentialized = {loop.sequentialized}  "
          "(the rotation b1 = b0 carries a value across iterations)")

    banner("Figure 5: the running example (before)")
    fn5 = build_module(parse_program(FIG5)).functions[0]
    print(format_function(fn5))

    banner("SAFARA's analysis of the inner (sequential) i-loop")
    region = fn5.regions()[0]
    info = analyze_loops(region)
    iloop = next(l for l in info.loops if l.var.name == "i")
    for group in find_reuse_groups(iloop):
        access = classify_access(group.generator.ref, info.vector_var)
        print(
            f"array {group.array.name}: kind={group.kind.value:9s} "
            f"refs={group.ref_count} span={group.span} "
            f"written={group.has_write} access={access.pattern.value}"
        )
    print(
        "\n-> a is coalesced (and written): not profitable / not legal to rotate"
        "\n-> b is uncoalesced and read-only: the top-cost candidate"
    )

    banner("Figure 6: after SAFARA (feedback-driven)")
    report, feedback = optimize_region(region, fn5.symtab)
    print(format_function(fn5))
    print("\nPTXAS feedback trace:")
    for step, ptxas in enumerate(feedback.history):
        print(f"  compile #{step + 1}: {ptxas.summary()}")
    print(
        f"groups replaced: {report.groups_replaced}; "
        f"converged: {report.converged_reason}"
    )


if __name__ == "__main__":
    main()
