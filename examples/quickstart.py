#!/usr/bin/env python3
"""Quickstart: compile an OpenACC kernel through the full pipeline.

Walks the paper's machinery end to end on a small seismic-style kernel:

1. parse MiniACC source with OpenACC directives (including the proposed
   ``dim`` and ``small`` clauses);
2. compile it under four compiler configurations;
3. read back the simulated ``PTXAS info`` register reports;
4. estimate execution time on the simulated Tesla K20Xm;
5. verify that every configuration computes identical results.

``compile_source`` / ``time_program`` used here are shims over the
process-wide default ``CompilerSession`` — the session API
(``docs/pipeline.md``) is the primary entrypoint and adds caching
(including a persistent disk tier), batching, and statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench.metrics import speedup
from repro.compiler import (
    BASE,
    SAFARA_ONLY,
    SMALL_DIM,
    SMALL_DIM_SAFARA,
    compile_source,
    time_program,
)
from repro.gpu.interpreter import run_kernel
from repro.ir import build_module
from repro.lang import parse_program

SOURCE = """
kernel wave(const double p0[1:nz][1:ny][1:nx], const double p1[1:nz][1:ny][1:nx],
            double p2[1:nz][1:ny][1:nx], const double vel[1:nz][1:ny][1:nx],
            double dt, int nx, int ny, int nz) {
  #pragma acc kernels loop gang vector(2) \\
      dim((1:nz, 1:ny, 1:nx)(p0, p1, p2, vel)) small(p0, p1, p2, vel)
  for (j = 2; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 2; i < nx; i++) {
      #pragma acc loop seq
      for (k = 2; k < nz; k++) {
        double lap = p1[k][j][i+1] + p1[k][j][i-1]
                   + p1[k][j+1][i] + p1[k][j-1][i]
                   + p1[k+1][j][i] + p1[k-1][j][i]
                   - 6.0 * p1[k][j][i];
        p2[k][j][i] = 2.0 * p1[k][j][i] - p0[k][j][i]
                    + dt * vel[k][j][i] * lap;
      }
    }
  }
}
"""

PROBLEM = {"nx": 512, "ny": 256, "nz": 128}


def main() -> None:
    print("=== compile under four configurations ===")
    configs = [BASE, SAFARA_ONLY, SMALL_DIM, SMALL_DIM_SAFARA]
    base_ms = None
    for config in configs:
        program = compile_source(SOURCE, config)
        kernel = program.kernels[0]
        timing = time_program(program, PROBLEM, launches=100)
        ms = timing.total_ms
        if base_ms is None:
            base_ms = ms
        extra = ""
        if kernel.safara is not None:
            extra = (
                f"  [SAFARA: {kernel.safara.groups_replaced} groups replaced in "
                f"{len(kernel.safara.iterations)} feedback round(s), "
                f"{kernel.backend_compilations} backend compilations]"
            )
        print(
            f"{config.name:28s} {kernel.ptxas.summary()}\n"
            f"{'':28s} occupancy={timing.kernels[0].occupancy.occupancy:.2f} "
            f"bound={timing.kernels[0].bound} time={ms:8.2f} ms "
            f"speedup={speedup(base_ms, ms):4.2f}x{extra}"
        )

    print("\n=== verify semantics are preserved ===")
    rng = np.random.default_rng(7)
    small = {"nx": 10, "ny": 8, "nz": 6}
    shape = (small["nz"], small["ny"], small["nx"])

    def run(config):
        fn = build_module(parse_program(SOURCE)).functions[0]
        if config is not None:
            from repro.compiler import compile_function

            compile_function(fn, config)
        args = {
            "p0": p0.copy(), "p1": p1.copy(), "p2": np.zeros(shape),
            "vel": vel.copy(), "dt": 0.001, **small,
        }
        arrays, stats = run_kernel(fn, args)
        return arrays["p2"], stats

    p0 = rng.uniform(-1, 1, shape)
    p1 = rng.uniform(-1, 1, shape)
    vel = rng.uniform(1, 4, shape)

    reference, ref_stats = run(None)
    for config in (SAFARA_ONLY, SMALL_DIM_SAFARA):
        result, stats = run(config)
        np.testing.assert_array_equal(reference, result)
        print(
            f"{config.name:28s} identical results; dynamic loads "
            f"{ref_stats.loads} -> {stats.loads}"
        )
    print("\nok — see examples/seismic_tuning.py for the paper's flagship study")


if __name__ == "__main__":
    main()
