#!/usr/bin/env python3
"""The paper's flagship study: tuning 355.seismic with dim/small + SAFARA.

Reproduces the Section V narrative on the seismic benchmark model:

* Figure 7's hazard — SAFARA alone exhausts registers and *slows the
  benchmark down*;
* Table I — per-hot-kernel register usage under base / +small / w dim;
* Figure 9 — the cumulative speedups once the clauses free registers.

Also prints the CUDA-like rendering of the Figure 8 kernel (HOT5) so you
can see the offset sharing the ``dim`` clause enables.

(``compile_source``/``time_program`` are default-``CompilerSession``
shims; see ``docs/pipeline.md`` for the session API they delegate to.)

Run:  python examples/seismic_tuning.py
"""

from repro.bench import load_all
from repro.bench.paper_data import TABLE1_SEISMIC
from repro.codegen import render_cuda
from repro.compiler import (
    BASE,
    SAFARA_ONLY,
    SMALL,
    SMALL_DIM,
    SMALL_DIM_SAFARA,
    compile_source,
    time_program,
)
from repro.ir import build_module
from repro.lang import parse_program


def main() -> None:
    spec_suite, _ = load_all()
    spec = spec_suite.get("355.seismic")
    print(f"benchmark: {spec.qualified_name} — {spec.description}\n")

    # -- Table I: per-kernel registers ------------------------------------
    print("=== Table I: hot-kernel register usage (ours vs paper) ===")
    progs = {
        "base": compile_source(spec.source, BASE),
        "small": compile_source(spec.source, SMALL),
        "dim": compile_source(spec.source, SMALL_DIM),
    }
    print(f"{'kernel':8s} {'base':>5s} {'+small':>7s} {'w dim':>6s}   paper(base/+small/w dim)")
    for i, paper_row in enumerate(TABLE1_SEISMIC):
        b = progs["base"].kernels[i].registers
        s = progs["small"].kernels[i].registers
        d = progs["dim"].kernels[i].registers
        print(
            f"{paper_row.kernel:8s} {b:5d} {s:7d} {d:6d}   "
            f"{paper_row.base}/{paper_row.small}/{paper_row.dim}"
        )

    # -- Figures 7 and 9: the performance arc ----------------------------
    print("\n=== Figure 7 -> Figure 9: the performance arc ===")
    base_ms = None
    for config in (BASE, SAFARA_ONLY, SMALL, SMALL_DIM, SMALL_DIM_SAFARA):
        prog = compile_source(spec.source, config)
        t = time_program(prog, dict(spec.env), launches=spec.launches)
        if base_ms is None:
            base_ms = t.total_ms
        marker = ""
        if config is SAFARA_ONLY and t.total_ms > base_ms:
            marker = "   <- the Figure 7 regression (registers exhausted)"
        print(
            f"{config.name:28s} {t.total_ms:10.1f} ms  "
            f"speedup={base_ms / t.total_ms:4.2f}x{marker}"
        )

    # -- the Figure 8 kernel, rendered ------------------------------------
    print("\n=== HOT5 (the paper's Figure 8 kernel), CUDA-like rendering ===")
    fn = build_module(parse_program(spec.source)).functions[0]
    region = fn.regions()[4]  # HOT5
    print(render_cuda(region, fn.symtab, name="seismic_hot5"))


if __name__ == "__main__":
    main()
