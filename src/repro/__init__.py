"""repro — reproduction of "Optimizing GPU Register Usage: Extensions to
OpenACC and Compiler Optimizations" (Tian et al., ICPP 2016).

The stable public API is this module's ``__all__``: :func:`compile`,
:func:`run`, and :func:`tune` over the process-default
:class:`CompilerSession`, plus the session and :class:`CompilerConfig`
types for callers that want isolation, :func:`get_arch` /
:func:`list_archs` for selecting a registered GPU architecture profile
by name, and :func:`register_pass` / :func:`get_pass` /
:func:`list_passes` for the pluggable optimization-pass registry the
default pipeline is built from.  Everything else is reachable
through the subpackages but is not covered by the facade's stability
contract; the historical free functions (``compile_source``,
``compile_function``, ``compile_guarded``, ``time_program``,
``optimize_region``) still work but emit a ``DeprecationWarning`` once
per process.

Subpackages:

* :mod:`repro.lang` — MiniACC front end (OpenACC directives incl. the
  proposed ``dim``/``small`` clauses);
* :mod:`repro.ir` — typed loop-nest IR;
* :mod:`repro.analysis` — subscripts, dependences, reuse, coalescing,
  memory spaces, the SAFARA cost model;
* :mod:`repro.transforms` — LICM, Carr-Kennedy, SAFARA, unrolling,
  clause semantics;
* :mod:`repro.codegen` — PTX-like virtual ISA + CUDA-like renderer;
* :mod:`repro.gpu` — the simulated device: ptxas register allocator,
  occupancy/memory/timing models, microbenchmarks, interpreter;
* :mod:`repro.feedback` — the PTXAS-info feedback loop;
* :mod:`repro.pipeline` — the instrumented pass pipeline and the
  content-addressed compile cache (in-memory LRU + persistent sharded
  disk tier);
* :mod:`repro.compiler` — configurations, the :class:`CompilerSession`
  service (cache + pipeline + stats), runtime clause guards;
* :mod:`repro.errors` — the unified exception hierarchy, mapped 1:1
  onto the serve protocol's wire error codes;
* :mod:`repro.obs` — span tracer, metrics registry, kernel profiler;
* :mod:`repro.serve` — the long-running compile-and-run daemon (bounded
  admission, retries with backoff, deadlines, JSON-lines protocol);
* :mod:`repro.tune` — the feedback-guided per-kernel autotuner;
* :mod:`repro.bench` — SPEC/NAS benchmark models and the per-figure
  experiment harness.
"""

__version__ = "1.1.0"

from .compiler.options import BASE, CompilerConfig
from .compiler.session import (
    CompileJob,
    CompilerSession,
    compile_many,
    default_session,
)
from .gpu.arch import get_arch, list_archs
from .pipeline.registry import get_pass, list_passes, register_pass

__all__ = [
    "CompilerConfig",
    "CompilerSession",
    "compile",
    "get_arch",
    "get_pass",
    "list_archs",
    "list_passes",
    "register_pass",
    "run",
    "tune",
]


def compile(  # noqa: A001 - the facade deliberately shadows the builtin
    source: str,
    config: CompilerConfig = BASE,
    *,
    kernel_name: str | None = None,
    filename: str = "<string>",
    env: dict[str, int] | None = None,
):
    """Compile MiniACC source through the process-default session.

    Returns a :class:`~repro.compiler.driver.CompiledProgram`; repeated
    calls with identical (source, config, env) hit the session's
    content-addressed cache.
    """
    return default_session().compile_source(
        source, config, kernel_name=kernel_name, filename=filename, env=env
    )


def run(
    source: str,
    args: dict[str, object],
    *,
    kernel_name: str | None = None,
    filename: str = "<string>",
    executor: str | None = None,
):
    """Parse and execute MiniACC source functionally.

    ``args`` binds every array and scalar parameter of the kernel
    function.  Returns ``(arrays, stats, info)`` from the vectorized
    execution engine (scalar fallback applies unless ``executor``
    overrides the session default).
    """
    from .ir.builder import build_module
    from .lang.parser import parse_program

    module = build_module(parse_program(source, filename))
    fn = (
        module.functions[0]
        if kernel_name is None
        else module.function(kernel_name)
    )
    return default_session().execute(fn, args, executor=executor)


# Imported last: the binding of the `tune` *function* deliberately
# replaces the `repro.tune` submodule attribute on this package (the
# submodule stays importable via `from repro.tune import ...` through
# sys.modules).  repro.tune consumes only this facade, so it must be
# fully initialised first.
from .tune import tune  # noqa: E402
