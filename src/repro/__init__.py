"""repro — reproduction of "Optimizing GPU Register Usage: Extensions to
OpenACC and Compiler Optimizations" (Tian et al., ICPP 2016).

Subpackages:

* :mod:`repro.lang` — MiniACC front end (OpenACC directives incl. the
  proposed ``dim``/``small`` clauses);
* :mod:`repro.ir` — typed loop-nest IR;
* :mod:`repro.analysis` — subscripts, dependences, reuse, coalescing,
  memory spaces, the SAFARA cost model;
* :mod:`repro.transforms` — LICM, Carr-Kennedy, SAFARA, unrolling,
  clause semantics;
* :mod:`repro.codegen` — PTX-like virtual ISA + CUDA-like renderer;
* :mod:`repro.gpu` — the simulated device: ptxas register allocator,
  occupancy/memory/timing models, microbenchmarks, interpreter;
* :mod:`repro.feedback` — the PTXAS-info feedback loop;
* :mod:`repro.pipeline` — the instrumented pass pipeline and the
  content-addressed compile cache (in-memory LRU + persistent sharded
  disk tier);
* :mod:`repro.compiler` — configurations, the :class:`CompilerSession`
  service (cache + pipeline + stats), runtime clause guards;
* :mod:`repro.obs` — span tracer, metrics registry, kernel profiler;
* :mod:`repro.serve` — the long-running compile-and-run daemon (bounded
  admission, retries with backoff, deadlines, JSON-lines protocol);
* :mod:`repro.bench` — SPEC/NAS benchmark models and the per-figure
  experiment harness.
"""

__version__ = "1.0.0"

from .compiler.session import CompileJob, CompilerSession, compile_many, default_session

__all__ = ["CompileJob", "CompilerSession", "compile_many", "default_session"]
