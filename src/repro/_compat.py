"""One-shot deprecation machinery for the legacy free-function API.

The historical entrypoints (``compile_source``, ``compile_function``,
``compile_guarded``, ``time_program``, ``optimize_region``) predate the
:class:`~repro.compiler.session.CompilerSession` service and survive as
shims over the module-level default session.  Each now emits exactly one
:class:`DeprecationWarning` per process pointing at the session API (and
the :mod:`repro` facade), so a long-running service is not flooded while
every consumer still gets told once.
"""

from __future__ import annotations

import warnings

#: Shim names that have already warned in this process.
_warned: set[str] = set()


def warn_legacy(name: str, replacement: str) -> None:
    """Emit the one-per-process deprecation warning for shim ``name``.

    ``stacklevel=3`` points the warning at the shim's *caller* (helper →
    shim → caller), which is the code that needs migrating.
    """
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"{name}() is a deprecated shim over the default CompilerSession; "
        f"use {replacement} (or the repro facade: repro.compile / repro.run "
        f"/ repro.tune) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_legacy_warnings() -> None:
    """Forget which shims have warned (tests assert the once-only
    contract and need a clean slate)."""
    _warned.clear()
