"""Compiler analyses: affine subscripts, dependence/reuse, coalescing,
memory spaces and the SAFARA cost model."""

from .coalescing import AccessInfo, AccessPattern, classify_access, classify_all
from .cost_model import Candidate, LatencyModel, price_candidates
from .dependence import (
    Dependence,
    DepKind,
    dependences,
    is_parallelizable,
    loop_carried_dependences,
)
from .loopinfo import LoopNestInfo, analyze_loops
from .memspace import MemSpace, classify_memspaces, referenced_arrays, written_arrays
from .reuse import (
    GroupKind,
    RefOccurrence,
    ReuseGroup,
    collect_occurrences,
    find_reuse_groups,
    iteration_distance,
)
from .subscripts import AffineForm, affine_of, subscript_distance, subscript_forms

__all__ = [
    "AccessInfo",
    "AccessPattern",
    "AffineForm",
    "Candidate",
    "DepKind",
    "Dependence",
    "GroupKind",
    "LatencyModel",
    "LoopNestInfo",
    "MemSpace",
    "RefOccurrence",
    "ReuseGroup",
    "affine_of",
    "analyze_loops",
    "classify_access",
    "classify_all",
    "classify_memspaces",
    "collect_occurrences",
    "dependences",
    "find_reuse_groups",
    "is_parallelizable",
    "iteration_distance",
    "loop_carried_dependences",
    "price_candidates",
    "referenced_arrays",
    "subscript_distance",
    "subscript_forms",
    "written_arrays",
]
