"""Memory-coalescing classification of array references.

Within a warp, consecutive threads execute consecutive iterations of the
vector loop.  An access is *coalesced* when those threads touch consecutive
memory addresses — i.e. when the vector-loop variable appears with
coefficient ±1 in the fastest-varying (last, row-major) dimension and
nowhere else.  Any other dependence on the vector variable produces strided
or scattered transactions (*uncoalesced*), which the paper's cost model
prices much higher (Section III-A.2).  References not involving the vector
variable at all are *uniform* — one transaction broadcast to the warp.

The classification follows the index-analysis approach of Jang et al.
(paper reference [8]) restricted to affine subscripts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.expr import ArrayRef
from ..ir.symbols import Symbol
from .subscripts import subscript_forms


class AccessPattern(enum.Enum):
    #: Consecutive threads → consecutive addresses (1–2 transactions/warp).
    COALESCED = "coalesced"
    #: Thread-dependent with non-unit stride (up to 32 transactions/warp).
    UNCOALESCED = "uncoalesced"
    #: Same address for the whole warp (broadcast).
    UNIFORM = "uniform"
    #: Subscript not analysable (treated as uncoalesced by the cost model).
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class AccessInfo:
    """Pattern plus element stride between adjacent threads.

    ``stride_elems`` is the address distance (in elements) between
    consecutive threads: 1 for coalesced, 0 for uniform, the detected
    stride otherwise (``None`` when unknown, e.g. the vector variable
    appears in an outer dimension whose row length is symbolic).
    """

    pattern: AccessPattern
    stride_elems: int | None

    @property
    def is_coalesced(self) -> bool:
        return self.pattern is AccessPattern.COALESCED


def classify_access(
    ref: ArrayRef,
    vector_var: Symbol | None,
    divergent: frozenset[Symbol] | set[Symbol] = frozenset(),
) -> AccessInfo:
    """Classify one array reference against the vector-loop variable.

    ``divergent`` holds symbols whose values differ across a warp without
    being the vector variable itself (CSR row-loop counters and scalars
    derived from thread ids/loads); subscripts through them are scattered,
    never uniform.

    With no vector variable (purely gang-parallel or sequential region)
    every access is treated as coalesced-equivalent ``UNIFORM`` — there is
    no warp-level divergence to model.
    """
    if vector_var is None:
        return AccessInfo(AccessPattern.UNIFORM, 0)
    forms = subscript_forms(ref)
    if forms is None:
        return AccessInfo(AccessPattern.UNKNOWN, None)
    if divergent and any(f.depends_on(s) for f in forms for s in divergent):
        return AccessInfo(AccessPattern.UNKNOWN, None)

    last = forms[-1]
    outer = forms[:-1]
    stride_last = last.linear_coefficient(vector_var)
    outer_strides = [f.linear_coefficient(vector_var) for f in outer]
    if stride_last is None or any(s is None for s in outer_strides):
        return AccessInfo(AccessPattern.UNKNOWN, None)

    if stride_last.is_zero and all(s.is_zero for s in outer_strides):
        return AccessInfo(AccessPattern.UNIFORM, 0)
    if any(not s.is_zero for s in outer_strides):
        # The vector variable strides across rows: worst-case scattered.
        stride = _row_stride_elems(
            ref, [s.const if s.is_constant else 1 for s in outer_strides]
        )
        return AccessInfo(AccessPattern.UNCOALESCED, stride)
    if not stride_last.is_constant:
        # Symbolic stride (hand-linearised row access, e.g. i*ny*nx): the
        # run-time stride exceeds a warp's footprint — fully scattered.
        return AccessInfo(AccessPattern.UNCOALESCED, None)
    coef_last = stride_last.const
    if abs(coef_last) == 1:
        return AccessInfo(AccessPattern.COALESCED, 1)
    return AccessInfo(AccessPattern.UNCOALESCED, abs(coef_last))


def _row_stride_elems(ref: ArrayRef, outer_coefs: list[int]) -> int | None:
    """Element stride when the vector variable appears in outer dims.

    Computable only when all the dimensions to the right of the involved
    dimension have static extents.
    """
    if ref.sym.array is None or not ref.sym.array.dims:
        return None
    dims = ref.sym.array.dims
    stride: int | None = None
    # Row-major: stride of dim d = product of extents of dims d+1..end.
    suffix = 1
    static = True
    for d in range(len(dims) - 1, -1, -1):
        if d < len(outer_coefs) and outer_coefs[d] != 0:
            if not static:
                return None
            contrib = abs(outer_coefs[d]) * suffix
            stride = contrib if stride is None else stride + contrib
        extent = dims[d].extent
        if isinstance(extent, int):
            suffix *= extent
        else:
            static = False
    return stride


def classify_all(
    refs: list[ArrayRef], vector_var: Symbol | None
) -> dict[ArrayRef, AccessInfo]:
    """Classify a batch of references (memoised by structural equality)."""
    out: dict[ArrayRef, AccessInfo] = {}
    for ref in refs:
        if ref not in out:
            out[ref] = classify_access(ref, vector_var)
    return out
