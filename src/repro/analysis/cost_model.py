"""The SAFARA cost model (paper Section III-B.3).

Each reuse group (candidate for scalar replacement) is priced as::

    cost = reference_count(R) × memory_access_latency(M)

where ``M`` is the memory space + coalescing class of the group's array.
Candidates are sorted by descending cost and replaced greedily until the
register budget reported by the assembler feedback is exhausted.

Latency defaults follow Wong et al. microbenchmarks (paper reference [19])
scaled to a Kepler-class device; :mod:`repro.gpu.microbench` re-measures
them against the simulated memory hierarchy, closing the calibration loop
the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .coalescing import AccessInfo, AccessPattern
from .memspace import MemSpace


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Per-access latencies in GPU core cycles.

    An uncoalesced warp access is serviced by up to 32 separate memory
    transactions; its *effective* per-reference latency multiplies the base
    latency by a serialisation factor.
    """

    global_mem: float = 440.0
    readonly_cache: float = 160.0
    constant_cache: float = 48.0
    shared_mem: float = 48.0
    local_mem: float = 440.0
    #: Effective multiplier for fully scattered (32-transaction) accesses.
    uncoalesced_factor: float = 8.0
    #: Multiplier for warp-uniform (broadcast) accesses: every warp asks
    #: for the same line, so after the first request it is L2/read-only
    #: cache resident and broadcast to all lanes.
    uniform_factor: float = 0.25

    def base_latency(self, space: MemSpace) -> float:
        return {
            MemSpace.GLOBAL: self.global_mem,
            MemSpace.READONLY: self.readonly_cache,
            MemSpace.CONSTANT: self.constant_cache,
            MemSpace.SHARED: self.shared_mem,
            MemSpace.LOCAL: self.local_mem,
        }[space]

    def access_latency(self, space: MemSpace, access: AccessInfo) -> float:
        """Effective latency of one warp-wide reference."""
        base = self.base_latency(space)
        if access.pattern is AccessPattern.COALESCED:
            return base
        if access.pattern is AccessPattern.UNIFORM:
            return base * self.uniform_factor
        if access.pattern is AccessPattern.UNCOALESCED:
            if access.stride_elems is None:
                return base * self.uncoalesced_factor
            # Transactions grow with stride until fully scattered at 32.
            serialisation = min(float(max(access.stride_elems, 1)), 32.0)
            return base * min(self.uncoalesced_factor, max(serialisation, 2.0))
        return base * self.uncoalesced_factor  # UNKNOWN: conservative


@dataclass(slots=True)
class Candidate:
    """A priced scalar-replacement candidate."""

    group: "object"  # ReuseGroup; kept loose to avoid an import cycle
    space: MemSpace
    access: AccessInfo
    cost: float
    registers_needed: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Candidate({self.group.array.name}, {self.space.value}, "
            f"{self.access.pattern.value}, cost={self.cost:.0f}, "
            f"regs={self.registers_needed})"
        )


def price_candidates(
    groups,
    spaces: dict,
    accesses: dict,
    latency: LatencyModel | None = None,
) -> list[Candidate]:
    """Price and rank reuse groups (highest cost first — the paper's
    "sorted from higher to lower cost").

    ``spaces`` maps array symbols to :class:`MemSpace`; ``accesses`` maps an
    array reference of each group's generator to its :class:`AccessInfo`.
    Deterministic tie-break: textual order of the generator.
    """
    latency = latency or LatencyModel()
    out: list[Candidate] = []
    for group in groups:
        space = spaces.get(group.array, MemSpace.GLOBAL)
        gen_ref = group.generator.ref
        access = accesses.get(gen_ref)
        if access is None:
            access = AccessInfo(AccessPattern.UNKNOWN, None)
        cost = group.ref_count * latency.access_latency(space, access)
        elem_regs = group.array.array.elem.registers if group.array.array else 1
        out.append(
            Candidate(
                group=group,
                space=space,
                access=access,
                cost=cost,
                registers_needed=group.temporaries_needed() * elem_regs,
            )
        )
    out.sort(key=lambda c: (-c.cost, c.group.generator.order))
    return out
