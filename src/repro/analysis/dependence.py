"""Classical dependence analysis over loop nests.

Provides the dependence classification (flow / anti / output / input) with
constant distances that both the Carr-Kennedy baseline and SAFARA build on
(paper Section III-A: "a dependence distance-based data reuse analysis"),
and the loop-parallelisation legality check SAFARA uses to refuse
inter-iteration scalar replacement on parallel loops (Section III-B, first
limitation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.expr import ArrayRef, array_refs
from ..ir.stmt import Assign, If, LocalDecl, Loop, Stmt, walk_stmts
from ..ir.symbols import Symbol
from .reuse import iteration_distance
from .subscripts import subscript_distance, subscript_forms


class DepKind(enum.Enum):
    FLOW = "flow"  # write -> read (true dependence)
    ANTI = "anti"  # read -> write
    OUTPUT = "output"  # write -> write
    INPUT = "input"  # read -> read (not a real dependence; models reuse)


@dataclass(frozen=True, slots=True)
class Dependence:
    """A dependence edge between two references wrt one loop.

    ``distance`` is in iterations of ``loop_var``; ``None`` distance means
    "unknown / possibly any" (conservative).
    """

    kind: DepKind
    source: ArrayRef
    sink: ArrayRef
    loop_var: Symbol
    distance: int | None

    @property
    def is_loop_carried(self) -> bool:
        return self.distance is None or self.distance != 0


@dataclass(slots=True)
class _Access:
    ref: ArrayRef
    is_write: bool


def _accesses_in(loop: Loop) -> list[_Access]:
    """All array accesses anywhere inside the loop (any depth)."""
    out: list[_Access] = []
    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, Assign):
            for ref in array_refs(stmt.value):
                out.append(_Access(ref, False))
            if isinstance(stmt.target, ArrayRef):
                for idx in stmt.target.indices:
                    for ref in array_refs(idx):
                        out.append(_Access(ref, False))
                out.append(_Access(stmt.target, True))
        elif isinstance(stmt, LocalDecl) and stmt.init is not None:
            for ref in array_refs(stmt.init):
                out.append(_Access(ref, False))
        elif isinstance(stmt, If):
            for ref in array_refs(stmt.cond):
                out.append(_Access(ref, False))
    return out


def _dep_kind(a_write: bool, b_write: bool) -> DepKind:
    if a_write and b_write:
        return DepKind.OUTPUT
    if a_write:
        return DepKind.FLOW
    if b_write:
        return DepKind.ANTI
    return DepKind.INPUT


def dependences(loop: Loop, include_input: bool = False) -> list[Dependence]:
    """All dependences between array accesses inside ``loop`` wrt its
    variable.

    Conservative: pairs whose distance cannot be proven constant are
    reported with ``distance=None`` **unless** the subscripts provably never
    alias (different constant subscripts in a dimension the loop variable
    does not appear in).
    """
    from .reuse import volatile_symbols
    from .subscripts import subscript_forms as _forms

    accesses = _accesses_in(loop)
    volatile = volatile_symbols(loop)

    def _is_volatile(ref: ArrayRef) -> bool:
        forms = _forms(ref)
        if forms is None:
            return True
        return any(f.depends_on(s) for f in forms for s in volatile)

    out: list[Dependence] = []

    # Self-conflicts: a write whose target location is not an injective
    # function of the iteration (invariant, volatile/indirect, or
    # non-affine subscripts) can collide with itself across iterations —
    # e.g. ``a[idx[i]] = ...`` or ``a[j] += ...`` inside the i loop.
    for a in accesses:
        if not a.is_write:
            continue
        forms = _forms(a.ref)
        if forms is None or _is_volatile(a.ref):
            injective = False
        else:
            strides = [f.linear_coefficient(loop.var) for f in forms]
            if any(s is None for s in strides):
                injective = False
            else:
                injective = any(not s.is_zero for s in strides)
        if not injective:
            out.append(
                Dependence(
                    kind=DepKind.OUTPUT,
                    source=a.ref,
                    sink=a.ref,
                    loop_var=loop.var,
                    distance=None,
                )
            )

    for i, a in enumerate(accesses):
        for b in accesses[i + 1 :]:
            if a.ref.sym is not b.ref.sym:
                continue
            if not a.is_write and not b.is_write and not include_input:
                continue
            if _is_volatile(a.ref) or _is_volatile(b.ref):
                # Subscripts through loop-defined values: location unknown
                # across iterations — conservative unknown distance.
                dist = None
            else:
                dist = iteration_distance(b.ref, a.ref, loop)
            if dist is None:
                if _provably_independent(a.ref, b.ref, loop):
                    continue
                out.append(
                    Dependence(
                        kind=_dep_kind(a.is_write, b.is_write),
                        source=a.ref,
                        sink=b.ref,
                        loop_var=loop.var,
                        distance=None,
                    )
                )
                continue
            # Normalise so the source is the access that touches the common
            # location in the earlier iteration (distance >= 0).  A negative
            # dist means b's access leads a's.
            if dist < 0:
                src, snk, d = b, a, -dist
            else:
                src, snk, d = a, b, dist
            out.append(
                Dependence(
                    kind=_dep_kind(src.is_write, snk.is_write),
                    source=src.ref,
                    sink=snk.ref,
                    loop_var=loop.var,
                    distance=d,
                )
            )
    return out


def _provably_independent(a: ArrayRef, b: ArrayRef, loop: Loop) -> bool:
    """ZIV-style disproof: some dimension differs by a nonzero constant
    while neither subscript involves the loop variable in that dimension."""
    delta = subscript_distance(a, b)
    if delta is None:
        return False
    fa = subscript_forms(a)
    if fa is None:
        return False
    for d, form in zip(delta, fa):
        if d != 0 and not form.depends_on(loop.var):
            return True
    return False


def loop_carried_dependences(loop: Loop) -> list[Dependence]:
    """Real (non-input) dependences carried across iterations of ``loop``."""
    return [
        d
        for d in dependences(loop, include_input=False)
        if d.is_loop_carried
    ]


def is_parallelizable(loop: Loop) -> bool:
    """Can the loop's iterations run concurrently?

    True when no flow/anti/output dependence is carried by the loop.  This
    is the property the Carr-Kennedy transformation can destroy (paper
    Figures 3–4) and that SAFARA preserves by restricting itself to
    intra-iteration replacement on parallel loops.

    Reductions declared via the ``reduction`` clause are exempted: the
    corresponding scalar updates are handled by the reduction lowering.
    """
    return not loop_carried_dependences(loop)
