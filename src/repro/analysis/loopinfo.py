"""Loop-nest structure of an offload region.

Determines which loops are mapped onto the GPU thread topology (gang →
thread blocks, vector → threads within a block, following the OpenUH
mapping the paper describes in Section II-D) and which execute sequentially
per thread — the distinction SAFARA uses to decide between intra- and
inter-iteration scalar replacement (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.stmt import If, Loop, Region, Stmt
from ..ir.symbols import Symbol


@dataclass(slots=True)
class LoopNestInfo:
    """Structural facts about one offload region's loops."""

    region: Region
    loops: list[Loop] = field(default_factory=list)
    parents: dict[int, Loop | None] = field(default_factory=dict)  # loop_id -> parent
    depths: dict[int, int] = field(default_factory=dict)  # loop_id -> nest depth

    @property
    def parallel_loops(self) -> list[Loop]:
        return [l for l in self.loops if l.is_parallel]

    @property
    def seq_loops(self) -> list[Loop]:
        return [l for l in self.loops if not l.is_parallel]

    @property
    def vector_loop(self) -> Loop | None:
        """The loop mapped to ``threadIdx.x`` — the deepest parallel loop
        with a ``vector`` clause, falling back to the deepest parallel loop.

        Its variable drives coalescing analysis: consecutive values of this
        variable are executed by consecutive threads of a warp.
        """
        vector_loops = [
            l
            for l in self.parallel_loops
            if l.directive is not None and l.directive.vector is not None
        ]
        pool = vector_loops or self.parallel_loops
        if not pool:
            return None
        return max(pool, key=lambda l: self.depths[l.loop_id])

    @property
    def vector_var(self) -> Symbol | None:
        loop = self.vector_loop
        return loop.var if loop is not None else None

    def parallel_vars(self) -> list[Symbol]:
        return [l.var for l in self.parallel_loops]

    def enclosing(self, loop: Loop) -> list[Loop]:
        """Chain of enclosing loops, outermost first (excluding ``loop``)."""
        chain: list[Loop] = []
        cur = self.parents.get(loop.loop_id)
        while cur is not None:
            chain.append(cur)
            cur = self.parents.get(cur.loop_id)
        chain.reverse()
        return chain

    def loop_of_var(self, var: Symbol) -> Loop | None:
        for l in self.loops:
            if l.var is var:
                return l
        return None

    def divergent_symbols(self) -> set[Symbol]:
        """Integer symbols whose per-thread values differ across a warp for
        reasons *other than* being the vector variable itself: scalars
        computed from parallel-loop variables or array loads, and
        sequential-loop variables with such bounds (the CSR row-loop
        pattern ``for (k = rowstr[j]; ...)``).

        An access subscripted by such a symbol is *not* warp-uniform;
        coalescing classification downgrades it to UNKNOWN (scattered).
        """
        from ..ir.expr import array_refs, scalar_reads
        from ..ir.stmt import Assign, LocalDecl, walk_stmts

        tainted: set[Symbol] = set(self.parallel_vars())

        def expr_tainted(e) -> bool:
            if array_refs(e):
                return True
            return any(vr.sym in tainted for vr in scalar_reads(e))

        changed = True
        while changed:
            changed = False
            for stmt in walk_stmts(self.region.body):
                if isinstance(stmt, LocalDecl) and stmt.init is not None:
                    if stmt.sym not in tainted and expr_tainted(stmt.init):
                        tainted.add(stmt.sym)
                        changed = True
                elif isinstance(stmt, Assign) and not hasattr(stmt.target, "indices"):
                    sym = stmt.target.sym
                    if sym not in tainted and expr_tainted(stmt.value):
                        tainted.add(sym)
                        changed = True
                elif isinstance(stmt, Loop) and not stmt.is_parallel:
                    if stmt.var not in tainted and (
                        expr_tainted(stmt.init) or expr_tainted(stmt.bound)
                    ):
                        tainted.add(stmt.var)
                        changed = True
        return tainted - set(self.parallel_vars())

    def inner_loops(self, loop: Loop) -> list[Loop]:
        """Loops strictly inside ``loop``."""
        return [
            l
            for l in self.loops
            if l is not loop and self._is_ancestor(loop, l)
        ]

    def _is_ancestor(self, outer: Loop, inner: Loop) -> bool:
        cur = self.parents.get(inner.loop_id)
        while cur is not None:
            if cur is outer:
                return True
            cur = self.parents.get(cur.loop_id)
        return False


def analyze_loops(region: Region) -> LoopNestInfo:
    """Build the :class:`LoopNestInfo` of an offload region."""
    info = LoopNestInfo(region=region)

    def visit(stmts: list[Stmt], parent: Loop | None, depth: int) -> None:
        for stmt in stmts:
            if isinstance(stmt, Loop):
                info.loops.append(stmt)
                info.parents[stmt.loop_id] = parent
                info.depths[stmt.loop_id] = depth
                visit(stmt.body, stmt, depth + 1)
            elif isinstance(stmt, If):
                visit(stmt.then_body, parent, depth)
                visit(stmt.else_body, parent, depth)
            elif isinstance(stmt, Region):  # nested regions are not allowed
                raise ValueError("nested OpenACC compute regions are not supported")

    visit(region.body, None, 0)
    return info
