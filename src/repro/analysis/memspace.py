"""GPU memory-space classification of arrays in an offload region.

The paper (Section III-B.1) classifies array references into shared,
constant, read-only and global memory; its implementation "only considers
read-only and global memory accesses", and so does ours:

* an array that is never written inside the region **and** is declared
  ``const`` or ``restrict`` is eligible for the Kepler Read-only Data
  Cache (lowered through ``ld.global.nc`` / ``__ldg``);
* everything else lives in plain global memory.

Shared/constant placement would be a separate optimization (the paper cites
PORPLE [6]) and is out of scope here, exactly as it is in the paper.
"""

from __future__ import annotations

import enum

from ..ir.expr import ArrayRef, array_refs
from ..ir.stmt import Assign, Region, walk_stmts
from ..ir.symbols import Symbol


class MemSpace(enum.Enum):
    GLOBAL = "global"
    READONLY = "readonly"  # global data cached via the Read-only Data Cache
    CONSTANT = "constant"
    SHARED = "shared"
    LOCAL = "local"  # register spill space


def written_arrays(region: Region) -> set[Symbol]:
    """Arrays stored to anywhere in the region."""
    out: set[Symbol] = set()
    for stmt in walk_stmts(region.body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
            out.add(stmt.target.sym)
    return out


def referenced_arrays(region: Region) -> set[Symbol]:
    """Arrays read or written anywhere in the region (including local
    declaration initialisers, conditions and loop bounds)."""
    from ..ir.stmt import stmt_exprs

    out: set[Symbol] = set()
    for stmt in walk_stmts(region.body):
        for expr in stmt_exprs(stmt):
            for ref in array_refs(expr):
                out.add(ref.sym)
            if isinstance(expr, ArrayRef):
                out.add(expr.sym)
    return out


def classify_memspaces(
    region: Region, has_readonly_cache: bool = True
) -> dict[Symbol, MemSpace]:
    """Memory space of every array referenced in the region.

    ``has_readonly_cache=False`` models pre-Kepler devices (the paper notes
    the read-only category is "available in NVIDIA Kepler GPUs only").
    """
    written = written_arrays(region)
    spaces: dict[Symbol, MemSpace] = {}
    for sym in referenced_arrays(region):
        if (
            has_readonly_cache
            and sym not in written
            and (sym.is_const or sym.is_restrict)
        ):
            spaces[sym] = MemSpace.READONLY
        else:
            spaces[sym] = MemSpace.GLOBAL
    return spaces
