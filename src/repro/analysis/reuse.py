"""Data-reuse analysis for scalar replacement.

Implements the reuse-detection half of the paper's Section III: for a given
loop, array references are partitioned into *reuse groups* — sets of
references touching the same memory locations, either within one iteration
(intra-iteration reuse) or a constant number of iterations apart
(inter-iteration reuse), or independent of the loop variable entirely
(loop-invariant reuse).

A reuse group is the unit the scalar-replacement transformation operates
on, and the unit the SAFARA cost model prices (Section III-B.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ir.expr import ArrayRef, Expr, array_refs
from ..ir.stmt import Assign, If, LocalDecl, Loop, Stmt
from ..ir.symbols import Symbol
from .subscripts import subscript_forms


class GroupKind(enum.Enum):
    #: Same location every iteration of the loop (subscripts do not involve
    #: the loop variable): one load hoisted before the loop.
    INVARIANT = "invariant"
    #: Same location referenced several times within one iteration.
    INTRA = "intra"
    #: Locations a constant iteration-distance apart: rotating temporaries
    #: (the classic Carr-Kennedy pattern, Figures 3–4 of the paper).
    INTER = "inter"


@dataclass(slots=True)
class RefOccurrence:
    """One textual occurrence of an array reference at the analysed level."""

    ref: ArrayRef
    stmt: Stmt
    is_write: bool
    order: int  # textual position, for first-use decisions


@dataclass(slots=True)
class ReuseGroup:
    """A set of occurrences proven to touch the same data."""

    array: Symbol
    loop: Loop
    kind: GroupKind
    occurrences: list[RefOccurrence] = field(default_factory=list)
    #: Iteration lag of each occurrence behind the generator (same length
    #: as ``occurrences``); all zero for INTRA/INVARIANT groups.
    lags: list[int] = field(default_factory=list)

    @property
    def span(self) -> int:
        """Max lag — number of extra rotating temporaries needed."""
        return max(self.lags, default=0)

    @property
    def has_write(self) -> bool:
        return any(o.is_write for o in self.occurrences)

    @property
    def ref_count(self) -> int:
        """Static reference count (paper's ``reference_count(R)``)."""
        return len(self.occurrences)

    @property
    def distinct_refs(self) -> list[ArrayRef]:
        seen: list[ArrayRef] = []
        for occ in self.occurrences:
            if occ.ref not in seen:
                seen.append(occ.ref)
        return seen

    @property
    def generator(self) -> RefOccurrence:
        """The occurrence whose load feeds the group (lag 0, first in
        textual order)."""
        best = None
        for occ, lag in zip(self.occurrences, self.lags):
            if lag == 0 and (best is None or occ.order < best.order):
                best = occ
        assert best is not None
        return best

    def temporaries_needed(self) -> int:
        """Scalar temporaries required to realise the reuse."""
        if self.kind is GroupKind.INTER:
            return self.span + 1
        return 1

    def loads_saved(self) -> int:
        """Memory loads eliminated per iteration by replacing this group.

        Every read occurrence except the generator's single load becomes a
        register read.  Stores are never eliminated (writes remain).
        """
        reads = sum(1 for o in self.occurrences if not o.is_write)
        if self.kind is GroupKind.INTER:
            # One new load per iteration (the leading reference).
            return max(0, reads - 1)
        if self.kind is GroupKind.INVARIANT:
            # Load hoisted out of the loop: all per-iteration loads saved.
            return reads
        first_is_write = min(self.occurrences, key=lambda o: o.order).is_write
        return reads if first_is_write else max(0, reads - 1)


def collect_occurrences(loop: Loop) -> list[RefOccurrence]:
    """Array references at the *immediate* body level of ``loop``.

    References nested in deeper loops are analysed when those loops are
    processed; references under ``if`` statements are excluded because
    hoisting their loads would change which locations the program touches
    (the paper's prototype makes the same simplification — conditional
    scalar replacement is the Budiu approach it argues against for GPUs).
    """
    occs: list[RefOccurrence] = []
    order = 0
    for stmt in loop.body:
        if isinstance(stmt, Assign):
            # RHS reads, evaluated before the store.
            for ref in array_refs(stmt.value):
                occs.append(RefOccurrence(ref=ref, stmt=stmt, is_write=False, order=order))
                order += 1
            # Subscript computations of the target are reads of scalars
            # only; the element itself is written.
            if isinstance(stmt.target, ArrayRef):
                for idx in stmt.target.indices:
                    for ref in array_refs(idx):
                        occs.append(
                            RefOccurrence(ref=ref, stmt=stmt, is_write=False, order=order)
                        )
                        order += 1
                occs.append(
                    RefOccurrence(ref=stmt.target, stmt=stmt, is_write=True, order=order)
                )
                order += 1
        elif isinstance(stmt, LocalDecl) and stmt.init is not None:
            for ref in array_refs(stmt.init):
                occs.append(RefOccurrence(ref=ref, stmt=stmt, is_write=False, order=order))
                order += 1
    return occs


def iteration_distance(a: ArrayRef, b: ArrayRef, loop: Loop) -> int | None:
    """Number of ``loop`` iterations by which ``a`` trails ``b``.

    ``d`` such that the location ``a`` touches at iteration ``t + d`` equals
    the location ``b`` touches at iteration ``t`` — i.e. positive ``d``
    means ``a`` re-reads data ``b`` produced/loaded ``d`` iterations ago.
    Returns ``None`` when the references are unrelated (different arrays,
    non-affine, non-constant distance, or inconsistent across dimensions).
    """
    if a.sym is not b.sym or len(a.indices) != len(b.indices):
        return None
    fa = subscript_forms(a)
    fb = subscript_forms(b)
    if fa is None or fb is None:
        return None
    var = loop.var
    d: int | None = None
    for da, db in zip(fa, fb):
        diff = db - da
        # The difference must not itself involve the loop variable (same
        # stride on both sides) — and may be symbolic only in ways that are
        # exact multiples of the stride (e.g. planes of size ny*nx).
        if diff.depends_on(var):
            return None
        cv = da.linear_coefficient(var)
        if cv is None:
            return None  # non-affine in the loop variable
        if cv.is_zero:
            if not diff.is_zero:
                return None
            continue
        ratio = diff.as_int_multiple_of(cv.scale(loop.step))
        if ratio is None:
            return None
        if d is None:
            d = ratio
        elif d != ratio:
            return None
    return 0 if d is None else d


def volatile_symbols(loop: Loop) -> set[Symbol]:
    """Scalars *assigned* while ``loop`` runs (assignment targets and local
    declarations anywhere in the body).

    A subscript depending on such a symbol does not describe a fixed
    location per iteration of ``loop`` — e.g. an indirect index loaded from
    a neighbour list — so cross-iteration reuse must not be assumed.
    Inner loop *variables* are deliberately excluded: they enumerate the
    same range every outer iteration, so treating them as free symbols in
    distance arithmetic is sound (a constant distance holds pointwise for
    each of their values).
    """
    from ..ir.stmt import walk_stmts

    out: set[Symbol] = set()
    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, Assign) and not isinstance(stmt.target, ArrayRef):
            out.add(stmt.target.sym)
        elif isinstance(stmt, LocalDecl):
            out.add(stmt.sym)
    return out


def find_reuse_groups(loop: Loop) -> list[ReuseGroup]:
    """Partition the loop-level references into reuse groups.

    Groups with a single occurrence and no reuse potential are still
    returned for INVARIANT references (hoisting a single invariant load
    out of a sequential loop already saves ``trip_count - 1`` loads); other
    singletons are filtered out.
    """
    occs = collect_occurrences(loop)
    n = len(occs)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[ry] = rx

    for i in range(n):
        for j in range(i + 1, n):
            if occs[i].ref.sym is not occs[j].ref.sym:
                continue
            if iteration_distance(occs[i].ref, occs[j].ref, loop) is not None:
                union(i, j)

    clusters: dict[int, list[int]] = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)

    groups: list[ReuseGroup] = []
    for members in clusters.values():
        group = _make_group(loop, [occs[i] for i in members])
        if group is None:
            continue
        if group.ref_count > 1 or group.kind is GroupKind.INVARIANT:
            groups.append(group)
    return groups


def _make_group(loop: Loop, members: list[RefOccurrence]) -> ReuseGroup | None:
    members = sorted(members, key=lambda o: o.order)
    base = members[0].ref
    rel: list[int] = []
    for occ in members:
        d = iteration_distance(occ.ref, base, loop)
        if d is None:
            return None
        rel.append(d)
    # lag = how many iterations after its value was first touched; the
    # generator has the minimal relative distance (it touches newest data).
    dmin = min(rel)
    lags = [d - dmin for d in rel]
    forms = subscript_forms(base)
    if forms is None:
        return None
    # Subscripts through values defined inside the loop (indirect indices,
    # inner loop variables) pin the location only *within* one iteration:
    # such groups may carry intra-iteration reuse but never inter-iteration
    # or invariant hoisting.
    volatile = volatile_symbols(loop)
    is_volatile = any(
        f.depends_on(sym) for f in forms for sym in volatile
    )
    depends = any(f.depends_on(loop.var) for f in forms)
    if is_volatile:
        if max(lags) != 0:
            return None
        if len(members) < 2:
            return None
        kind = GroupKind.INTRA
    elif not depends:
        kind = GroupKind.INVARIANT
    elif max(lags) == 0:
        kind = GroupKind.INTRA
    else:
        kind = GroupKind.INTER
    return ReuseGroup(
        array=base.sym, loop=loop, kind=kind, occurrences=members, lags=lags
    )
