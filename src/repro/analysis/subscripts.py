"""Affine subscript analysis with symbolic coefficients.

Array subscripts in the benchmark kernels are affine in the loop variables
but may have *symbolic* coefficients — C codes hand-linearise indices as
``(k*ny + j)*nx + i``, where the stride of ``k`` is the run-time value
``ny*nx``.  To analyse both styles uniformly, subscripts are normalised to
a :class:`AffineForm`: an integer-coefficient polynomial over scalar
symbols, i.e. ``Σ c_m · m`` where each monomial ``m`` is a product of
symbols.  A form is *affine in a loop variable v* when ``v`` appears with
degree at most one; its stride with respect to ``v`` is then itself a form
(``1`` for unit-stride, ``ny*nx`` for plane-strided, ...).

This underpins:

* dependence/reuse distances (difference of two forms, tested for being an
  exact integer multiple of the stride),
* coalescing classification (the stride of the vector-loop variable in the
  fastest-varying position — Section III-A.2 of the paper, following the
  Jang et al. access-pattern analysis it cites).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.expr import ArrayRef, BinOp, Cast, Expr, IntConst, UnOp, VarRef
from ..ir.symbols import Symbol

#: A monomial: product of symbols, sorted by id, with repetition for powers.
Monomial = tuple[Symbol, ...]

#: Guard against pathological polynomial blow-up in generated code.
_MAX_TERMS = 64


@dataclass(frozen=True)
class AffineForm:
    """``Σ coef · monomial`` over scalar symbols (the empty monomial is the
    constant term).  Immutable and hashable."""

    terms: tuple[tuple[Monomial, int], ...] = ()

    # -- constructors --------------------------------------------------------
    @staticmethod
    def constant(value: int) -> "AffineForm":
        if value == 0:
            return AffineForm()
        return AffineForm((((), value),))

    @staticmethod
    def variable(sym: Symbol, coef: int = 1) -> "AffineForm":
        if coef == 0:
            return AffineForm()
        return AffineForm((((sym,), coef),))

    @staticmethod
    def _from_dict(d: dict[Monomial, int]) -> "AffineForm":
        items = tuple(
            sorted(
                ((m, c) for m, c in d.items() if c != 0),
                key=lambda t: (len(t[0]), tuple(id(s) for s in t[0])),
            )
        )
        return AffineForm(items)

    # -- accessors ----------------------------------------------------------
    @property
    def const(self) -> int:
        """The constant term."""
        for m, c in self.terms:
            if m == ():
                return c
        return 0

    @property
    def is_constant(self) -> bool:
        return all(m == () for m, _ in self.terms)

    @property
    def is_zero(self) -> bool:
        return not self.terms

    def symbols(self) -> tuple[Symbol, ...]:
        seen: list[Symbol] = []
        for m, _ in self.terms:
            for s in m:
                if s not in seen:
                    seen.append(s)
        return tuple(seen)

    def depends_on(self, sym: Symbol) -> bool:
        return any(sym in m for m, _ in self.terms)

    def coefficient(self, sym: Symbol) -> int:
        """Integer coefficient of the pure degree-1 term ``sym`` (0 when the
        symbol only appears inside products — use
        :meth:`linear_coefficient` for the general stride)."""
        for m, c in self.terms:
            if m == (sym,):
                return c
        return 0

    def linear_coefficient(self, sym: Symbol) -> "AffineForm | None":
        """The stride of ``sym``: the form multiplying it.

        Returns ``None`` when the form is *not* affine in ``sym`` (degree
        two or higher).  A zero form means ``sym`` does not appear.
        """
        out: dict[Monomial, int] = {}
        for m, c in self.terms:
            count = sum(1 for s in m if s is sym)
            if count == 0:
                continue
            if count > 1:
                return None
            rest = tuple(s for s in m if s is not sym)
            out[rest] = out.get(rest, 0) + c
        return AffineForm._from_dict(out)

    def drop(self, sym: Symbol) -> "AffineForm":
        """The form with every monomial containing ``sym`` removed."""
        return AffineForm._from_dict(
            {m: c for m, c in self.terms if sym not in m}
        )

    def as_int_multiple_of(self, other: "AffineForm") -> int | None:
        """``k`` such that ``self == k * other`` (integer), else ``None``."""
        if other.is_zero:
            return 0 if self.is_zero else None
        if self.is_zero:
            return 0
        if len(self.terms) != len(other.terms):
            return None
        k: int | None = None
        other_map = dict(other.terms)
        for m, c in self.terms:
            oc = other_map.get(m)
            if oc is None or oc == 0 or c % oc != 0:
                return None
            ratio = c // oc
            if k is None:
                k = ratio
            elif ratio != k:
                return None
        return k

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: "AffineForm") -> "AffineForm":
        d = {m: c for m, c in self.terms}
        for m, c in other.terms:
            d[m] = d.get(m, 0) + c
        return AffineForm._from_dict(d)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self + other.scale(-1)

    def scale(self, k: int) -> "AffineForm":
        if k == 0:
            return AffineForm()
        return AffineForm._from_dict({m: c * k for m, c in self.terms})

    def multiply(self, other: "AffineForm") -> "AffineForm | None":
        """Polynomial product; ``None`` if the result would explode."""
        if len(self.terms) * len(other.terms) > _MAX_TERMS:
            return None
        d: dict[Monomial, int] = {}
        for ma, ca in self.terms:
            for mb, cb in other.terms:
                m = tuple(sorted(ma + mb, key=id))
                d[m] = d.get(m, 0) + ca * cb
        return AffineForm._from_dict(d)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        if not self.terms:
            return "0"
        parts = []
        for m, c in self.terms:
            if m == ():
                parts.append(str(c))
            else:
                names = "*".join(s.name for s in m)
                parts.append(f"{c}*{names}" if c != 1 else names)
        return " + ".join(parts)


def affine_of(e: Expr) -> AffineForm | None:
    """Normalise an integer expression into polynomial-affine form, or
    ``None`` when it is not polynomial (division, modulo, array loads...)."""
    if isinstance(e, IntConst):
        return AffineForm.constant(e.value)
    if isinstance(e, VarRef):
        return AffineForm.variable(e.sym)
    if isinstance(e, Cast):
        return affine_of(e.operand) if not e.to_type.is_float else None
    if isinstance(e, UnOp):
        if e.op == "-":
            inner = affine_of(e.operand)
            return None if inner is None else inner.scale(-1)
        return None
    if isinstance(e, BinOp):
        if e.op in ("+", "-"):
            lhs = affine_of(e.left)
            rhs = affine_of(e.right)
            if lhs is None or rhs is None:
                return None
            return lhs + rhs if e.op == "+" else lhs - rhs
        if e.op == "*":
            lhs = affine_of(e.left)
            rhs = affine_of(e.right)
            if lhs is None or rhs is None:
                return None
            return lhs.multiply(rhs)
        return None
    return None


def subscript_forms(ref: ArrayRef) -> tuple[AffineForm, ...] | None:
    """Affine forms of every subscript of ``ref``, or ``None`` if any
    subscript is non-affine."""
    forms: list[AffineForm] = []
    for idx in ref.indices:
        form = affine_of(idx)
        if form is None:
            return None
        forms.append(form)
    return tuple(forms)


def subscript_distance(a: ArrayRef, b: ArrayRef) -> tuple[int, ...] | None:
    """Per-dimension *integer* distance ``a - b``.

    Returns ``None`` when the references are to different arrays, have
    non-affine subscripts, or differ by a non-constant (possibly symbolic)
    amount in any dimension.
    """
    if a.sym is not b.sym or len(a.indices) != len(b.indices):
        return None
    fa = subscript_forms(a)
    fb = subscript_forms(b)
    if fa is None or fb is None:
        return None
    dist: list[int] = []
    for da, db in zip(fa, fb):
        diff = da - db
        if not diff.is_constant:
            return None
        dist.append(diff.const)
    return tuple(dist)
