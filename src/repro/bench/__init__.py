"""Benchmark suites (SPEC ACCEL / NAS models), the run harness, metrics,
published paper data, and one experiment per table/figure."""

from .core import BenchmarkSpec, SuiteRegistry
from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    fig7,
    fig9,
    fig10,
    fig11,
    fig12,
    table1,
    table2,
)
from .metrics import ShapeCheck, geometric_mean, normalize_times, speedup
from .runner import BenchmarkResult, run_benchmark, run_configs, speedups_over
from .suites.registry import NAS, SPEC, load_all

__all__ = [
    "ALL_EXPERIMENTS",
    "BenchmarkResult",
    "BenchmarkSpec",
    "ExperimentResult",
    "NAS",
    "SPEC",
    "ShapeCheck",
    "SuiteRegistry",
    "fig10",
    "fig11",
    "fig12",
    "fig7",
    "fig9",
    "geometric_mean",
    "load_all",
    "normalize_times",
    "run_benchmark",
    "run_configs",
    "speedup",
    "speedups_over",
    "table1",
    "table2",
]
