"""Concrete test-scale arguments for benchmark kernels.

Used by the integration tests and the examples: builds random (but
deterministic) NumPy inputs matching a benchmark's parameter declarations
at its reduced ``test_env`` sizes, honouring per-benchmark overrides for
index arrays (CSR structure, neighbour lists).
"""

from __future__ import annotations

import numpy as np

from ..gpu.interpreter import numpy_dtype
from ..ir.builder import build_module
from ..ir.module import KernelFunction
from ..lang.parser import parse_program
from .core import BenchmarkSpec


def build_test_args(
    spec: BenchmarkSpec,
    seed: int = 0,
    env: dict[str, int] | None = None,
) -> tuple[KernelFunction, dict[str, object]]:
    """Parse the benchmark and build interpreter-ready arguments at test
    scale (or at explicit ``env`` sizes).  Returns a *fresh* IR function
    plus the argument dict (arrays are newly allocated; safe to mutate)."""
    fn = build_module(parse_program(spec.source)).functions[0]
    env = dict(env) if env is not None else dict(spec.test_env or spec.env)
    rng = np.random.default_rng(seed)
    args: dict[str, object] = {
        k: v for k, v in env.items() if not k.startswith("__")
    }
    args.update(spec.scalar_args)

    overrides: dict[str, np.ndarray] = {}
    if spec.make_test_args is not None:
        overrides = spec.make_test_args(env, rng)

    pointer_sizes = spec.pointer_sizes(env)
    for param in fn.params:
        if param.array is None:
            if param.name not in args:
                raise KeyError(f"no value for scalar parameter {param.name!r}")
            continue
        if param.name in overrides:
            args[param.name] = overrides[param.name]
            continue
        if param.array.is_pointer:
            size = pointer_sizes.get(param.name)
            if size is None:
                raise KeyError(
                    f"benchmark {spec.name} lacks pointer_lens entry for "
                    f"{param.name!r}"
                )
            shape: tuple[int, ...] = (size,)
        else:
            shape = tuple(
                d.extent if isinstance(d.extent, int) else int(env[d.extent.name])
                for d in param.array.dims
            )
        dtype = numpy_dtype(param)
        if np.issubdtype(dtype, np.floating):
            args[param.name] = rng.uniform(0.5, 2.0, size=shape).astype(dtype)
        else:
            args[param.name] = rng.integers(0, 3, size=shape).astype(dtype)
    return fn, args


def copy_args(args: dict[str, object]) -> dict[str, object]:
    """Deep-copy the array arguments (scalars are immutable)."""
    return {
        k: (v.copy() if isinstance(v, np.ndarray) else v) for k, v in args.items()
    }
