"""Benchmark specifications and the suite registry.

Each :class:`BenchmarkSpec` is a MiniACC program modelled on one SPEC ACCEL
or NAS OpenACC benchmark: the kernels reproduce the *structural* properties
the paper's optimisations react to — array counts and ranks, allocatable vs
pointer parameters, coalescing patterns, reuse chains, per-kernel launch
(time-step) counts — at the paper's problem scales.  Absolute times come
from the simulated device; see DESIGN.md for the fidelity argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True, slots=True)
class BenchmarkSpec:
    """One benchmark program."""

    suite: str  # 'spec' | 'nas'
    name: str  # e.g. '355.seismic'
    language: str  # 'fortran' | 'c' — governs dim applicability
    description: str
    source: str  # MiniACC text (clauses included where the paper used them)
    #: Problem-size environment at evaluation scale.
    env: dict[str, int]
    #: Launches per kernel (list aligned with region order) or a global
    #: count — models the benchmark's outer time-step loop.
    launches: "int | list[int]" = 1
    #: Reduced sizes for interpreter-based correctness tests.
    test_env: dict[str, int] = field(default_factory=dict)
    #: Scalar (non-size) arguments needed to execute the kernel.
    scalar_args: dict[str, float] = field(default_factory=dict)
    #: Whether the source uses each proposed clause (paper Section V).
    uses_dim: bool = False
    uses_small: bool = False
    #: Optional custom builder for test-scale array arguments (benchmarks
    #: with index arrays need valid indices, not random ints): called as
    #: ``make_test_args(env, rng)`` and returns a dict of named ndarrays to
    #: override the generic random ones.
    make_test_args: "Callable | None" = None
    #: For pointer parameters (C benchmarks): element-count expressions in
    #: terms of the env, e.g. {"src": "ncells*20"}.
    pointer_lens: dict[str, str] = field(default_factory=dict)

    @property
    def qualified_name(self) -> str:
        return f"{self.suite}:{self.name}"

    def pointer_sizes(self, env: dict[str, int]) -> dict[str, int]:
        """Concrete element counts for pointer parameters under ``env``."""
        out: dict[str, int] = {}
        for name, expr in self.pointer_lens.items():
            out[name] = int(
                eval(compile(expr, "<len>", "eval"), {"__builtins__": {}}, dict(env))
            )
        return out

    def interpreter_args(self) -> dict[str, float | int]:
        """Scalar arguments for a test-scale interpreter run."""
        args: dict[str, float | int] = dict(self.test_env or self.env)
        args.update(self.scalar_args)
        return args


class SuiteRegistry:
    """Holds the registered benchmarks of one suite."""

    def __init__(self, suite: str):
        self.suite = suite
        self._specs: dict[str, BenchmarkSpec] = {}

    def register(self, spec: BenchmarkSpec) -> BenchmarkSpec:
        if spec.name in self._specs:
            raise ValueError(f"duplicate benchmark {spec.name!r}")
        if spec.suite != self.suite:
            raise ValueError(f"benchmark {spec.name!r} belongs to {spec.suite!r}")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> BenchmarkSpec:
        return self._specs[name]

    def all(self) -> list[BenchmarkSpec]:
        return sorted(self._specs.values(), key=lambda s: s.name)

    def names(self) -> list[str]:
        return [s.name for s in self.all()]

    def __len__(self) -> int:
        return len(self._specs)
