"""One entry point per table and figure of the paper's evaluation.

Each ``figN()``/``tableN()`` function runs the relevant benchmarks and
configurations, pairs our measurements with the published numbers from
:mod:`repro.bench.paper_data`, and returns an :class:`ExperimentResult`
whose ``render()`` prints the same rows/series the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.options import (
    BASE,
    CompilerConfig,
    PGI,
    SAFARA_ONLY,
    SMALL,
    SMALL_DIM,
    SMALL_DIM_SAFARA,
)
from . import paper_data
from .core import BenchmarkSpec
from .metrics import geometric_mean, normalize_times, speedup
from .runner import BenchmarkResult, run_configs
from .suites.registry import load_all


@dataclass(slots=True)
class ExperimentResult:
    """A rendered-comparable experiment outcome."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(c.ljust(widths[c]) for c in self.columns))
        lines.append("  ".join("-" * widths[c] for c in self.columns))
        for r in self.rows:
            lines.append(
                "  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in self.columns)
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def row(self, key_column: str, key: str) -> dict:
        for r in self.rows:
            if r.get(key_column) == key:
                return r
        raise KeyError(key)


def _fmt(value) -> str:
    if value is None:
        return "NA"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# ---------------------------------------------------------------------------
# Figure 7 — SPEC with SAFARA only
# ---------------------------------------------------------------------------

def fig7() -> ExperimentResult:
    """Speedup of OpenUH(SAFARA) over OpenUH(base) on the SPEC suite —
    the study motivating the clauses (seismic regresses)."""
    spec_suite, _ = load_all()
    result = ExperimentResult(
        experiment="fig7",
        title="SPEC ACCEL speedup with SAFARA only (paper Figure 7)",
        columns=["benchmark", "measured", "paper(approx)", "direction_ok"],
    )
    measured_all: list[float] = []
    for spec in spec_suite.all():
        results = run_configs(spec, [BASE, SAFARA_ONLY])
        s = speedup(results[BASE.name].total_ms, results[SAFARA_ONLY.name].total_ms)
        paper = paper_data.FIG7_SPEC_SAFARA_ONLY.get(spec.name)
        measured_all.append(s)
        result.rows.append(
            {
                "benchmark": spec.name,
                "measured": s,
                "paper(approx)": paper,
                "direction_ok": _direction_ok(s, paper),
            }
        )
    result.rows.append(
        {
            "benchmark": "geometric-mean",
            "measured": geometric_mean(measured_all),
            "paper(approx)": geometric_mean(
                list(paper_data.FIG7_SPEC_SAFARA_ONLY.values())
            ),
            "direction_ok": "",
        }
    )
    result.notes.append(
        "paper bars digitised (no data labels); compare direction and rough magnitude"
    )
    return result


def _direction_ok(measured: float, paper: float | None) -> str:
    if paper is None:
        return ""
    if paper >= 1.0:
        return "yes" if measured >= 0.97 else "NO"
    return "yes" if measured < 1.02 else "NO"


# ---------------------------------------------------------------------------
# Figure 9 — SPEC cumulative small / +dim / +SAFARA
# ---------------------------------------------------------------------------

def fig9() -> ExperimentResult:
    spec_suite, _ = load_all()
    result = ExperimentResult(
        experiment="fig9",
        title="SPEC ACCEL cumulative speedups: small, +dim, +SAFARA (Figure 9)",
        columns=[
            "benchmark",
            "small",
            "small+dim",
            "small+dim+SAFARA",
            "paper(approx)",
        ],
    )
    finals = []
    for spec in spec_suite.all():
        results = run_configs(spec, [BASE, SMALL, SMALL_DIM, SMALL_DIM_SAFARA])
        base_ms = results[BASE.name].total_ms
        s_small = base_ms / results[SMALL.name].total_ms
        s_dim = base_ms / results[SMALL_DIM.name].total_ms
        s_all = base_ms / results[SMALL_DIM_SAFARA.name].total_ms
        finals.append(s_all)
        paper = paper_data.FIG9_SPEC_CLAUSES.get(spec.name)
        result.rows.append(
            {
                "benchmark": spec.name,
                "small": s_small,
                "small+dim": s_dim,
                "small+dim+SAFARA": s_all,
                "paper(approx)": "/".join(f"{p:.2f}" for p in paper) if paper else "",
            }
        )
    result.rows.append(
        {
            "benchmark": "geometric-mean",
            "small": None,
            "small+dim": None,
            "small+dim+SAFARA": geometric_mean(finals),
            "paper(approx)": f"max {paper_data.HEADLINE_MAX_SPEEDUP['spec']:.2f} (abstract)",
        }
    )
    result.notes.append("dim changes nothing on the C benchmarks (303/304/314…): no dope vectors")
    return result


# ---------------------------------------------------------------------------
# Figure 10 — NAS cumulative small / +SAFARA
# ---------------------------------------------------------------------------

def fig10() -> ExperimentResult:
    _, nas_suite = load_all()
    result = ExperimentResult(
        experiment="fig10",
        title="NAS cumulative speedups: small, +SAFARA (Figure 10)",
        columns=["benchmark", "small", "small+SAFARA", "paper(approx)"],
    )
    for spec in nas_suite.all():
        results = run_configs(spec, [BASE, SMALL, SMALL_DIM_SAFARA])
        base_ms = results[BASE.name].total_ms
        s_small = base_ms / results[SMALL.name].total_ms
        s_all = base_ms / results[SMALL_DIM_SAFARA.name].total_ms
        paper = paper_data.FIG10_NAS.get(spec.name)
        result.rows.append(
            {
                "benchmark": spec.name,
                "small": s_small,
                "small+SAFARA": s_all,
                "paper(approx)": "/".join(f"{p:.2f}" for p in paper) if paper else "",
            }
        )
    result.notes.append(
        "NAS C codes have no VLAs → no dim clause (paper Section V-C); "
        f"paper max {paper_data.HEADLINE_MAX_SPEEDUP['nas']:.2f}"
    )
    return result


# ---------------------------------------------------------------------------
# Figures 11 / 12 — normalised comparison vs PGI
# ---------------------------------------------------------------------------

def _vs_pgi(suite_name: str, experiment: str, title: str) -> ExperimentResult:
    spec_suite, nas_suite = load_all()
    suite = spec_suite if suite_name == "spec" else nas_suite
    configs = [BASE, SAFARA_ONLY, SMALL_DIM_SAFARA, PGI]
    result = ExperimentResult(
        experiment=experiment,
        title=title,
        columns=[
            "benchmark",
            "OpenUH(base)",
            "OpenUH(SAFARA)",
            "OpenUH(SAFARA+clauses)",
            "PGI",
            "openuh_wins",
        ],
    )
    for spec in suite.all():
        results = run_configs(spec, configs)
        times = {name: r.total_ms for name, r in results.items()}
        norm = normalize_times(times)
        result.rows.append(
            {
                "benchmark": spec.name,
                "OpenUH(base)": norm[BASE.name],
                "OpenUH(SAFARA)": norm[SAFARA_ONLY.name],
                "OpenUH(SAFARA+clauses)": norm[SMALL_DIM_SAFARA.name],
                "PGI": norm[PGI.name],
                "openuh_wins": "yes"
                if norm[SMALL_DIM_SAFARA.name] <= norm[PGI.name]
                else "NO",
            }
        )
    result.notes.append(paper_data.FIG11_12_EXPECTATION)
    result.notes.append("normalised: time / max(times); lower is better (paper's Norm)")
    return result


def fig11() -> ExperimentResult:
    return _vs_pgi(
        "spec", "fig11", "SPEC normalised execution time vs PGI (Figure 11)"
    )


def fig12() -> ExperimentResult:
    return _vs_pgi("nas", "fig12", "NAS normalised execution time vs PGI (Figure 12)")


# ---------------------------------------------------------------------------
# Tables I / II — per-kernel register usage
# ---------------------------------------------------------------------------

def _register_table(
    bench_name: str,
    paper_rows: list[paper_data.RegisterRow],
    experiment: str,
    title: str,
) -> ExperimentResult:
    spec_suite, _ = load_all()
    spec = spec_suite.get(bench_name)
    results = run_configs(
        spec,
        [
            BASE,
            SMALL,
            SMALL_DIM,
        ],
    )
    base = results[BASE.name]
    small = results[SMALL.name]
    dim = results[SMALL_DIM.name]
    result = ExperimentResult(
        experiment=experiment,
        title=title,
        columns=[
            "kernel",
            "base",
            "+small",
            "w dim",
            "saved",
            "paper base",
            "paper +small",
            "paper w dim",
            "paper saved",
        ],
    )
    for i, paper_row in enumerate(paper_rows):
        b = base.kernel_registers(i)
        s = small.kernel_registers(i)
        d = dim.kernel_registers(i)
        dim_is_na = d == s
        result.rows.append(
            {
                "kernel": paper_row.kernel,
                "base": b,
                "+small": s,
                "w dim": None if dim_is_na else d,
                "saved": b - (s if dim_is_na else d),
                "paper base": paper_row.base,
                "paper +small": paper_row.small,
                "paper w dim": paper_row.dim,
                "paper saved": paper_row.saved,
            }
        )
    result.notes.append(
        "NA: dim not applicable (fewer than two same-shape allocatable arrays "
        "in the kernel) — matches the paper's NA rows"
    )
    return result


def table1() -> ExperimentResult:
    return _register_table(
        "355.seismic",
        paper_data.TABLE1_SEISMIC,
        "table1",
        "355.seismic register usage via small and dim (Table I)",
    )


def table2() -> ExperimentResult:
    return _register_table(
        "356.sp",
        paper_data.TABLE2_SP,
        "table2",
        "356.sp register usage via small and dim (Table II)",
    )


ALL_EXPERIMENTS = {
    "fig7": fig7,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "table1": table1,
    "table2": table2,
}
