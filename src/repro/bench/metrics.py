"""Metrics used by the paper's evaluation figures.

* speedup over the base compiler (Figures 7, 9, 10);
* normalised execution time,
  ``Norm(c) = ExeTime(c) / max(ExeTime(OpenUH), ExeTime(PGI))``
  (Figures 11 and 12 — lower is better);
* geometric mean across a suite (the figures' ``mean`` bar).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def speedup(base_time: float, optimized_time: float) -> float:
    """Classic speedup: how much faster than the baseline."""
    if optimized_time <= 0:
        raise ValueError("optimized time must be positive")
    return base_time / optimized_time


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the right mean for ratios)."""
    if not values:
        raise ValueError("empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalize_times(times: dict[str, float]) -> dict[str, float]:
    """The paper's normalisation: divide by the maximum time among the
    compilers being compared (so the slowest reads 1.0 and lower is
    better)."""
    if not times:
        return {}
    worst = max(times.values())
    if worst <= 0:
        raise ValueError("times must be positive")
    return {name: t / worst for name, t in times.items()}


@dataclass(frozen=True, slots=True)
class ShapeCheck:
    """Paper-vs-measured shape comparison for one benchmark/config cell.

    ``direction_ok`` records whether our measurement falls on the same side
    of 1.0 as the paper's bar (speedup vs slowdown), the comparison
    EXPERIMENTS.md reports for every figure.
    """

    benchmark: str
    config: str
    paper_value: float
    measured_value: float
    approx: bool = True

    @property
    def direction_ok(self) -> bool:
        if self.paper_value == 1.0:
            return abs(self.measured_value - 1.0) < 0.25
        return (self.paper_value > 1.0) == (self.measured_value > 1.0)

    @property
    def ratio(self) -> float:
        return self.measured_value / self.paper_value
