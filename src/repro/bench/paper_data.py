"""Published numbers from the paper, for paper-vs-measured reporting.

Two fidelity classes:

* ``EXACT`` — numbers printed in the paper: Table I and Table II register
  counts, and the abstract's headline speedups (2.08 on SPEC, 2.5 on NAS).
* ``APPROX`` — bar heights digitised from Figures 7/9/10/11/12, which have
  no data labels; these carry ``approx=True`` and are used only for
  *shape* comparison (who wins, direction vs 1.0, rough magnitude).
"""

from __future__ import annotations

from dataclasses import dataclass

EXACT = "exact"
APPROX = "approx (digitised from figure)"

#: Abstract: "up to 2.5 speedup running NAS and 2.08 speedup while running
#: SPEC benchmarks."
HEADLINE_MAX_SPEEDUP = {"spec": 2.08, "nas": 2.5}


# ---------------------------------------------------------------------------
# Table I — 355.seismic register usage (EXACT)
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class RegisterRow:
    kernel: str
    base: int
    small: int
    dim: int | None  # None == the paper's 'NA'
    saved: int


TABLE1_SEISMIC = [
    RegisterRow("HOT1", 128, 104, 48, 80),
    RegisterRow("HOT2", 134, 105, 41, 93),
    RegisterRow("HOT3", 101, 90, 47, 54),
    RegisterRow("HOT4", 90, 78, 44, 46),
    RegisterRow("HOT5", 86, 79, 44, 42),
    RegisterRow("HOT6", 88, 77, 40, 48),
    RegisterRow("HOT7", 76, 73, 40, 36),
]

TABLE2_SP = [
    RegisterRow("HOT1", 72, 67, None, 5),
    RegisterRow("HOT2", 70, 54, 51, 19),
    RegisterRow("HOT3", 82, 66, None, 16),
    RegisterRow("HOT4", 82, 66, 59, 23),
    RegisterRow("HOT5", 74, 37, 32, 42),
    RegisterRow("HOT6", 57, 57, None, 0),
    RegisterRow("HOT7", 95, 78, 60, 35),
    RegisterRow("HOT8", 211, 152, 112, 99),
    RegisterRow("HOT9", 184, 146, 114, 70),
    RegisterRow("HOT10", 60, 58, None, 2),
]


# ---------------------------------------------------------------------------
# Figure 7 — SPEC speedups with SAFARA only (APPROX).
# The documented facts: 355.seismic *slowed down* ("overused the register
# files ... the application did slow down"); most others gained modestly.
# ---------------------------------------------------------------------------

FIG7_SPEC_SAFARA_ONLY = {
    "303.ostencil": 1.10,
    "304.olbm": 1.25,
    "314.omriq": 1.02,
    "350.md": 1.15,
    "351.palm": 1.05,
    "352.ep": 1.00,
    "354.cg": 1.12,
    "355.seismic": 0.90,
    "356.sp": 1.02,
    "357.csp": 1.08,
}


# ---------------------------------------------------------------------------
# Figure 9 — SPEC cumulative speedups: small → small+dim → small+dim+SAFARA
# (APPROX).  Documented facts: dim applies only to the Fortran benchmarks
# (355, 356 — "Benchmarks 303, 304, 314 are C benchmarks ... a dim clause
# cannot be used"); "performance did not slow down anymore"; 356.sp barely
# moves (uncoalesced bottleneck, Section V-C); SPEC max 2.08.
# ---------------------------------------------------------------------------

FIG9_SPEC_CLAUSES = {
    # name: (small, small+dim, small+dim+SAFARA)
    "303.ostencil": (1.02, 1.02, 1.12),
    "304.olbm": (1.04, 1.04, 1.30),
    "314.omriq": (1.01, 1.01, 1.03),
    "350.md": (1.02, 1.02, 1.18),
    "351.palm": (1.03, 1.06, 1.15),
    "352.ep": (1.00, 1.00, 1.01),
    "354.cg": (1.02, 1.02, 1.15),
    "355.seismic": (1.10, 1.40, 2.08),
    "356.sp": (1.04, 1.08, 1.12),
    "357.csp": (1.03, 1.03, 1.10),
}


# ---------------------------------------------------------------------------
# Figure 10 — NAS cumulative speedups: small → small+SAFARA (APPROX; the
# NAS C codes have no VLAs, so no dim).  Documented facts: BT/LU/SP have
# uncoalesced kernels SAFARA helps; only BT benefited from small; NAS max
# 2.5.
# ---------------------------------------------------------------------------

FIG10_NAS = {
    # name: (small, small+SAFARA)
    "EP": (1.00, 1.01),
    "CG": (1.01, 1.20),
    "MG": (1.01, 1.15),
    "SP": (1.00, 1.40),
    "LU": (1.01, 1.80),
    "BT": (1.12, 2.50),
}


# ---------------------------------------------------------------------------
# Figures 11/12 — normalised-time comparison vs PGI (APPROX).  The
# documented fact: "In the second and third cases, the OpenUH compiler
# generates efficient GPU kernels that outperform the PGI compiler" — i.e.
# OpenUH(SAFARA) and OpenUH(SAFARA+clauses) beat PGI, while OpenUH(base)
# does not always.
# ---------------------------------------------------------------------------

FIG11_12_EXPECTATION = (
    "OpenUH(SAFARA) and OpenUH(SAFARA+clauses) normalised times are below "
    "PGI's on most benchmarks; OpenUH(base) is not consistently below PGI."
)
