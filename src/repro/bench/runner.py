"""Benchmark execution: compile each spec under each compiler
configuration and evaluate the timing model at the spec's problem size.

Runs route through a :class:`~repro.compiler.session.CompilerSession`
(the module-level default unless one is passed), so repeated experiment
sweeps over the same (source, config, env) tuples hit the session's
content-addressed compile cache, and multi-config runs fan out through
:meth:`~repro.compiler.session.CompilerSession.compile_many`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.driver import CompiledProgram, ProgramTiming
from ..compiler.options import CompilerConfig
from ..compiler.session import CompileJob, CompilerSession, default_session
from .core import BenchmarkSpec


@dataclass(slots=True)
class BenchmarkResult:
    """One (benchmark, configuration) cell."""

    spec: BenchmarkSpec
    config: CompilerConfig
    compiled: CompiledProgram
    timing: ProgramTiming

    @property
    def total_ms(self) -> float:
        return self.timing.total_ms

    @property
    def registers(self) -> list[int]:
        return [k.registers for k in self.compiled.kernels]

    @property
    def max_registers(self) -> int:
        return max(self.registers, default=0)

    def kernel_registers(self, index: int) -> int:
        return self.compiled.kernels[index].registers


def benchmark_job(spec: BenchmarkSpec, config: CompilerConfig) -> CompileJob:
    """The batch-compilation job for one (benchmark, configuration) cell."""
    return CompileJob(source=spec.source, config=config, env=dict(spec.env))


def run_benchmark(
    spec: BenchmarkSpec,
    config: CompilerConfig,
    *,
    session: CompilerSession | None = None,
) -> BenchmarkResult:
    """Compile (fresh parse on a cache miss) and time one benchmark under
    one config."""
    session = session or default_session()
    compiled = session.compile_source(spec.source, config, env=dict(spec.env))
    timing = session.time_program(compiled, dict(spec.env), launches=spec.launches)
    return BenchmarkResult(spec=spec, config=config, compiled=compiled, timing=timing)


def run_configs(
    spec: BenchmarkSpec,
    configs: list[CompilerConfig],
    *,
    session: CompilerSession | None = None,
) -> dict[str, BenchmarkResult]:
    """Run one benchmark under several configurations (batch-compiled)."""
    session = session or default_session()
    programs = session.compile_many([benchmark_job(spec, cfg) for cfg in configs])
    results: dict[str, BenchmarkResult] = {}
    for cfg, compiled in zip(configs, programs):
        timing = session.time_program(
            compiled, dict(spec.env), launches=spec.launches
        )
        results[cfg.name] = BenchmarkResult(
            spec=spec, config=cfg, compiled=compiled, timing=timing
        )
    return results


def speedups_over(
    base: str, results: dict[str, BenchmarkResult]
) -> dict[str, float]:
    """Speedup of every configuration relative to ``base``."""
    base_ms = results[base].total_ms
    return {name: base_ms / r.total_ms for name, r in results.items()}
