"""Benchmark execution: compile each spec under each compiler
configuration and evaluate the timing model at the spec's problem size."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.driver import CompiledProgram, ProgramTiming, compile_source, time_program
from ..compiler.options import CompilerConfig
from .core import BenchmarkSpec


@dataclass(slots=True)
class BenchmarkResult:
    """One (benchmark, configuration) cell."""

    spec: BenchmarkSpec
    config: CompilerConfig
    compiled: CompiledProgram
    timing: ProgramTiming

    @property
    def total_ms(self) -> float:
        return self.timing.total_ms

    @property
    def registers(self) -> list[int]:
        return [k.registers for k in self.compiled.kernels]

    @property
    def max_registers(self) -> int:
        return max(self.registers, default=0)

    def kernel_registers(self, index: int) -> int:
        return self.compiled.kernels[index].registers


def run_benchmark(spec: BenchmarkSpec, config: CompilerConfig) -> BenchmarkResult:
    """Compile (fresh parse) and time one benchmark under one config."""
    compiled = compile_source(spec.source, config)
    timing = time_program(compiled, dict(spec.env), launches=spec.launches)
    return BenchmarkResult(spec=spec, config=config, compiled=compiled, timing=timing)


def run_configs(
    spec: BenchmarkSpec, configs: list[CompilerConfig]
) -> dict[str, BenchmarkResult]:
    """Run one benchmark under several configurations."""
    return {cfg.name: run_benchmark(spec, cfg) for cfg in configs}


def speedups_over(
    base: str, results: dict[str, BenchmarkResult]
) -> dict[str, float]:
    """Speedup of every configuration relative to ``base``."""
    base_ms = results[base].total_ms
    return {name: base_ms / r.total_ms for name, r in results.items()}
