"""NAS BT (Block Tri-diagonal), OpenACC C version, class C.

The block solves juggle many per-line coefficient arrays at once, so BT's
kernels carry the most live state of the NAS suite: enough simultaneous
64-bit offsets that the ``small`` clause alone buys an occupancy tier —
the paper's observation that "among LU, SP, and BT, only BT showed
benefit" from ``small``.  SAFARA then removes the uncoalesced chain loads
for the suite-best ~2.5× (Figure 10).
"""

from ..registry import NAS
from ...core import BenchmarkSpec

_C = "(k*ny + j)*nx + i"
_CM = "(k*ny + j)*nx + i - 1"

SOURCE = f"""
kernel nas_bt(const double * restrict a1, const double * restrict a2,
              const double * restrict a3, const double * restrict a4,
              const double * restrict a5,
              const double * restrict b1, const double * restrict b2,
              const double * restrict b3, const double * restrict b4,
              const double * restrict b5,
              double * restrict rhs, double * restrict sol,
              double c1, double c2, int nx, int ny, int nz) {{

  // x_solve block forward elimination: the 5x5 block multiply reuses each
  // coefficient element across the five equations — uncoalesced loads read
  // three times per iteration (intra-iteration reuse), plus i-1 chains.
  #pragma acc kernels loop gang vector(2) \\
      small(a1, a2, a3, a4, a5, b1, b2, b3, b4, b5, rhs, sol)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 1; i < nx - 1; i++) {{
        double p1 = a1[{_C}] - c1 * a1[{_CM}]
                  + a1[{_C}] * b1[{_C}] - a1[{_C}] * b2[{_C}];
        double p2 = a2[{_C}] - c1 * a2[{_CM}]
                  + a2[{_C}] * b2[{_C}] - a2[{_C}] * b3[{_C}];
        double p3 = a3[{_C}] - c1 * a3[{_CM}]
                  + a3[{_C}] * b3[{_C}] - a3[{_C}] * b4[{_C}];
        double p4 = a4[{_C}] - c1 * a4[{_CM}]
                  + a4[{_C}] * b4[{_C}] - a4[{_C}] * b5[{_C}];
        double p5 = a5[{_C}] - c1 * a5[{_CM}]
                  + a5[{_C}] * b5[{_C}] - a5[{_C}] * b1[{_C}];
        rhs[{_C}] = rhs[{_C}] - c2 * (p1 + p2 + p3 + p4 + p5);
      }}
    }}
  }}

  // back substitution over the block line.
  #pragma acc kernels loop gang vector(4) \\
      small(a1, a2, a3, a4, a5, b1, b2, b3, b4, b5, rhs, sol)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = nx - 2; i >= 1; i--) {{
        double s1 = b1[{_C}] - c1 * b1[(k*ny + j)*nx + i + 1];
        double s2 = b2[{_C}] - c1 * b2[(k*ny + j)*nx + i + 1];
        double s3 = b3[{_C}] - c1 * b3[(k*ny + j)*nx + i + 1];
        sol[{_C}] = rhs[{_C}] - c2 * (s1 + s2 + s3);
      }}
    }}
  }}

  // add: coalesced final update.
  #pragma acc kernels loop gang vector(4) \\
      small(a1, a2, a3, a4, a5, b1, b2, b3, b4, b5, rhs, sol)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (j = 1; j < ny - 1; j++) {{
        sol[{_C}] = sol[{_C}] + c1 * rhs[{_C}];
      }}
    }}
  }}
}}
"""

NAS.register(
    BenchmarkSpec(
        suite="nas",
        name="BT",
        language="c",
        description="NPB BT class C: block line solves over ten coefficient "
        "arrays; uncoalesced chains + the suite's highest register load.",
        source=SOURCE,
        env={"nx": 162, "ny": 162, "nz": 162},
        launches=200,
        test_env={"nx": 8, "ny": 7, "nz": 6},
        scalar_args={"c1": 0.1, "c2": 0.05},
        uses_small=True,
        pointer_lens={
            name: "nx*ny*nz"
            for name in ("a1", "a2", "a3", "a4", "a5", "b1", "b2", "b3", "b4", "b5", "rhs", "sol")
        },
    )
)
