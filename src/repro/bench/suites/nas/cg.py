"""NAS CG (Conjugate Gradient), OpenACC C version, class C.

CSR SpMV plus the CG vector kernels over flat C arrays.  Indirect gathers
dominate the SpMV; SAFARA's gains come from the vector kernels' intra-
iteration reuse and the hoistable row scalars — the moderate ~1.2 bar of
Figure 10.
"""

from ..registry import NAS
from ...core import BenchmarkSpec


def _make_test_args(env, rng):
    import numpy as np

    nrows, nnz, per_row = env["na"], env["nz"], env["__trips_k"]
    rowstr = (per_row * np.arange(nrows + 1)).clip(0, nnz - per_row).astype(np.int32)
    colidx = rng.integers(0, nrows, size=nnz).astype(np.int32)
    return {"rowstr": rowstr, "colidx": colidx}


SOURCE = """
kernel nas_cg(const double * restrict a, const int * restrict colidx,
              const int * restrict rowstr,
              const double * restrict p, double * restrict q,
              double * restrict r, double * restrict z,
              double alpha, double beta, int na, int nz) {

  // SpMV: q = A p.
  #pragma acc kernels loop gang vector(128) small(a, colidx, rowstr, p, q, r, z)
  for (j = 0; j < na; j++) {
    double sum = 0.0;
    int lo = rowstr[j];
    int hi = rowstr[j] + (nz / na) - 1;
    #pragma acc loop seq
    for (k = lo; k <= hi; k++) {
      sum += a[k] * p[colidx[k]];
    }
    q[j] = sum;
  }

  // z = z + alpha*p; r = r - alpha*q  (fused vector kernel, q reused).
  #pragma acc kernels loop gang vector(128) small(a, colidx, rowstr, p, q, r, z)
  for (j = 0; j < na; j++) {
    z[j] = z[j] + alpha * p[j];
    r[j] = r[j] - alpha * q[j] + 0.000001 * q[j];
  }

  // p = r + beta*p.
  #pragma acc kernels loop gang vector(128) small(a, colidx, rowstr, p, q, r, z)
  for (j = 0; j < na; j++) {
    q[j] = r[j] + beta * r[j] * r[j];
  }
}
"""

NAS.register(
    BenchmarkSpec(
        suite="nas",
        name="CG",
        language="c",
        description="NPB CG class C: CSR SpMV + vector updates over flat "
        "C arrays; indirect gathers.",
        source=SOURCE,
        env={"na": 150000, "nz": 150000 * 26, "__trips_k": 26},
        launches=75,
        test_env={"na": 12, "nz": 60, "__trips_k": 5},
        scalar_args={"alpha": 0.4, "beta": 0.3},
        uses_small=True,
        make_test_args=_make_test_args,
        pointer_lens={
            "a": "nz",
            "colidx": "nz",
            "rowstr": "na+1",
            "p": "na",
            "q": "na",
            "r": "na",
            "z": "na",
        },
    )
)
