"""NAS EP (Embarrassingly Parallel), OpenACC C version, class C.

Gaussian-deviate tallies over independent batches — pure compute, one
coalesced store per batch.  The flat ~1.0 bars of Figure 10: the control
case where neither ``small`` nor SAFARA has anything to bite on.
"""

from ..registry import NAS
from ...core import BenchmarkSpec

SOURCE = """
kernel nas_ep(double * restrict qx, double * restrict qy,
              double a23, double ainv, int nbatch, int nk) {

  #pragma acc kernels loop gang vector(128) small(qx, qy)
  for (b = 0; b < nbatch; b++) {
    double seed = 314159265.0 + b * 2.0;
    double tx = 0.0;
    double ty = 0.0;
    #pragma acc loop seq
    for (k = 0; k < nk; k++) {
      seed = seed * a23 - floor(seed * a23 * ainv) / ainv;
      double x1 = 2.0 * seed * ainv - 1.0;
      seed = seed * a23 - floor(seed * a23 * ainv) / ainv;
      double x2 = 2.0 * seed * ainv - 1.0;
      double t = x1 * x1 + x2 * x2;
      if (t <= 1.0) {
        double f = sqrt(0.0 - 2.0 * log(t + 0.0000001) / (t + 0.0000001));
        tx += fabs(x1 * f);
        ty += fabs(x2 * f);
      }
    }
    qx[b] = tx;
    qy[b] = ty;
  }
}
"""

NAS.register(
    BenchmarkSpec(
        suite="nas",
        name="EP",
        language="c",
        description="NPB EP class C: independent Gaussian-deviate batches; "
        "compute-bound control case.",
        source=SOURCE,
        env={"nbatch": 1 << 17, "nk": 512},
        launches=1,
        test_env={"nbatch": 8, "nk": 8},
        scalar_args={"a23": 1220703125.0, "ainv": 0.00000011920928955078125},
        uses_small=True,
        pointer_lens={"qx": "nbatch", "qy": "nbatch"},
    )
)
