"""NAS LU (Lower-Upper symmetric Gauss-Seidel), OpenACC C version, class C.

The jacld/blts-style sweeps: threads over ``j``/``k`` lines, sequential
``i`` sweep with heavy reuse of the five flux arrays at ``i-1``/``i`` —
all strided (uncoalesced) accesses, making LU one of SAFARA's biggest
winners (~1.8 in Figure 10).
"""

from ..registry import NAS
from ...core import BenchmarkSpec

_C = "(k*ny + j)*nx + i"
_CM = "(k*ny + j)*nx + i - 1"

SOURCE = f"""
kernel nas_lu(const double * restrict f1, const double * restrict f2,
              const double * restrict f3, const double * restrict f4,
              const double * restrict f5,
              double * restrict v, double * restrict tv,
              double omega, double c1, int nx, int ny, int nz) {{

  // blts lower-triangular sweep: five chains on the flux arrays.
  #pragma acc kernels loop gang vector(4) small(f1, f2, f3, f4, f5, v, tv)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 1; i < nx - 1; i++) {{
        double t1 = f1[{_C}] - omega * f1[{_CM}];
        double t2 = f2[{_C}] - omega * f2[{_CM}];
        double t3 = f3[{_C}] - omega * f3[{_CM}];
        double t4 = f4[{_C}] - omega * f4[{_CM}];
        double t5 = f5[{_C}] - omega * f5[{_CM}];
        tv[{_C}] = t1 + c1 * (t2 + t3) + c1 * c1 * (t4 + t5);
      }}
    }}
  }}

  // buts upper-triangular sweep (reverse direction chains).
  #pragma acc kernels loop gang vector(4) small(f1, f2, f3, f4, f5, v, tv)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = nx - 2; i >= 1; i--) {{
        double t1 = f1[{_C}] - omega * f1[(k*ny + j)*nx + i + 1];
        double t2 = f2[{_C}] - omega * f2[(k*ny + j)*nx + i + 1];
        v[{_C}] = tv[{_C}] - c1 * (t1 + t2);
      }}
    }}
  }}

  // l2norm-style reduction sweep (coalesced).
  #pragma acc kernels loop gang vector(4) small(f1, f2, f3, f4, f5, v, tv)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx - 1; i++) {{
      double acc = 0.0;
      #pragma acc loop seq
      for (j = 1; j < ny - 1; j++) {{
        acc += v[{_C}] * v[{_C}];
      }}
      tv[(k*ny + 0)*nx + i] = acc;
    }}
  }}
}}
"""

NAS.register(
    BenchmarkSpec(
        suite="nas",
        name="LU",
        language="c",
        description="NPB LU class C: blts/buts triangular sweeps with five "
        "uncoalesced flux chains per line.",
        source=SOURCE,
        env={"nx": 162, "ny": 162, "nz": 162},
        launches=300,
        test_env={"nx": 8, "ny": 7, "nz": 6},
        scalar_args={"omega": 1.2, "c1": 0.1},
        uses_small=True,
        pointer_lens={
            "f1": "nx*ny*nz",
            "f2": "nx*ny*nz",
            "f3": "nx*ny*nz",
            "f4": "nx*ny*nz",
            "f5": "nx*ny*nz",
            "v": "nx*ny*nz",
            "tv": "nx*ny*nz",
        },
    )
)
