"""NAS MG (MultiGrid), OpenACC C version, class C.

The resid/psinv 27-point stencils over flat arrays with a sequential
innermost sweep: the z-plane neighbourhoods form rotating chains SAFARA
exploits — Figure 10's ~1.15 bar.
"""

from ..registry import NAS
from ...core import BenchmarkSpec

_C = "(k*n2 + j)*n1 + i"
_KM = "((k-1)*n2 + j)*n1 + i"
_KP = "((k+1)*n2 + j)*n1 + i"

SOURCE = f"""
kernel nas_mg(const double * restrict u, const double * restrict v,
              double * restrict r,
              double c0, double c1, double c2, int n1, int n2, int n3) {{

  // resid: r = v - A u (27-point collapsed to axis terms).
  #pragma acc kernels loop gang vector(4) small(u, v, r)
  for (j = 1; j < n2 - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 1; i < n1 - 1; i++) {{
      #pragma acc loop seq
      for (k = 1; k < n3 - 1; k++) {{
        double u1 = u[{_KM}] + u[{_KP}]
                  + u[(k*n2 + (j-1))*n1 + i] + u[(k*n2 + (j+1))*n1 + i]
                  + u[(k*n2 + j)*n1 + (i-1)] + u[(k*n2 + j)*n1 + (i+1)];
        r[{_C}] = v[{_C}] - c0 * u[{_C}] - c1 * u1;
      }}
    }}
  }}

  // psinv smoothing pass over the residual.
  #pragma acc kernels loop gang vector(4) small(u, v, r)
  for (j = 1; j < n2 - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 1; i < n1 - 1; i++) {{
      #pragma acc loop seq
      for (k = 1; k < n3 - 1; k++) {{
        double r1 = r[{_KM}] + r[{_KP}]
                  + r[(k*n2 + (j-1))*n1 + i] + r[(k*n2 + (j+1))*n1 + i];
        r[{_C}] = r[{_C}] + c2 * r1;
      }}
    }}
  }}
}}
"""

NAS.register(
    BenchmarkSpec(
        suite="nas",
        name="MG",
        language="c",
        description="NPB MG class C: resid + psinv stencils with z-plane "
        "reuse chains over flat C arrays.",
        source=SOURCE,
        env={"n1": 512, "n2": 512, "n3": 64},
        launches=40,
        test_env={"n1": 8, "n2": 7, "n3": 6},
        scalar_args={"c0": 1.8, "c1": 0.2, "c2": 0.1},
        uses_small=True,
        pointer_lens={"u": "n1*n2*n3", "v": "n1*n2*n3", "r": "n1*n2*n3"},
    )
)
