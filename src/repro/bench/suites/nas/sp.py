"""NAS SP (Scalar Penta-diagonal), OpenACC C version, class C.

The x-direction line solves sweep sequentially along ``i`` with threads
spread over ``j``/``k`` — every access is strided by the row length
(uncoalesced), and the penta-diagonal coefficient reads at ``i-1``/``i``/
``i+1`` form rotating chains on those *expensive* references.  This is
the paper's "several kernels that contain uncoalesced memory accesses.
Thus, SAFARA can help by prioritizing their placement in register files"
— the ~1.4 bar of Figure 10.
"""

from ..registry import NAS
from ...core import BenchmarkSpec

_C = "(k*ny + j)*nx + i"
_CM = "(k*ny + j)*nx + i - 1"
_CP = "(k*ny + j)*nx + i + 1"

SOURCE = f"""
kernel nas_sp(const double * restrict lhs, const double * restrict lhsp,
              const double * restrict lhsm,
              double * restrict rhs, double * restrict rtmp,
              double c1, double c2, int nx, int ny, int nz) {{

  // x_solve forward elimination: chains on the three coefficient arrays.
  #pragma acc kernels loop gang vector(4) small(lhs, lhsp, lhsm, rhs, rtmp)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 1; i < nx - 1; i++) {{
        double fac = 1.0 / (lhs[{_C}] - lhs[{_CM}] * c1 + lhs[{_CP}] * c2);
        double fp = lhsp[{_C}] - lhsp[{_CM}] * c1;
        double fm = lhsm[{_C}] - lhsm[{_CM}] * c1;
        rtmp[{_C}] = fac * (rhs[{_C}] + fp * c2 - fm * c1);
      }}
    }}
  }}

  // x_solve back substitution.
  #pragma acc kernels loop gang vector(4) small(lhs, lhsp, lhsm, rhs, rtmp)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = nx - 2; i >= 1; i--) {{
        rhs[{_C}] = rtmp[{_C}] - lhsp[{_CP}] * rtmp[{_CP}]
                  - lhsm[{_CP}] * c1 * rtmp[{_CP}];
      }}
    }}
  }}

  // add: coalesced final update.
  #pragma acc kernels loop gang vector(4) small(lhs, lhsp, lhsm, rhs, rtmp)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (j = 1; j < ny - 1; j++) {{
        rhs[{_C}] = rhs[{_C}] + c2 * rtmp[{_C}];
      }}
    }}
  }}
}}
"""

NAS.register(
    BenchmarkSpec(
        suite="nas",
        name="SP",
        language="c",
        description="NPB SP class C: x-direction line solves; uncoalesced "
        "sweeps with coefficient chains.",
        source=SOURCE,
        env={"nx": 162, "ny": 162, "nz": 162},
        launches=400,
        test_env={"nx": 8, "ny": 7, "nz": 6},
        scalar_args={"c1": 0.1, "c2": 0.05},
        uses_small=True,
        pointer_lens={
            "lhs": "nx*ny*nz",
            "lhsp": "nx*ny*nz",
            "lhsm": "nx*ny*nz",
            "rhs": "nx*ny*nz",
            "rtmp": "nx*ny*nz",
        },
    )
)
