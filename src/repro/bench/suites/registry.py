"""Suite registries.  Benchmark modules register themselves on import;
``load_all()`` imports every benchmark module exactly once."""

from __future__ import annotations

import importlib

from ..core import SuiteRegistry

SPEC = SuiteRegistry("spec")
NAS = SuiteRegistry("nas")

_SPEC_MODULES = (
    "ostencil",
    "olbm",
    "omriq",
    "md",
    "palm",
    "ep",
    "cg",
    "seismic",
    "sp",
    "csp",
)
_NAS_MODULES = ("ep", "cg", "mg", "sp", "lu", "bt")

_loaded = False


def load_all() -> tuple[SuiteRegistry, SuiteRegistry]:
    """Import every benchmark module; returns (SPEC, NAS)."""
    global _loaded
    if not _loaded:
        for mod in _SPEC_MODULES:
            importlib.import_module(f"{__package__}.spec.{mod}")
        for mod in _NAS_MODULES:
            importlib.import_module(f"{__package__}.nas.{mod}")
        _loaded = True
    return SPEC, NAS
