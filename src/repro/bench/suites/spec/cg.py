"""354.cg — conjugate gradient (SPEC ACCEL, Fortran).

Modelled on the CSR sparse matrix-vector product plus the vector updates
of a CG iteration.  The SpMV row loop is sequential with a data-dependent
trip count (CSR row extents) and an indirect gather of the dense vector —
non-affine subscripts the cost model prices at the scattered premium.
SAFARA's gains come from hoisting the row-invariant scalars and the
intra-iteration reuse in the vector kernels (modest, like the paper's cg
bars).
"""

from ..registry import SPEC
from ...core import BenchmarkSpec


def _make_test_args(env, rng):
    """Valid CSR structure at test scale: rowstr/colidx must index within
    bounds (generic random ints would not)."""
    import numpy as np

    nrows, nnz = env["nrows"], env["nnz"]
    per_row = env["__trips_k"]
    rowstr = np.arange(1, nrows + 2, dtype=np.int32) * 0
    rowstr[: nrows + 1] = 1 + per_row * np.arange(nrows + 1, dtype=np.int32)
    rowstr = np.clip(rowstr, 1, max(1, nnz - per_row))[: nrows + 1]
    colidx = rng.integers(1, nrows + 1, size=nnz).astype(np.int32)
    return {"rowstr": rowstr.astype(np.int32), "colidx": colidx}


SOURCE = """
kernel cg(const double a[1:nnz], const int colidx[1:nnz], const int rowstr[1:nrows1],
          const double p[1:nrows], double q[1:nrows], double r[1:nrows],
          double alpha, int nrows, int nrows1, int nnz) {

  // SpMV: q = A p  (CSR; indirect gather of p).
  #pragma acc kernels loop gang vector(128)
  for (j = 1; j <= nrows; j++) {
    double sum = 0.0;
    int lo = rowstr[j];
    int hi = rowstr[j] - 1 + (nnz / nrows);
    #pragma acc loop seq
    for (k = lo; k <= hi; k++) {
      sum += a[k] * p[colidx[k]];
    }
    q[j] = sum;
  }

  // Vector updates: r = r - alpha*q; reuse of q[j] within the iteration.
  #pragma acc kernels loop gang vector(128)
  for (j = 1; j <= nrows; j++) {
    r[j] = r[j] - alpha * q[j] + 0.000001 * q[j] * q[j];
  }
}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="354.cg",
        language="fortran",
        description="CSR SpMV + CG vector updates; indirect gathers and "
        "data-dependent row loops.",
        source=SOURCE,
        env={
            "nrows": 150000,
            "nrows1": 150001,
            "nnz": 150000 * 26,
            "__trips_k": 26,
        },
        launches=75,
        test_env={"nrows": 12, "nrows1": 13, "nnz": 48, "__trips_k": 4},
        scalar_args={"alpha": 0.4},
        uses_dim=False,
        uses_small=False,
        make_test_args=_make_test_args,
    )
)
