"""357.csp — scalar penta-diagonal solver, C version (SPEC ACCEL).

The C port of SP: the same line-solve structure as 356.sp but over flat
malloc'd arrays with hand-linearised indexing — so, as the paper notes
for the C benchmarks, the ``dim`` clause is inapplicable and only
``small`` + SAFARA act.  The x-sweeps remain uncoalesced (threads on
j/k), keeping the benchmark memory-bound.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

#: flat index of [k][j][i] in an nx*ny*nz grid.
_IDX = "(k*ny + j)*nx + i"

SOURCE = f"""
kernel csp(double * restrict us, double * restrict vs, double * restrict ws,
           double * restrict qs, double * restrict speed,
           double * restrict rhs1, double * restrict rhs2,
           double c1, double c2, int nx, int ny, int nz) {{

  // x-solve forward sweep: sequential along i with an i-chain; threads on
  // j/k => every access strides by nx or more.
  #pragma acc kernels loop gang vector(4) small(us, vs, ws, qs, speed, rhs1, rhs2)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 1; i < nx - 1; i++) {{
        double fac = 1.0 / (speed[{_IDX}] - qs[(k*ny + j)*nx + i - 1] * c1);
        qs[{_IDX}] = fac * (qs[{_IDX}] + us[{_IDX}] * c2);
        rhs1[{_IDX}] = fac * (rhs1[{_IDX}] + rhs1[(k*ny + j)*nx + i - 1] * c1);
      }}
    }}
  }}

  // rhs update with second differences along i.
  #pragma acc kernels loop gang vector(4) small(us, vs, ws, qs, speed, rhs1, rhs2)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (j = 1; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 1; i < nx - 1; i++) {{
        rhs2[{_IDX}] = rhs2[{_IDX}]
            + c1 * (us[(k*ny + j)*nx + i + 1] - 2.0 * us[{_IDX}] + us[(k*ny + j)*nx + i - 1])
            + c2 * (vs[{_IDX}] * ws[{_IDX}] - qs[{_IDX}]);
      }}
    }}
  }}

  // add: coalesced final update (threads on i).
  #pragma acc kernels loop gang vector(4) small(us, vs, ws, qs, speed, rhs1, rhs2)
  for (k = 1; k < nz - 1; k++) {{
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (j = 1; j < ny - 1; j++) {{
        us[{_IDX}] = us[{_IDX}] + c1 * rhs1[{_IDX}] + c2 * rhs2[{_IDX}];
      }}
    }}
  }}
}}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="357.csp",
        language="c",
        description="C port of the SP line solver over flat pointers; "
        "uncoalesced x-sweeps, no dope vectors (dim inapplicable).",
        source=SOURCE,
        env={"nx": 162, "ny": 162, "nz": 162},
        launches=400,
        test_env={"nx": 8, "ny": 7, "nz": 6},
        scalar_args={"c1": 0.1, "c2": 0.05},
        uses_dim=False,
        uses_small=True,
        pointer_lens={'us': 'nx*ny*nz', 'vs': 'nx*ny*nz', 'ws': 'nx*ny*nz', 'qs': 'nx*ny*nz', 'speed': 'nx*ny*nz', 'rhs1': 'nx*ny*nz', 'rhs2': 'nx*ny*nz'},
    )
)
