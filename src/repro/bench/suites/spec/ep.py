"""352.ep — embarrassingly parallel random-number kernel (SPEC ACCEL).

A linear-congruential Gaussian-pair generator: virtually all compute, one
coalesced store per batch, no memory reuse.  The flat ~1.0 bar of Figures
7 and 9 — the control case showing the optimisations do no harm when
there is nothing to optimise.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

SOURCE = """
kernel ep(double * restrict sx, double * restrict sy,
          double a23, double ainv, int nbatch, int nk) {

  #pragma acc kernels loop gang vector(128) small(sx, sy)
  for (b = 0; b < nbatch; b++) {
    double seed = 271828183.0 + b;
    double accx = 0.0;
    double accy = 0.0;
    #pragma acc loop seq
    for (k = 0; k < nk; k++) {
      seed = seed * a23 - floor(seed * a23 * ainv) / ainv;
      double x1 = 2.0 * seed * ainv - 1.0;
      seed = seed * a23 - floor(seed * a23 * ainv) / ainv;
      double x2 = 2.0 * seed * ainv - 1.0;
      double t = x1 * x1 + x2 * x2;
      if (t <= 1.0) {
        double f = sqrt(0.0 - 2.0 * log(t + 0.0000001) / (t + 0.0000001));
        accx += x1 * f;
        accy += x2 * f;
      }
    }
    sx[b] = accx;
    sy[b] = accy;
  }
}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="352.ep",
        language="fortran",
        description="Embarrassingly parallel Gaussian-deviate batches; "
        "compute-bound control case (no reuse to exploit).",
        source=SOURCE,
        env={"nbatch": 1 << 16, "nk": 256},
        launches=10,
        test_env={"nbatch": 8, "nk": 8},
        scalar_args={"a23": 1220703125.0, "ainv": 0.00000011920928955078125},
        uses_dim=False,
        uses_small=True,
        pointer_lens={'sx': 'nbatch', 'sy': 'nbatch'},
    )
)
