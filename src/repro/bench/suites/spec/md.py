"""350.md — molecular dynamics (SPEC ACCEL, Fortran).

Modelled on a Lennard-Jones force kernel with a fixed-degree neighbour
list: one thread per particle, sequential loop over neighbours, indirect
position gathers through the list.  The indirect subscripts are
non-affine, so the cost model prices them at the scattered-access premium;
the thread's own coordinates are loop-invariant and SAFARA hoists them
(the paper's moderate md gains).  The allocatable arrays have *unequal*
shapes (positions vs. neighbour list), so — matching the paper, which
applies ``dim`` only to 355/356 — no ``dim`` clause is used.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec


def _make_test_args(env, rng):
    """Neighbour indices must be valid particle numbers in [1, np]."""
    import numpy as np

    return {
        "nlist": rng.integers(1, env["np"] + 1, size=(env["nn"], env["np"])).astype(
            np.int32
        )
    }


SOURCE = """
kernel md(const double pos[1:n3], double frc[1:n3],
          const int nlist[1:nn][1:np], const double cut[1:np],
          int np, int nn, int n3) {

  // Force accumulation: indirect gathers via the neighbour list.
  #pragma acc kernels loop gang vector(128)
  for (i = 1; i <= np; i++) {
    double xi = pos[3*i - 2];
    double yi = pos[3*i - 1];
    double zi = pos[3*i];
    double fx = 0.0;
    double fy = 0.0;
    double fz = 0.0;
    double virial = 0.0;
    #pragma acc loop seq
    for (j = 1; j <= nn; j++) {
      int nb = nlist[j][i];
      double dx = xi - pos[3*nb - 2];
      double dy = yi - pos[3*nb - 1];
      double dz = zi - pos[3*nb];
      double r2 = dx*dx + dy*dy + dz*dz + 0.01;
      double r6 = r2 * r2 * r2;
      double s = (2.0 / r6 - 1.0) / (r6 * r2) + cut[i];
      fx += s * dx;
      fy += s * dy;
      fz += s * dz;
      // virial re-reads one neighbour coordinate (intra-iteration reuse
      // on an indirect gather).
      virial += s * pos[3*nb - 2] * dx;
    }
    frc[3*i - 2] = fx;
    frc[3*i - 1] = fy;
    frc[3*i] = fz + 0.000001 * virial;
  }

  // Half-step velocity update (light streaming kernel).
  #pragma acc kernels loop gang vector(128)
  for (i = 1; i <= n3; i++) {
    frc[i] = frc[i] * 0.5;
  }
}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="350.md",
        language="fortran",
        description="Lennard-Jones force evaluation with a fixed-degree "
        "neighbour list; indirect gathers + hoistable per-particle state.",
        source=SOURCE,
        env={"np": 1 << 16, "nn": 64, "n3": 3 * (1 << 16)},
        launches=100,
        test_env={"np": 10, "nn": 4, "n3": 30},
        uses_dim=False,
        uses_small=False,
        make_test_args=_make_test_args,
    )
)
