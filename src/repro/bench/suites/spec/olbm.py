"""304.olbm — Lattice Boltzmann method (SPEC ACCEL, C).

Modelled on the D3Q19 collide-stream kernel over an array-of-structures
grid: cell ``c`` stores its 19 distribution values at ``f[c*20 + q]``, so
every distribution access is **strided by 20 doubles** — uncoalesced, the
expensive class in the SAFARA cost model.

The macroscopic step reads every distribution once to accumulate density
and momentum; the collision step re-reads the same values.  Those repeated
uncoalesced references are exactly the intra-iteration reuse SAFARA
monetises (the paper's Figure 7/9 show olbm among the bigger SAFARA
winners).  C pointers → no ``dim``.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec


def _f(q):
    return f"src[c*20 + {q}]"


_RHO_SUM = " + ".join(_f(q) for q in range(19))
#: x-momentum: positive for speeds 1,7,9,11,13; negative for 2,8,10,12,14.
_UX = " + ".join(_f(q) for q in (1, 7, 9, 11, 13)) + " - " + " - ".join(
    _f(q) for q in (2, 8, 10, 12, 14)
)
_UY = " + ".join(_f(q) for q in (3, 7, 8, 15, 17)) + " - " + " - ".join(
    _f(q) for q in (4, 9, 10, 16, 18)
)

_COLLIDE = "\n".join(
    f"        dst[c*20 + {q}] = (1.0 - omega) * {_f(q)} "
    f"+ omega * rho * (0.0526 + 0.1578 * (ux + uy));"
    for q in range(19)
)

SOURCE = f"""
kernel olbm(const double * restrict src, double * restrict dst,
            double omega, int ncells) {{

  // Collide-stream: one thread per cell; each distribution is read for
  // the moments and re-read for the collision (intra-iteration reuse on
  // stride-20 references).
  #pragma acc kernels loop gang vector(128) small(src, dst)
  for (c = 0; c < ncells; c++) {{
    double rho = {_RHO_SUM};
    double ux = ({_UX}) / rho;
    double uy = ({_UY}) / rho;
{_COLLIDE}
    dst[c*20 + 19] = rho;
  }}

  // Density norm over the grid (light second kernel).
  #pragma acc kernels loop gang vector(128) small(src, dst)
  for (c = 0; c < ncells; c++) {{
    dst[c*20 + 19] = dst[c*20 + 19] - src[c*20 + 19];
  }}
}}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="304.olbm",
        language="c",
        description="D3Q19 lattice Boltzmann collide-stream over an AoS "
        "grid; stride-20 (uncoalesced) distributions read twice per cell.",
        source=SOURCE,
        env={"ncells": 1 << 20},
        launches=150,
        test_env={"ncells": 64},
        scalar_args={"omega": 1.2},
        uses_dim=False,
        uses_small=True,
        pointer_lens={'src': 'ncells*20', 'dst': 'ncells*20'},
    )
)
