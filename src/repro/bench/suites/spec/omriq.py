"""314.omriq — MRI Q-matrix computation (SPEC ACCEL, C).

Modelled on the Parboil mri-q kernel: for each image point, accumulate
``Q += phi * {cos,sin}(2π k·x)`` over all k-space samples.  The inner
sample loop is sequential; its five per-sample loads are warp-uniform
broadcasts (every thread reads the same ``kx[s]``), while the per-point
coordinates are loop-invariant and hoistable.  The kernel is dominated by
``sin``/``cos`` SFU work, so scalar replacement barely moves it — the
paper's flat ~1.0 bars for omriq.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

SOURCE = """
kernel omriq(const double * restrict x, const double * restrict y,
             const double * restrict z,
             const double * restrict kx, const double * restrict ky,
             const double * restrict kz,
             const double * restrict phiR, const double * restrict phiI,
             double * restrict qr, double * restrict qi,
             int npoints, int nsamples) {

  #pragma acc kernels loop gang vector(256) small(x, y, z, kx, ky, kz, phiR, phiI, qr, qi)
  for (i = 0; i < npoints; i++) {
    double accR = 0.0;
    double accI = 0.0;
    #pragma acc loop seq
    for (s = 0; s < nsamples; s++) {
      double expArg = 6.2831853 * (kx[s] * x[i] + ky[s] * y[i] + kz[s] * z[i]);
      double cosArg = cos(expArg);
      double sinArg = sin(expArg);
      accR += phiR[s] * cosArg - phiI[s] * sinArg;
      accI += phiI[s] * cosArg + phiR[s] * sinArg;
    }
    qr[i] += accR;
    qi[i] += accI;
  }
}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="314.omriq",
        language="c",
        description="Parboil mri-q: per-point accumulation of k-space "
        "contributions; SFU (sin/cos) bound, warp-uniform sample loads.",
        source=SOURCE,
        env={"npoints": 1 << 17, "nsamples": 2048},
        launches=20,
        test_env={"npoints": 16, "nsamples": 8},
        uses_dim=False,
        uses_small=True,
        pointer_lens={'x': 'npoints', 'y': 'npoints', 'z': 'npoints', 'kx': 'nsamples', 'ky': 'nsamples', 'kz': 'nsamples', 'phiR': 'nsamples', 'phiI': 'nsamples', 'qr': 'npoints', 'qi': 'npoints'},
    )
)
