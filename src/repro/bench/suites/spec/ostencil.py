"""303.ostencil — thermodynamic 3-D stencil (SPEC ACCEL, C).

Modelled on the Parboil stencil kernel: a 7-point Jacobi iteration over a
flat C array accessed through pointers with hand-linearised indexing.  As
the paper notes for the C benchmarks ("303, 304, 314 are C benchmarks and
pointer operations are used in the offload regions; thus a dim clause
cannot be used here"), there is no dope information — only ``small``
applies, and SAFARA's win comes from the z-direction reuse chain in the
sequential k loop.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

SOURCE = """
kernel ostencil(const double * restrict a0, double * restrict anext,
                double c0, double c1, int nx, int ny, int nz) {

  // Main 7-point stencil sweep: j/i parallel, k sequential so the
  // k-1/k/k+1 planes form a rotating chain.
  #pragma acc kernels loop gang vector(4) small(a0, anext)
  for (j = 1; j < ny - 1; j++) {
    #pragma acc loop gang vector(64)
    for (i = 1; i < nx - 1; i++) {
      #pragma acc loop seq
      for (k = 1; k < nz - 1; k++) {
        anext[(k*ny + j)*nx + i] = c1 *
            ( a0[((k+1)*ny + j)*nx + i]
            + a0[((k-1)*ny + j)*nx + i]
            + a0[(k*ny + (j+1))*nx + i]
            + a0[(k*ny + (j-1))*nx + i]
            + a0[(k*ny + j)*nx + (i+1)]
            + a0[(k*ny + j)*nx + (i-1)] )
            - a0[(k*ny + j)*nx + i] * c0;
      }
    }
  }

  // Grid copy-back for the next time step (no reuse to exploit: the
  // Amdahl share that caps whole-benchmark gains).
  #pragma acc kernels loop gang vector(4) small(a0, anext)
  for (j = 0; j < ny; j++) {
    #pragma acc loop gang vector(64)
    for (i = 0; i < nx; i++) {
      #pragma acc loop seq
      for (k = 0; k < nz; k++) {
        anext[(k*ny + j)*nx + i] = anext[(k*ny + j)*nx + i] * 0.999 + a0[(k*ny + j)*nx + i] * 0.001;
      }
    }
  }
}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="303.ostencil",
        language="c",
        description="Parboil-style 7-point 3-D Jacobi stencil over flat C "
        "pointers; z-plane reuse chain in the sequential k loop.",
        source=SOURCE,
        env={"nx": 512, "ny": 512, "nz": 64},
        launches=100,
        test_env={"nx": 8, "ny": 7, "nz": 6},
        scalar_args={"c0": 6.0, "c1": 0.166},
        uses_dim=False,
        uses_small=True,
        pointer_lens={'a0': 'nx*ny*nz', 'anext': 'nx*ny*nz'},
    )
)
