"""351.palm — large-eddy simulation (SPEC ACCEL, Fortran).

Modelled on PALM's prognostic-equation kernels: advection/diffusion
updates over 3-D allocatable fields with vertical (sequential ``k``)
derivative chains.  Moderate SAFARA gains; the paper applies the ``dim``
clause only to 355/356, so — although the fields here do share shapes —
no ``dim`` clause appears in the source, and the benchmark measures what
``small`` + SAFARA alone achieve on Fortran allocatables.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

_S = "[1:nzt][1:nyn][1:nxr]"

SOURCE = f"""
kernel palm(double u{_S}, double v{_S}, double w{_S},
            double pt{_S}, const double km{_S},
            double tend{_S},
            double dx, double dt, int nxr, int nyn, int nzt) {{

  // Advection tendency of potential temperature (vertical chain on w/pt).
  #pragma acc kernels loop gang vector(2) small(u, v, w, pt, km, tend)
  for (j = 2; j < nyn; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 2; i < nxr; i++) {{
      #pragma acc loop seq
      for (k = 2; k < nzt; k++) {{
        double flux = w[k][j][i] * (pt[k][j][i] - pt[k-1][j][i]);
        double adv_x = pt[k][j][i+1] - pt[k][j][i-1];
        double adv_y = pt[k][j+1][i] - pt[k][j-1][i];
        tend[k][j][i] = flux / dx + (adv_x + adv_y) / (2.0 * dx);
      }}
    }}
  }}

  // Diffusion with eddy viscosity (vertical chain on km/u).
  #pragma acc kernels loop gang vector(2) small(u, v, w, pt, km, tend)
  for (j = 2; j < nyn; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 2; i < nxr; i++) {{
      #pragma acc loop seq
      for (k = 2; k < nzt; k++) {{
        double dud = km[k][j][i] * (u[k+1][j][i] - 2.0 * u[k][j][i] + u[k-1][j][i]);
        tend[k][j][i] += dud / (dx * dx);
      }}
    }}
  }}

  // Pressure-correction sweep: streaming, no reuse (the large share of
  // PALM outside the advection/diffusion kernels).
  #pragma acc kernels loop gang vector(2) small(u, v, w, pt, km, tend)
  for (j = 2; j < nyn; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 2; i < nxr; i++) {{
      #pragma acc loop seq
      for (k = 2; k < nzt; k++) {{
        u[k][j][i] = u[k][j][i] - dt * tend[k][j][i];
        v[k][j][i] = v[k][j][i] - dt * tend[k][j][i] * 0.5;
        w[k][j][i] = w[k][j][i] - dt * tend[k][j][i] * 0.25;
      }}
    }}
  }}

  // Prognostic update sweep.
  #pragma acc kernels loop gang vector(2) small(u, v, w, pt, km, tend)
  for (j = 2; j < nyn; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 2; i < nxr; i++) {{
      #pragma acc loop seq
      for (k = 2; k < nzt; k++) {{
        pt[k][j][i] += dt * tend[k][j][i];
      }}
    }}
  }}
}}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="351.palm",
        language="fortran",
        description="PALM-style LES prognostic kernels: vertical advection/"
        "diffusion chains over shared-shape 3-D allocatables.",
        source=SOURCE,
        env={"nxr": 256, "nyn": 256, "nzt": 64},
        launches=100,
        test_env={"nxr": 8, "nyn": 7, "nzt": 6},
        scalar_args={"dx": 2.0, "dt": 0.05},
        uses_dim=False,
        uses_small=True,
    )
)
