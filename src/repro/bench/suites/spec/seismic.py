"""355.seismic — seismic wave propagation (SPEC ACCEL, Fortran).

Modelled on the SEISMIC_CPML finite-difference time-domain code:
fourth-order staggered-grid velocity/stress updates over many same-shaped
3-D allocatable arrays.  This is the paper's flagship (Section V-C/V-D):

* each hot kernel touches 6–12 allocatable arrays → huge dope-vector
  register cost (Table I: 76–134 base registers);
* the ``dim`` clause collapses those dope sets (all arrays share one
  shape) and ``small`` halves the offset width → Table I's 40–48 "w dim"
  column;
* SAFARA finds span-3 rotating chains along the sequential ``k`` loop
  (fourth-order differences touch k+1..k-2), each costing four double
  temporaries; the register bill crosses occupancy tiers while most of
  the kernels' loads are *outside* the chains — so SAFARA alone can slow
  the benchmark (Figure 7) until the clauses free the registers
  (Figure 9's 2.08×).

Array layout note: the Fortran arrays are written here in row-major
``[k][j][i]`` order with ``i`` innermost, preserving the original
coalescing structure (Fortran's fastest-varying first dimension maps to
our fastest-varying last dimension).
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

#: All field arrays share the one allocated shape — exactly the situation
#: the dim clause was designed for.
_SHAPE = "[1:nz][1:ny][1:nx]"
_DIMS = "1:nz, 1:ny, 1:nx"

_ALL = "vx, vy, vz, sxx, syy, szz, sxy, sxz, syz, mdx, mdy, mdz, lam, mu, rho"

_CLAUSES = f"dim(({_DIMS})({_ALL})) small({_ALL})"

#: Fourth-order staggered-grid difference along each axis (c1 = 9/8,
#: c2 = -1/24 — the SEISMIC_CPML coefficients).
def _dx(a):
    return (
        f"(1.125 * ({a}[k][j][i] - {a}[k][j][i-1]) "
        f"- 0.0416666 * ({a}[k][j][i+1] - {a}[k][j][i-2])) / h"
    )


def _dy(a):
    return (
        f"(1.125 * ({a}[k][j][i] - {a}[k][j-1][i]) "
        f"- 0.0416666 * ({a}[k][j+1][i] - {a}[k][j-2][i])) / h"
    )


def _dz(a):
    return (
        f"(1.125 * ({a}[k][j][i] - {a}[k-1][j][i]) "
        f"- 0.0416666 * ({a}[k+1][j][i] - {a}[k-2][j][i])) / h"
    )


SOURCE = f"""
kernel seismic(
    double vx{_SHAPE}, double vy{_SHAPE}, double vz{_SHAPE},
    double sxx{_SHAPE}, double syy{_SHAPE}, double szz{_SHAPE},
    double sxy{_SHAPE}, double sxz{_SHAPE}, double syz{_SHAPE},
    double mdx{_SHAPE}, double mdy{_SHAPE}, double mdz{_SHAPE},
    const double lam{_SHAPE}, const double mu{_SHAPE}, const double rho{_SHAPE},
    double h, double dt, int nx, int ny, int nz) {{

  // HOT1 — stress update (normal components): 4th-order divergence of the
  // velocity field; the dvz_dz term is a span-3 k-chain.
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double dvx_dx = {_dx("vx")};
        double dvy_dy = {_dy("vy")};
        double dvz_dz = {_dz("vz")};
        double lam_c = lam[k][j][i];
        double mu_c = mu[k][j][i];
        double trace = dvx_dx + dvy_dy + dvz_dz;
        sxx[k][j][i] += dt * (lam_c * trace + 2.0 * mu_c * dvx_dx);
        syy[k][j][i] += dt * (lam_c * trace + 2.0 * mu_c * dvy_dy);
        szz[k][j][i] += dt * (lam_c * trace + 2.0 * mu_c * dvz_dz);
      }}
    }}
  }}

  // HOT2 — stress update (shear components): two span-3 k-chains
  // (dvx_dz, dvy_dz) plus four cross-derivatives.
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double dvy_dx = {_dx("vy")};
        double dvx_dy = {_dy("vx")};
        double dvz_dx = {_dx("vz")};
        double dvx_dz = {_dz("vx")};
        double dvz_dy = {_dy("vz")};
        double dvy_dz = {_dz("vy")};
        double mu_c = mu[k][j][i];
        sxy[k][j][i] += dt * mu_c * (dvy_dx + dvx_dy);
        sxz[k][j][i] += dt * mu_c * (dvz_dx + dvx_dz);
        syz[k][j][i] += dt * mu_c * (dvz_dy + dvy_dz);
      }}
    }}
  }}

  // HOT3 — x-velocity update: stress divergence with one k-chain (sxz).
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double dsxx_dx = {_dx("sxx")};
        double dsxy_dy = {_dy("sxy")};
        double dsxz_dz = {_dz("sxz")};
        double m = mdx[k][j][i];
        vx[k][j][i] += dt * (dsxx_dx + dsxy_dy + dsxz_dz + m) / rho[k][j][i];
        mdx[k][j][i] = 0.9 * m + 0.1 * dsxx_dx;
      }}
    }}
  }}

  // HOT4 — y-velocity update: one k-chain (syz).
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double dsxy_dx = {_dx("sxy")};
        double dsyy_dy = {_dy("syy")};
        double dsyz_dz = {_dz("syz")};
        double m = mdy[k][j][i];
        vy[k][j][i] += dt * (dsxy_dx + dsyy_dy + dsyz_dz + m) / rho[k][j][i];
        mdy[k][j][i] = 0.9 * m + 0.1 * dsyy_dy;
      }}
    }}
  }}

  // HOT5 — z-velocity update: the paper's Figure 8 kernel — value_dz sums
  // three k-chains.
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double value_dz = {_dz("sxz")}
                        + {_dz("syz")}
                        + {_dz("szz")};
        vz[k][j][i] += dt * (value_dz + mdz[k][j][i]) / rho[k][j][i];
      }}
    }}
  }}

  // HOT6 — PML memory-variable update: three k-chains over the velocity
  // fields.
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double decay = 1.0 - dt * 0.25;
        mdx[k][j][i] = decay * mdx[k][j][i] + dt * (vx[k][j][i] - vx[k-1][j][i]) / h;
        mdy[k][j][i] = decay * mdy[k][j][i] + dt * (vy[k][j][i] - vy[k-1][j][i]) / h;
        mdz[k][j][i] = decay * mdz[k][j][i] + dt * (vz[k][j][i] - vz[k-1][j][i]) / h;
      }}
    }}
  }}

  // HOT7 — energy accumulation (read-mostly sweep, lightest kernel).
  #pragma acc kernels loop gang vector(4) {_CLAUSES}
  for (j = 3; j < ny - 1; j++) {{
    #pragma acc loop gang vector(64)
    for (i = 3; i < nx - 1; i++) {{
      double cell = 0.0;
      #pragma acc loop seq
      for (k = 3; k < nz - 1; k++) {{
        double v2 = vx[k][j][i] * vx[k][j][i]
                  + vy[k][j][i] * vy[k][j][i]
                  + vz[k][j][i] * vz[k][j][i];
        cell += 0.5 * rho[k][j][i] * v2;
      }}
      mdz[1][j][i] = cell;
    }}
  }}
}}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="355.seismic",
        language="fortran",
        description="Seismic wave propagation (SEISMIC_CPML-style 4th-order "
        "FDTD); 15 same-shape 3-D allocatable arrays; the dim/small showcase.",
        source=SOURCE,
        env={"nx": 512, "ny": 320, "nz": 128},
        launches=200,
        test_env={"nx": 10, "ny": 9, "nz": 8},
        scalar_args={"h": 0.5, "dt": 0.01},
        uses_dim=True,
        uses_small=True,
    )
)
