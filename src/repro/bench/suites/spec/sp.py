"""356.sp — scalar penta-diagonal solver (SPEC ACCEL, Fortran).

Modelled on the SP pseudo-application: ten frequently-used allocatable
arrays with **two** distinct shapes (the paper's Section V-D description):

* shape A ``[1:nz][1:ny][1:nx]`` — seven per-cell fields
  (us, vs, ws, qs, speed, square, ainv);
* shape B ``[1:n5][1:nz][1:ny][1:nx]`` — three 4-D state arrays
  (u, rhs, forcing).

The ``dim`` clause declares one group per shape; kernels that touch fewer
than two arrays of any one group gain nothing from it (Table II's "NA"
rows).  The x-direction line solves sweep sequentially along ``i`` with
threads spread over ``j``/``k`` — middle-dimension thread indexing, i.e.
**uncoalesced** accesses; per Section V-C that latency is the benchmark's
real bottleneck ("this will require to change the benchmark algorithm"),
so register savings barely move the needle on time while Table II's
register columns move a lot.
"""

from ..registry import SPEC
from ...core import BenchmarkSpec

_A = "[1:nz][1:ny][1:nx]"
_B = "[1:n5][1:nz][1:ny][1:nx]"

_DIM = (
    "dim((1:nz, 1:ny, 1:nx)(us, vs, ws, qs, speed, square, ainv), "
    "(1:n5, 1:nz, 1:ny, 1:nx)(u, rhs, forcing))"
)
_SMALL = "small(us, vs, ws, qs, speed, square, ainv, u, rhs, forcing)"

SOURCE = f"""
kernel sp(double us{_A}, double vs{_A}, double ws{_A}, double qs{_A},
          double speed{_A}, double square{_A}, double ainv{_A},
          double u{_B}, double rhs{_B}, const double forcing{_B},
          const double cv[5][5], double lhs[5][5],
          double c1, double c2, double dt,
          int nx, int ny, int nz, int n5) {{

  // HOT1 — compute_rhs init: copies forcing into rhs; one shape-B array
  // pair... but forcing/rhs are the same group — keep it to rhs alone so
  // this is a Table II 'NA' row (single allocatable array).
  #pragma acc kernels loop gang vector(2) {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        rhs[1][k][j][i] = rhs[1][k][j][i] * dt;
        rhs[2][k][j][i] = rhs[2][k][j][i] * dt + c1 * rhs[1][k][j][i];
        rhs[3][k][j][i] = rhs[3][k][j][i] * dt + c2 * rhs[2][k][j][i];
      }}
    }}
  }}

  // HOT2 — velocity magnitudes: two shape-A arrays (dim applies).
  #pragma acc kernels loop gang vector(2) {_DIM} {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        double r = us[k][j][i];
        vs[k][j][i] = r * r + 2.0 * r * c1 + vs[k][j][i] * c2;
      }}
    }}
  }}

  // HOT3 — txinvr-style: one shape-A + one shape-B array (different
  // groups, one member each -> 'NA').
  #pragma acc kernels loop gang vector(2) {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        double sp1 = speed[k][j][i];
        u[1][k][j][i] = u[1][k][j][i] + c1 * sp1;
        u[2][k][j][i] = u[2][k][j][i] - c2 * sp1 * sp1;
        u[3][k][j][i] = u[3][k][j][i] + sp1 / (1.0 + sp1 * sp1);
      }}
    }}
  }}

  // HOT4 — add: two shape-B arrays (dim applies to the 4-D group).
  #pragma acc kernels loop gang vector(2) {_DIM} {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        u[1][k][j][i] += rhs[1][k][j][i];
        u[2][k][j][i] += rhs[2][k][j][i];
        u[3][k][j][i] += rhs[3][k][j][i];
        u[4][k][j][i] += rhs[4][k][j][i];
        u[5][k][j][i] += rhs[5][k][j][i];
      }}
    }}
  }}

  // HOT5 — offset-dominated sweep over four shape-A arrays: almost all
  // registers are address arithmetic, so small nearly halves the count
  // (Table II: 74 -> 37 -> 32).
  #pragma acc kernels loop gang vector(2) {_DIM} {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        qs[k][j][i] = us[k][j][i] + vs[k][j][i] + ws[k][j][i];
      }}
    }}
  }}

  // HOT6 — block inversion over *static* 5x5 workspaces: no allocatable
  // arrays at all, so neither clause changes anything (57/57/NA).
  #pragma acc kernels loop gang vector(128)
  for (m = 0; m < 4; m++) {{
    #pragma acc loop seq
    for (p = 0; p < 4; p++) {{
      #pragma acc loop seq
      for (q = 0; q < 4; q++) {{
        lhs[p][q] = lhs[p][q] - cv[p][m] * cv[m][q] * c1
                  + cv[p][q] * cv[q][m] * c2;
      }}
    }}
  }}

  // HOT7 — x-solve forward sweep: three shape-A arrays, sequential along
  // i (threads on j/k => uncoalesced), i-chains for SAFARA.
  #pragma acc kernels loop gang vector(2) {_DIM} {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        double fac = 1.0 / (speed[k][j][i] - ainv[k][j][i-1] * c1);
        ainv[k][j][i] = fac * c2;
        qs[k][j][i] = fac * (qs[k][j][i] + qs[k][j][i-1] * c1);
      }}
    }}
  }}

  // HOT8 — the monster kernel (Table II: 211 base registers): all ten
  // allocatable arrays, 4th-order x-differences, uncoalesced sweep.
  #pragma acc kernels loop gang vector(2) {_DIM} {_SMALL}
  for (k = 3; k < nz - 1; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 3; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 3; i < nx - 1; i++) {{
        double uij = us[k][j][i];
        double up1 = us[k][j][i+1];
        double um1 = us[k][j][i-1];
        double vij = vs[k][j][i];
        double wij = ws[k][j][i];
        double qij = qs[k][j][i] + square[k][j][i];
        double spd = speed[k][j][i] * ainv[k][j][i];
        rhs[1][k][j][i] = forcing[1][k][j][i]
            + c1 * (up1 - 2.0 * uij + um1)
            - c2 * (u[1][k][j][i+1] - u[1][k][j][i-1])
            + spd * qij;
        rhs[2][k][j][i] = forcing[2][k][j][i]
            + c1 * (vs[k][j+1][i] - 2.0 * vij + vs[k][j-1][i])
            - c2 * (u[2][k][j][i+1] - u[2][k][j][i-1])
            + spd * vij * qij;
        rhs[3][k][j][i] = forcing[3][k][j][i]
            + c1 * (ws[k+1][j][i] - 2.0 * wij + ws[k-1][j][i])
            - c2 * (u[3][k][j][i+1] - u[3][k][j][i-1])
            + spd * wij * qij;
        rhs[4][k][j][i] = forcing[4][k][j][i]
            + c1 * (qs[k][j][i+1] - 2.0 * qs[k][j][i] + qs[k][j][i-1])
            - c2 * (u[4][k][j][i+1] - u[4][k][j][i-1])
            + spd * uij * vij;
        rhs[5][k][j][i] = forcing[5][k][j][i]
            + c1 * (square[k][j][i+1] - 2.0 * square[k][j][i] + square[k][j][i-1])
            - c2 * (u[5][k][j][i+1] - u[5][k][j][i-1])
            + spd * uij * wij;
      }}
    }}
  }}

  // HOT9 — y-solve: nearly as heavy (Table II: 184), eight arrays.
  #pragma acc kernels loop gang vector(2) {_DIM} {_SMALL}
  for (k = 3; k < nz - 1; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 3; j < ny - 1; j++) {{
      #pragma acc loop seq
      for (i = 3; i < nx - 1; i++) {{
        double vij = vs[k][j][i];
        double qij = qs[k][j][i];
        rhs[1][k][j][i] = rhs[1][k][j][i]
            + c1 * (us[k][j][i+1] - 2.0 * us[k][j][i] + us[k][j][i-1])
            + c2 * vij * qij * speed[k][j][i];
        rhs[2][k][j][i] = rhs[2][k][j][i]
            + c1 * (vs[k][j][i+1] - 2.0 * vij + vs[k][j][i-1])
            + c2 * qij * ainv[k][j][i];
        rhs[3][k][j][i] = rhs[3][k][j][i]
            + c1 * (ws[k][j][i+1] - 2.0 * ws[k][j][i] + ws[k][j][i-1])
            + c2 * square[k][j][i] * vij;
      }}
    }}
  }}

  // HOT10 — pinvr-style single-array sweep ('NA', small ~no-op).
  #pragma acc kernels loop gang vector(2) {_SMALL}
  for (k = 2; k < nz; k++) {{
    #pragma acc loop gang vector(32)
    for (j = 2; j < ny; j++) {{
      #pragma acc loop seq
      for (i = 2; i < nx; i++) {{
        double r1 = rhs[1][k][j][i];
        double r2 = rhs[2][k][j][i];
        rhs[1][k][j][i] = c1 * r1 + c2 * r2;
        rhs[2][k][j][i] = c1 * r2 - c2 * r1;
      }}
    }}
  }}
}}
"""

SPEC.register(
    BenchmarkSpec(
        suite="spec",
        name="356.sp",
        language="fortran",
        description="SP pseudo-application: ten allocatable arrays in two "
        "shapes, uncoalesced x-sweeps; Table II's register study.",
        source=SOURCE,
        env={"nx": 162, "ny": 162, "nz": 162, "n5": 5},
        launches=[400, 400, 400, 400, 400, 400, 400, 60, 60, 400],
        test_env={"nx": 8, "ny": 8, "nz": 8, "n5": 5},
        scalar_args={"c1": 0.1, "c2": 0.05, "dt": 0.01},
        uses_dim=True,
        uses_small=True,
    )
)
