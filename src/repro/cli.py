"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile FILE``
    Compile a MiniACC file under one or more configurations; print the
    PTXAS reports and (given ``--env``) the timing-model verdicts.
    ``--dump-vir`` shows the virtual ISA, ``--cuda`` the CUDA-like source,
    ``--run`` executes the kernel functionally on deterministic inputs
    (``--executor`` picks the engine), ``--stats`` the per-pass pipeline
    trace, cache counters and execution records as JSON, ``--trace OUT``
    a Chrome ``trace_event`` file of every span the invocation produced.

``profile FILE``
    Per-kernel execution profile: registers and spills, occupancy, static
    memory traffic by space and coalescing class, the vector planner's
    per-loop verdicts; ``--run`` attaches dynamic counts, ``--json``
    machine-readable output.

``stats FILE``
    Compile the file and render the session's metrics registry (counters,
    gauges, histograms) as text or ``--json``.

``tune FILE``
    Autotune the file's optimization configuration: search register cap,
    SAFARA (+candidate budget), ``dim``/``small`` honoring and unroll
    factor for the best modeled runtime at ``--env``.  ``--strategy``
    picks the search (exhaustive/greedy/beam), ``--fleet`` widens it
    across arch profiles (per-arch best table), ``--budget`` caps the
    trials, ``--ledger`` makes re-tunes resumable, ``--json`` emits the
    machine-readable result, ``--trace`` a Chrome trace with one
    ``tune.trial`` span per scored point (see ``docs/tuning.md``).

``serve``
    Run the long-running compile-and-run daemon: JSON-lines requests on
    stdin, responses on stdout (``compile`` / ``run`` / ``tune`` /
    ``stats`` / ``shutdown`` — see ``docs/serving.md``), backed by a
    worker pool and, with ``--cache-dir``, a persistent compile cache
    that survives restarts.

``submit FILE``
    One-shot client: compile (or ``--run``) a file through the same
    broker/protocol path as ``serve`` and print the JSON response.

``experiments [NAME ...]``
    Regenerate the paper's tables/figures (default: all).

``bench``
    List the modelled SPEC ACCEL / NAS benchmarks.

``microbench``
    Run the Wong-style latency survey on the simulated device.
"""

from __future__ import annotations

import argparse
import sys

from .bench.experiments import ALL_EXPERIMENTS
from .bench.suites.registry import load_all
from .compiler.options import ALL_CONFIGS, BASE, SMALL_DIM_SAFARA
from .compiler.session import CompilerSession, default_session
from .executors import EXECUTOR_NAMES


def _parse_env(pairs: list[str]) -> dict[str, int | float]:
    env: dict[str, int | float] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--env expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        try:
            env[name] = int(value)
        except ValueError:
            try:
                env[name] = float(value)
            except ValueError:
                raise SystemExit(
                    f"--env expects a numeric value, got {pair!r}"
                ) from None
    return env


def _build_run_args(fn, env: dict[str, int], seed: int = 0) -> dict[str, object]:
    """Deterministic functional-run arguments for ``repro compile --run``
    (see :func:`repro.gpu.interpreter.build_run_args`); missing bindings
    become the CLI's usage errors."""
    from .gpu.interpreter import build_run_args

    try:
        return build_run_args(fn, env, seed)
    except ValueError as exc:
        raise SystemExit(
            str(exc).replace("run needs env", "--run needs --env")
        ) from None


def _derive_arch(config, arch_name: str):
    """``config`` retargeted to a named arch profile; unknown names are
    CLI usage errors listing the registry."""
    from .errors import ConfigError

    try:
        return config.derive(arch=arch_name)
    except ConfigError as exc:
        raise SystemExit(str(exc)) from None


def cmd_compile(args: argparse.Namespace) -> int:
    if args.trace:
        from .obs.chrome import write_chrome_trace
        from .obs.tracer import Tracer

        tracer = Tracer(enabled=True)
        with tracer.activate():
            rc = _cmd_compile(args)
        write_chrome_trace(args.trace, tracer)
        print(f"trace: {len(tracer.spans)} spans -> {args.trace}")
        return rc
    return _cmd_compile(args)


def _cmd_compile(args: argparse.Namespace) -> int:
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    config_names = args.config or [BASE.name, SMALL_DIM_SAFARA.name]
    env = _parse_env(args.env)
    # A private session so --stats reports exactly this invocation.
    session = CompilerSession(executor=args.executor)
    for name in config_names:
        config = ALL_CONFIGS.get(name)
        if config is None:
            known = ", ".join(sorted(ALL_CONFIGS))
            raise SystemExit(f"unknown config {name!r}; known: {known}")
        if args.arch:
            config = _derive_arch(config, args.arch)
        if args.saturate is not None:
            config = config.derive(saturate=args.saturate)
        program = session.compile_source(source, config)
        print(f"== {config.name} ==")
        for kernel in program.kernels:
            line = f"  {kernel.ptxas.summary()}"
            if kernel.safara is not None:
                line += (
                    f"  [SAFARA: {kernel.safara.groups_replaced} groups, "
                    f"{kernel.backend_compilations} backend compiles]"
                )
            if kernel.esat is not None:
                line += (
                    f"  [esat: {kernel.esat.rewritten} rewritten, "
                    f"{kernel.esat.unified_spellings} unified"
                    f"{', guarded out' if not kernel.esat.applied else ''}]"
                )
            print(line)
            if args.dump_vir:
                print(kernel.vir.dump())
        if env:
            timing = session.time_program(program, env, launches=args.launches)
            for kt in timing.kernels:
                print(
                    f"    {kt.name}: {kt.time_ms:.3f} ms "
                    f"(occupancy {kt.occupancy.occupancy:.2f}, {kt.bound}-bound)"
                )
            print(f"  total: {timing.total_ms:.3f} ms")
        if args.cuda:
            from .codegen.cuda_text import render_cuda
            from .ir.builder import build_module
            from .lang.parser import parse_program

            fn = build_module(parse_program(source)).functions[0]
            for index, region in enumerate(fn.regions(), start=1):
                print(render_cuda(region, fn.symtab, config.codegen_options(),
                                  name=f"{fn.name}_k{index}"))
        print()
    if args.run:
        from .ir.builder import build_module
        from .lang.parser import parse_program

        fn = build_module(parse_program(source)).functions[0]
        run_args = _build_run_args(fn, env)
        _arrays, stats, info = session.execute(fn, run_args)
        line = f"run: executor={info.used}"
        if info.fallback_reason:
            line += f" (fallback: {info.fallback_reason})"
        print(line)
        print(
            f"  loads={stats.loads} stores={stats.stores} "
            f"flops={stats.flops} iterations={stats.iterations}"
        )
        if info.region_elements:
            for region, count in sorted(info.region_elements.items()):
                print(f"  {region}: {count} batched elements")
        print()
    if args.stats:
        import json

        print(json.dumps(session.stats_dict(), indent=2))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    config = ALL_CONFIGS.get(args.config)
    if config is None:
        known = ", ".join(sorted(ALL_CONFIGS))
        raise SystemExit(f"unknown config {args.config!r}; known: {known}")
    from .obs.profiler import profile_source

    session = CompilerSession()
    profile = profile_source(source, config, session=session)
    if args.run:
        from .ir.builder import build_module
        from .lang.parser import parse_program

        env = _parse_env(args.env)
        fn = build_module(parse_program(source)).functions[0]
        run_args = _build_run_args(fn, env)
        _arrays, stats, info = session.execute(fn, run_args)
        profile.execution = {
            **info.as_dict(),
            "loads": stats.loads,
            "stores": stats.stores,
            "flops": stats.flops,
            "iterations": stats.iterations,
        }
    if args.json:
        import json

        print(json.dumps(profile.as_dict(), indent=2))
    else:
        print(profile.render())
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Compile a file in-process and render the session's metrics registry
    (`repro stats FILE`): every counter, gauge, and histogram the compile
    touched, as text or JSON."""
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    config_names = args.config or [BASE.name, SMALL_DIM_SAFARA.name]
    session = CompilerSession()
    for name in config_names:
        config = ALL_CONFIGS.get(name)
        if config is None:
            known = ", ".join(sorted(ALL_CONFIGS))
            raise SystemExit(f"unknown config {name!r}; known: {known}")
        session.compile_source(source, config)
    if args.json:
        import json

        print(json.dumps(session.metrics.as_dict(), indent=2))
    else:
        print(session.metrics.render_text())
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    if args.trace:
        from .obs.chrome import write_chrome_trace
        from .obs.tracer import Tracer

        tracer = Tracer(enabled=True)
        with tracer.activate():
            rc = _cmd_tune(args)
        write_chrome_trace(args.trace, tracer)
        print(f"trace: {len(tracer.spans)} spans -> {args.trace}")
        return rc
    return _cmd_tune(args)


def _cmd_tune(args: argparse.Namespace) -> int:
    from .errors import ConfigError, TuneError
    from .tune import tune

    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    base = ALL_CONFIGS.get(args.config)
    if base is None:
        known = ", ".join(sorted(ALL_CONFIGS))
        raise SystemExit(f"unknown config {args.config!r}; known: {known}")
    env = _parse_env(args.env)
    if not env:
        raise SystemExit("tune needs --env (the problem sizes the model scores)")
    archs = [a for a in (args.fleet or "").split(",") if a] or None
    session = CompilerSession()
    try:
        result = tune(
            source,
            env=env,
            launches=args.launches,
            base=base,
            strategy=args.strategy,
            budget=args.budget,
            session=session,
            ledger=args.ledger,
            filename=args.file,
            archs=archs,
        )
    except (TuneError, ConfigError) as exc:
        raise SystemExit(str(exc)) from None
    if args.json:
        import json

        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"tune: {result.strategy} searched {len(result.trials)} of "
        f"{result.unique_points} points ({result.pruned} pruned from "
        f"{result.space_size}; {result.ledger_hits} ledger hits)"
    )
    print(
        f"  reference {result.reference.config_name}: "
        f"{result.reference.model_ms:.3f} ms "
        f"({result.reference.max_registers} regs)"
    )
    print(
        f"  best      {result.best.config_name}: "
        f"{result.best.model_ms:.3f} ms "
        f"({result.best.max_registers} regs, "
        f"occupancy {result.best.min_occupancy:.2f})"
    )
    print(f"  speedup over reference: {result.speedup_over_reference:.3f}x")
    if len(result.per_arch_best) > 1:
        print("  per-arch best:")
        for key, trial in sorted(result.per_arch_best.items()):
            print(
                f"    {key:16s} {trial.model_ms:.3f} ms "
                f"({trial.max_registers} regs, "
                f"occupancy {trial.min_occupancy:.2f})"
            )
    return 0


def _broker_config(args: argparse.Namespace) -> "BrokerConfig":
    from .serve.broker import BrokerConfig

    kwargs: dict = {}
    if args.workers is not None:
        kwargs["workers"] = args.workers
    if args.queue_limit is not None:
        kwargs["queue_limit"] = args.queue_limit
    if args.deadline_ms is not None:
        kwargs["default_deadline_ms"] = args.deadline_ms
    if args.retries is not None:
        kwargs["max_retries"] = args.retries
    if args.cache_dir is not None:
        kwargs["cache_dir"] = args.cache_dir
    if getattr(args, "tune_ledger", None) is not None:
        kwargs["tune_ledger"] = args.tune_ledger
    if getattr(args, "fleet", None):
        from .errors import ConfigError
        from .gpu.arch import get_arch

        fleet = tuple(a for a in args.fleet.split(",") if a)
        try:
            for name in fleet:
                get_arch(name)
        except ConfigError as exc:
            raise SystemExit(str(exc)) from None
        kwargs["fleet"] = fleet
    return BrokerConfig(**kwargs)


def cmd_serve(args: argparse.Namespace) -> int:
    if getattr(args, "shards", None) and args.shards > 1:
        from .serve.cluster import ClusterConfig, run_cluster

        kwargs: dict = {
            "shards": args.shards,
            "broker": _broker_config(args),
            "process_shards": True,
        }
        if args.replication is not None:
            kwargs["replication"] = args.replication
        if args.hedge_after_ms is not None:
            kwargs["hedge_after_ms"] = args.hedge_after_ms
        if args.tenant_rate is not None:
            kwargs["tenant_rate"] = args.tenant_rate
        if args.tenant_burst is not None:
            kwargs["tenant_burst"] = args.tenant_burst
        try:
            config = ClusterConfig(**kwargs)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        return run_cluster(config, socket_path=args.socket)
    from .serve.daemon import run_daemon

    return run_daemon(_broker_config(args), socket_path=args.socket)


def cmd_cluster_drain(args: argparse.Namespace) -> int:
    """Drain (and optionally restart) one shard of a live cluster router
    over its unix socket.  Exit 0 iff the drain completed."""
    import json

    from .serve.client import SocketClient

    request = {"op": "drain", "shard": args.shard, "restart": args.restart}
    try:
        with SocketClient(args.socket, timeout=args.timeout) as client:
            response = client.request(request)
    except (ConnectionError, TimeoutError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _render_span_tree(nodes: list, indent: int = 0) -> list[str]:
    lines = []
    for node in nodes:
        args_bits = {
            k: v
            for k, v in node.get("args", {}).items()
            if k not in ("trace_id",) and v is not None
        }
        suffix = (
            "  " + " ".join(f"{k}={v}" for k, v in sorted(args_bits.items()))
            if args_bits
            else ""
        )
        lines.append(
            f"{'  ' * indent}{node['name']:<{max(28 - 2 * indent, 8)}} "
            f"{node['dur_us'] / 1000.0:9.3f} ms{suffix}"
        )
        lines.extend(_render_span_tree(node.get("children", []), indent + 1))
    return lines


def _render_record(record: dict) -> str:
    status = "ok" if record["ok"] else f"ERROR ({record['error_code']})"
    lines = [
        f"trace {record['trace_id']}  op={record['op']}  {status}  "
        f"{record['duration_ms']:.3f} ms"
    ]
    if record.get("degradations"):
        for event in record["degradations"]:
            detail = {k: v for k, v in event.items() if k != "trace_id"}
            lines.append(f"  degradation: {detail}")
    if record.get("dropped_spans"):
        lines.append(f"  (collector dropped {record['dropped_spans']} spans)")
    lines.extend(_render_span_tree(record.get("span_tree", []), indent=1))
    return "\n".join(lines)


def cmd_serve_trace(args: argparse.Namespace) -> int:
    """Inspect the daemon's flight recorder: the retained slowest /
    errored request traces, one trace's span tree, or a Perfetto-loadable
    export of it."""
    import json

    from .serve.client import SocketClient

    with SocketClient(args.socket) as client:
        response = client.trace(args.trace_id, perfetto=bool(args.perfetto))
    if not response.get("ok"):
        print(json.dumps(response, indent=2, sort_keys=True), file=sys.stderr)
        return 1
    result = response["result"]
    if args.perfetto:
        chrome = result.get("chrome")
        if chrome is None:
            print("no retained trace to export", file=sys.stderr)
            return 1
        doc = json.dumps(chrome, indent=2, sort_keys=True)
        if args.perfetto == "-":
            print(doc)
        else:
            with open(args.perfetto, "w", encoding="utf-8") as fh:
                fh.write(doc + "\n")
            print(
                f"wrote Perfetto trace {chrome['otherData']['trace_id']} "
                f"to {args.perfetto}",
                file=sys.stderr,
            )
        return 0
    if args.trace_id:
        if not result.get("found"):
            print(
                f"trace {args.trace_id!r} not retained (recorder keeps the "
                "slowest and errored requests only)",
                file=sys.stderr,
            )
            return 1
        print(_render_record(result["record"]))
        return 0
    print(
        f"flight recorder: {result['recorded']} requests seen, retaining "
        f"{len(result['slowest'])} slowest "
        f"(bound {result['retention']['max_slow']}) and "
        f"{len(result['errors'])} errored "
        f"(bound {result['retention']['max_errors']})"
    )
    for title, records in (
        ("slowest", result["slowest"]),
        ("errors", result["errors"]),
    ):
        if records:
            print(f"\n== {title} ==")
            for record in records:
                print(_render_record(record))
    return 0


def _quantile_cell(hist: dict | None) -> str:
    if not hist:
        return "-"
    return (
        f"{hist['p50']:.2f}/{hist['p99']:.2f}/{hist['p999']:.2f}"
    )


def _render_top_frame(frame: dict, previous: dict | None) -> str:
    """One ``repro top`` screen from a telemetry frame (rates are diffed
    against the previous frame when there is one)."""
    if previous is not None and frame["ts"] > previous["ts"]:
        dt = frame["ts"] - previous["ts"]
        rps = (frame["requests_total"] - previous["requests_total"]) / dt
    elif frame["uptime_s"]:
        rps = frame["requests_total"] / frame["uptime_s"]
    else:
        rps = 0.0
    lines = [
        f"repro top — uptime {frame['uptime_s']:.1f}s   "
        f"queue {frame['queue_depth']}/{frame['workers'] + frame['queue_limit']}"
        f"   workers {frame['workers']}"
        + ("   [draining]" if frame.get("stopping") else ""),
        "",
        f"requests   total {frame['requests_total']}  ({rps:.1f} req/s)   "
        + "  ".join(
            f"{op} {n}" for op, n in sorted(frame["requests"].items())
        ),
        f"backpressure   rejected {frame['rejected']}   retries "
        f"{frame['retries']}   deadline_exceeded {frame['deadline_exceeded']}",
        f"degradations   total {frame['degradations']['total']}   "
        f"deadline {frame['degradations']['deadline']}   "
        f"vector_fallback {frame['degradations']['vector_fallback']}",
    ]
    cache = frame["cache"]

    def pct(rate):
        return f"{rate * 100.0:.1f}%" if rate is not None else "-"

    lines.append(
        f"cache hit rates   memory {pct(cache['memory_hit_rate'])}   "
        f"disk {pct(cache['disk_hit_rate'])}   "
        f"fnobj {pct(cache['fnobj_hit_rate'])}"
    )
    if frame.get("placement"):
        lines.append(
            "placement   "
            + "  ".join(
                f"{arch} {n}" for arch, n in sorted(frame["placement"].items())
            )
        )
    if frame.get("codegen_tiers"):
        lines.append(
            "run tiers   "
            + "  ".join(
                f"{tier} {n}"
                for tier, n in sorted(frame["codegen_tiers"].items())
            )
        )
    cluster = frame.get("cluster")
    if cluster:
        lines.append(
            f"cluster   shards {cluster['up']}/{cluster['shards']}   "
            f"replication {cluster['replication']}   "
            f"hot keys {cluster['hot_keys']}   "
            f"hedges {cluster['hedges']} "
            f"(won {cluster['hedge_wins']}, wasted {cluster['hedge_wasted']})"
            f"   failovers {cluster['failovers']}   "
            f"quota_rejected {cluster['quota_rejected']}   "
            f"drains {cluster['drains']}   restarts {cluster['restarts']}"
        )
    shards = frame.get("shards")
    if shards:
        lines.append("")
        lines.append(
            f"  {'shard':<7} {'state':<10} {'routed':>8} {'total':>8} "
            f"{'queue':>6}  {'mem':>6}  {'disk':>6}"
        )
        for row in shards:
            lines.append(
                f"  {row['shard']:<7} {row['state']:<10} "
                f"{row['routed']:>8} {row['requests_total']:>8} "
                f"{row['queue_depth']:>6}  "
                f"{pct(row['memory_hit_rate']):>6}  "
                f"{pct(row['disk_hit_rate']):>6}"
            )
    latency = frame.get("latency_ms") or {}
    if latency:
        lines.append("")
        lines.append("latency ms (p50/p99/p999)")
        for op in sorted(latency):
            lines.append(f"  {op:<10} {_quantile_cell(latency[op])}")
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Live serve telemetry in the terminal, over the ``watch`` stream."""
    from .serve.client import SocketClient

    clear = sys.stdout.isatty() and not args.no_clear
    previous = None
    count = args.count if args.count and args.count > 0 else None
    with SocketClient(args.socket, timeout=None) as client:
        try:
            for frame in client.watch(
                interval_ms=args.interval_ms, count=count
            ):
                text = _render_top_frame(frame, previous)
                if clear:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(text)
                if not clear:
                    print()
                sys.stdout.flush()
                previous = frame
        except KeyboardInterrupt:
            pass
        except ConnectionError as exc:
            print(str(exc), file=sys.stderr)
            return 1
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load against a live broker; prints/writes the SLO report."""
    import json

    from .loadgen import LoadProfile, quick_profile, run_load, write_report

    mix = None
    if args.mix:
        mix = {}
        for part in args.mix.split(","):
            op, _, weight = part.partition("=")
            try:
                mix[op.strip()] = float(weight)
            except ValueError:
                raise SystemExit(
                    f"bad --mix entry {part!r}; expected op=weight"
                ) from None
    overrides: dict = {}
    if args.rate is not None:
        overrides["rate_rps"] = args.rate
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.arrival is not None:
        overrides["arrival"] = args.arrival
    if mix is not None:
        overrides["mix"] = mix
    if args.benchmarks:
        overrides["benchmarks"] = tuple(
            b for b in args.benchmarks.split(",") if b
        )
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.no_prewarm:
        overrides["prewarm"] = False
    if args.deadline_ms is not None:
        overrides["deadline_ms"] = args.deadline_ms
    if args.tenant:
        overrides["tenant"] = args.tenant
    if args.quick:
        profile = quick_profile(**overrides)
    else:
        profile = LoadProfile(**overrides)

    def progress(done: int, total: int) -> None:
        if args.progress and done % max(1, total // 10) == 0:
            print(f"loadgen: {done}/{total} answered", file=sys.stderr)

    try:
        if args.socket:
            report = run_load(
                profile, socket_path=args.socket, on_progress=progress
            )
        else:
            from .serve.broker import Broker

            with Broker(_broker_config(args)) as broker:
                report = run_load(profile, broker=broker, on_progress=progress)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if args.report:
        write_report(report, args.report)
        print(f"wrote SLO report to {args.report}", file=sys.stderr)
    else:
        print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """One-shot client: build a request, run it through an in-process
    broker (sharing the daemon's disk cache via ``--cache-dir``), print
    the JSON-lines response.  Exit 0 iff the response is ``ok``."""
    import json

    from .serve.broker import Broker

    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    op = "tune" if args.tune else "run" if args.run else "compile"
    request: dict = {"id": 0, "op": op, "source": source}
    if args.config:
        request["config"] = args.config
    if args.arch:
        request["arch"] = args.arch
    if getattr(args, "saturate", None) is not None:
        request["saturate"] = args.saturate
    if args.tenant:
        request["tenant"] = args.tenant
    env = _parse_env(args.env)
    if env:
        request["env"] = env
    if args.deadline_ms is not None:
        request["deadline_ms"] = args.deadline_ms
    if args.run and args.executor:
        request["executor"] = args.executor
    if args.tune:
        request["strategy"] = args.strategy
        if args.budget is not None:
            request["budget"] = args.budget
    with Broker(_broker_config(args)) as broker:
        response = broker.handle(request)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response["ok"] else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    names = args.names or list(ALL_EXPERIMENTS)
    for name in names:
        fn = ALL_EXPERIMENTS.get(name)
        if fn is None:
            known = ", ".join(ALL_EXPERIMENTS)
            raise SystemExit(f"unknown experiment {name!r}; known: {known}")
        print(fn().render())
        print()
    # The experiment harness routes through the default session's batch
    # compiler; report how much work the compile cache absorbed.
    print(default_session().cache.summary())
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    """List the registered optimization passes (the pluggable registry
    the default pipeline is built from; see docs/optimizer.md)."""
    from .pipeline.passes import DEFAULT_PASS_ORDER
    from .pipeline.registry import PASSES

    default_order = {key: i for i, key in enumerate(DEFAULT_PASS_ORDER)}
    rows = []
    for key, pass_cls in PASSES.items():
        doc = (pass_cls.__doc__ or "").strip().splitlines()
        rows.append(
            {
                "pass": key,
                "class": pass_cls.__name__,
                "default_position": default_order.get(key),
                "summary": doc[0] if doc else "",
            }
        )
    if args.json:
        import json

        print(json.dumps(rows, indent=2))
        return 0
    in_default = [r for r in rows if r["default_position"] is not None]
    extra = [r for r in rows if r["default_position"] is None]
    print("default pipeline (in order):")
    for r in sorted(in_default, key=lambda r: r["default_position"]):
        print(f"  {r['pass']:14s} {r['class']:22s} {r['summary']}")
    if extra:
        print("registered (not in the default pipeline):")
        for r in extra:
            print(f"  {r['pass']:14s} {r['class']:22s} {r['summary']}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    spec, nas = load_all()
    for suite in (spec, nas):
        print(f"== {suite.suite.upper()} ==")
        for b in suite.all():
            clauses = []
            if b.uses_small:
                clauses.append("small")
            if b.uses_dim:
                clauses.append("dim")
            tag = f" [{', '.join(clauses)}]" if clauses else ""
            print(f"  {b.name:14s} ({b.language}){tag}: {b.description}")
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    from .gpu.microbench import measure_all

    print("latency survey (simulated Tesla K20Xm):")
    for m in measure_all():
        print(f"  {m}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAFARA + dim/small OpenACC reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a MiniACC file")
    p.add_argument("file", help="MiniACC source file ('-' for stdin)")
    p.add_argument(
        "--config",
        action="append",
        help=f"configuration name (repeatable); known: {', '.join(sorted(ALL_CONFIGS))}",
    )
    p.add_argument("--env", action="append", default=[], help="problem size name=value")
    p.add_argument(
        "--arch",
        help="target a registered GPU arch profile by name "
        "(e.g. kepler-k20xm, cdna2-mi250; see docs/device_model.md)",
    )
    p.add_argument("--launches", type=int, default=1)
    p.add_argument(
        "--saturate",
        action="store_true",
        default=None,
        help="enable the equality-saturation pass (repro.esat) on top of "
        "the selected configs (the pressure guard keeps a kernel "
        "unsaturated when saturation would not help)",
    )
    p.add_argument(
        "--no-saturate",
        dest="saturate",
        action="store_false",
        help="force the equality-saturation pass off",
    )
    p.add_argument("--dump-vir", action="store_true", help="print the virtual ISA")
    p.add_argument("--cuda", action="store_true", help="print CUDA-like source")
    p.add_argument(
        "--run",
        action="store_true",
        help="execute the kernel functionally on deterministic inputs "
        "(array extents from --env; pointer sizes via --env __len_<name>=N)",
    )
    p.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default="auto",
        help="execution engine for --run (default: generated NumPy code "
        "with automatic vector/scalar fallback)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="emit the per-pass pipeline trace and cache counters as JSON",
    )
    p.add_argument(
        "--trace",
        metavar="OUT.json",
        help="record spans for the whole invocation and write a Chrome "
        "trace_event file (load in Perfetto or chrome://tracing)",
    )
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "profile", help="per-kernel execution profile of a MiniACC file"
    )
    p.add_argument("file", help="MiniACC source file ('-' for stdin)")
    p.add_argument(
        "--config",
        default=SMALL_DIM_SAFARA.name,
        help=f"configuration name; known: {', '.join(sorted(ALL_CONFIGS))}",
    )
    p.add_argument("--env", action="append", default=[], help="problem size name=value")
    p.add_argument(
        "--run",
        action="store_true",
        help="also execute the kernel functionally and attach dynamic counts",
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "stats", help="compile a file and render the session metrics registry"
    )
    p.add_argument("file", help="MiniACC source file ('-' for stdin)")
    p.add_argument(
        "--config",
        action="append",
        help=f"configuration name (repeatable); known: {', '.join(sorted(ALL_CONFIGS))}",
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "tune",
        help="autotune a file's optimization configuration "
        "(register cap, SAFARA, clauses, unrolling)",
    )
    p.add_argument("file", help="MiniACC source file ('-' for stdin)")
    p.add_argument(
        "--env",
        action="append",
        default=[],
        help="problem size name=value (required: the timing model's input)",
    )
    p.add_argument("--launches", type=int, default=1)
    p.add_argument(
        "--config",
        default=BASE.name,
        help="base configuration the knobs vary over "
        f"(default: {BASE.name}); known: {', '.join(sorted(ALL_CONFIGS))}",
    )
    p.add_argument(
        "--strategy",
        choices=("exhaustive", "greedy", "beam"),
        default="beam",
        help="search strategy (default: beam — cost-model-ordered with "
        "early stopping)",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="max trial points to score"
    )
    p.add_argument(
        "--ledger",
        metavar="PATH",
        help="resumable tuning ledger (JSON); warm re-tunes replay scores "
        "and do zero backend compiles",
    )
    p.add_argument(
        "--fleet",
        metavar="ARCH,ARCH,...",
        help="search across a fleet of arch profiles (comma-separated "
        "registry names); the result reports a per-arch best table",
    )
    p.add_argument("--json", action="store_true", help="emit the result as JSON")
    p.add_argument(
        "--trace",
        metavar="OUT.json",
        help="write a Chrome trace_event file with one tune.trial span "
        "per scored point",
    )
    p.set_defaults(func=cmd_tune)

    def add_broker_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers", type=int, help="worker threads (default: 4)"
        )
        p.add_argument(
            "--queue-limit",
            type=int,
            dest="queue_limit",
            help="waiting requests admitted beyond the workers (default: 32)",
        )
        p.add_argument(
            "--deadline-ms",
            type=float,
            dest="deadline_ms",
            help="default per-request deadline in milliseconds",
        )
        p.add_argument(
            "--retries",
            type=int,
            help="retry attempts for transient backend failures (default: 3)",
        )
        p.add_argument(
            "--cache-dir",
            dest="cache_dir",
            help="persistent compile-cache directory (warm starts survive "
            "restarts; shared between serve and submit)",
        )
        p.add_argument(
            "--tune-ledger",
            dest="tune_ledger",
            help="tuning-ledger path for 'tune' requests (default: "
            "<cache-dir>/tune_ledger.json when --cache-dir is set)",
        )
        p.add_argument(
            "--fleet",
            metavar="ARCH,ARCH,...",
            help="device fleet (comma-separated arch-registry names, in "
            "preference order); run/compile requests without a pinned "
            "arch are routed to the modeled-best profile",
        )

    p = sub.add_parser(
        "serve",
        help="run the JSON-lines compile daemon (requests on stdin, "
        "responses on stdout, or on a unix socket with --socket; see "
        "docs/serving.md)",
    )
    add_broker_flags(p)
    p.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="listen on a unix-domain socket instead of stdin/stdout "
        "(repro top / serve-trace / loadgen connect here)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="run the sharded cluster tier: a consistent-hash router "
        "over N broker subprocesses sharing one disk cache (see "
        "docs/sharding.md; default: a single in-process broker)",
    )
    p.add_argument(
        "--replication",
        type=int,
        default=None,
        help="shards a hot key may be served from (cluster mode; "
        "default: 2)",
    )
    p.add_argument(
        "--hedge-after-ms",
        dest="hedge_after_ms",
        type=float,
        default=None,
        help="fixed hedged-retry delay in milliseconds (cluster mode; "
        "default: adaptive, from the p95 shard service time)",
    )
    p.add_argument(
        "--tenant-rate",
        dest="tenant_rate",
        type=float,
        default=None,
        help="per-tenant quota refill rate in requests/s (cluster "
        "mode; default: quotas disabled)",
    )
    p.add_argument(
        "--tenant-burst",
        dest="tenant_burst",
        type=float,
        default=None,
        help="per-tenant quota burst ceiling (cluster mode; "
        "default: 10)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cluster-drain",
        help="drain one shard of a live cluster router (requests finish, "
        "the shard leaves the ring; --restart rejoins it with a warm "
        "disk cache)",
    )
    p.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the router's unix socket (repro serve --shards N --socket)",
    )
    p.add_argument(
        "--shard",
        required=True,
        type=int,
        help="shard index to drain (0-based)",
    )
    p.add_argument(
        "--restart",
        action="store_true",
        help="restart the shard after draining (it rejoins the ring; "
        "the shared disk cache keeps its keys warm)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        help="seconds to wait for the drain to complete (default: 120)",
    )
    p.set_defaults(func=cmd_cluster_drain)

    p = sub.add_parser(
        "serve-trace",
        help="inspect a live daemon's flight recorder (slowest and "
        "errored request traces; Perfetto export with --perfetto)",
    )
    p.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="show one retained trace (default: list everything retained)",
    )
    p.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the daemon's unix socket (repro serve --socket PATH)",
    )
    p.add_argument(
        "--perfetto",
        metavar="OUT.json",
        default=None,
        help="write the Chrome trace_event document of the selected "
        "(or slowest) trace to OUT.json ('-' for stdout)",
    )
    p.set_defaults(func=cmd_serve_trace)

    p = sub.add_parser(
        "top",
        help="live serve telemetry in the terminal (requests/s, queue "
        "depth, cache hit rates, placements, latency quantiles)",
    )
    p.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the daemon's unix socket (repro serve --socket PATH)",
    )
    p.add_argument(
        "--interval-ms",
        dest="interval_ms",
        type=float,
        default=1000.0,
        help="refresh interval (default: 1000)",
    )
    p.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop after N frames (default: run until interrupted)",
    )
    p.add_argument(
        "--no-clear",
        dest="no_clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "loadgen",
        help="open-loop load generator + SLO report against a live "
        "broker (in-process, or a daemon via --socket)",
    )
    p.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="target a running daemon's unix socket instead of an "
        "in-process broker",
    )
    p.add_argument("--rate", type=float, help="offered load (requests/s)")
    p.add_argument("--duration", type=float, help="experiment length (s)")
    p.add_argument(
        "--arrival",
        choices=("poisson", "fixed"),
        help="arrival process (default: poisson)",
    )
    p.add_argument(
        "--mix",
        metavar="OP=W,OP=W",
        help="op mix weights, e.g. compile=0.5,run=0.4,tune=0.1",
    )
    p.add_argument(
        "--benchmarks",
        metavar="NAME,NAME",
        help="restrict the workload to these suite benchmarks",
    )
    p.add_argument("--seed", type=int, help="schedule RNG seed (default: 0)")
    p.add_argument(
        "--tenant",
        default=None,
        help="stamp every request with this tenant name (exercises "
        "per-tenant quotas on a cluster router)",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="start from the CI smoke profile instead of the defaults",
    )
    p.add_argument(
        "--no-prewarm",
        dest="no_prewarm",
        action="store_true",
        help="skip the synchronous compile prewarm (measure cold starts)",
    )
    p.add_argument(
        "--report",
        metavar="OUT.json",
        help="write the SLO report here instead of stdout",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="progress lines on stderr",
    )
    add_broker_flags(p)
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "submit", help="one-shot client over the serve broker/protocol"
    )
    p.add_argument("file", help="MiniACC source file ('-' for stdin)")
    p.add_argument(
        "--config",
        help=f"configuration name; known: {', '.join(sorted(ALL_CONFIGS))}",
    )
    p.add_argument("--env", action="append", default=[], help="problem size name=value")
    p.add_argument(
        "--arch",
        help="pin the request to a registered arch profile (the server "
        "answers unknown_arch for unregistered names)",
    )
    p.add_argument(
        "--tenant",
        default=None,
        help="tenant name for the request (charged against per-tenant "
        "quotas on a cluster router)",
    )
    p.add_argument(
        "--saturate",
        action="store_true",
        default=None,
        help="request the equality-saturation pass on top of the config",
    )
    p.add_argument(
        "--no-saturate",
        dest="saturate",
        action="store_false",
        help="force the equality-saturation pass off for this request",
    )
    p.add_argument(
        "--run",
        action="store_true",
        help="submit a 'run' request (functional execution) instead of 'compile'",
    )
    p.add_argument(
        "--tune",
        action="store_true",
        help="submit a 'tune' request (autotuning; requires --env)",
    )
    p.add_argument(
        "--strategy",
        choices=("exhaustive", "greedy", "beam"),
        default="beam",
        help="search strategy for --tune",
    )
    p.add_argument(
        "--budget", type=int, default=None, help="max trials for --tune"
    )
    p.add_argument(
        "--executor",
        choices=EXECUTOR_NAMES,
        default=None,
        help="execution engine for --run",
    )
    add_broker_flags(p)
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("experiments", help="regenerate the paper's tables/figures")
    p.add_argument("names", nargs="*", help=f"subset of: {', '.join(ALL_EXPERIMENTS)}")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "passes", help="list the registered optimization passes"
    )
    p.add_argument("--json", action="store_true", help="emit JSON instead of text")
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser("bench", help="list the modelled benchmarks")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("microbench", help="run the latency survey")
    p.set_defaults(func=cmd_microbench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
