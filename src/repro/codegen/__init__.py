"""Code generation: the VIR virtual ISA (PTX stand-in), the region
lowering pass, and a readable CUDA-like source renderer."""

from .cuda_text import CudaRenderer, render_cuda
from .opencl_text import OpenClRenderer, render_opencl
from .kernelgen import CodegenOptions, KernelGenerator, generate_kernel
from .vector_lower import AXIS, SEQ, KernelPlan, LoopPlan, RegionPlan, plan_kernel
from .vir import (
    Instr,
    LaunchConfig,
    MARKER_OPS,
    MEMORY_OPS,
    Op,
    VirKernel,
    VReg,
    VRegAllocator,
)

__all__ = [
    "AXIS",
    "SEQ",
    "KernelPlan",
    "LoopPlan",
    "RegionPlan",
    "plan_kernel",
    "CodegenOptions",
    "CudaRenderer",
    "OpenClRenderer",
    "render_cuda",
    "render_opencl",
    "Instr",
    "KernelGenerator",
    "LaunchConfig",
    "MARKER_OPS",
    "MEMORY_OPS",
    "Op",
    "VReg",
    "VRegAllocator",
    "VirKernel",
    "generate_kernel",
]
