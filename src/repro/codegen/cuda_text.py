"""Readable CUDA-like source rendering of offload regions.

The OpenUH pipeline of the paper (Figure 2) contains "enhanced
IR-to-source tools for supporting CUDA/OpenCL kernel function translation"
(WHIRL2CUDA).  This module is that tool's analogue: it renders one region
as a ``__global__`` kernel for humans — examples and documentation use it
to show what the launch mapping and the clause optimisations do.  The VIR
path (:mod:`repro.codegen.kernelgen`) is what the register allocator and
timing model consume; this renderer is presentation-only.
"""

from __future__ import annotations

from ..analysis.loopinfo import analyze_loops
from ..ir.printer import format_expr
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..ir.symbols import Symbol, SymbolTable
from ..transforms.dim_clause import compute_dope_classes
from ..transforms.small_clause import small_arrays
from .kernelgen import CodegenOptions


class CudaRenderer:
    def __init__(
        self,
        region: Region,
        symtab: SymbolTable,
        options: CodegenOptions | None = None,
        name: str = "kernel_region",
    ):
        self.region = region
        self.symtab = symtab
        self.options = options or CodegenOptions()
        self.name = name
        self.info = analyze_loops(region)
        self._lines: list[str] = []
        self._indent = 1
        self._axis = 0

    def _emit(self, text: str = "") -> None:
        self._lines.append("    " * self._indent + text if text else "")

    def render(self) -> str:
        from ..analysis.memspace import referenced_arrays

        arrays = sorted(referenced_arrays(self.region), key=lambda s: s.name)
        small = (
            small_arrays(self.region, self.symtab)
            if self.options.honor_small
            else set()
        )
        params = []
        for sym in arrays:
            const = "const " if sym.is_const else ""
            restrict = " __restrict__" if sym.is_restrict or sym.is_const else ""
            params.append(f"{const}{sym.array.elem}*{restrict} {sym.name}")
        scalar_params = sorted(
            {
                s.name
                for s in self.symtab
                if not s.is_array and s.kind.value == "param"
            }
        )
        params += [f"{self.symtab.require(n).stype} {n}" for n in scalar_params]
        head = f"__global__ void {self.name}({', '.join(params)})"
        self._lines.append(head)
        self._lines.append("{")
        self._emit_dope_comment(arrays, small)
        for stmt in self.region.body:
            self._stmt(stmt)
        self._lines.append("}")
        return "\n".join(self._lines)

    def _emit_dope_comment(self, arrays: list[Symbol], small: set[Symbol]) -> None:
        if self.options.honor_dim and self.region.directive.dim_groups:
            classes = compute_dope_classes(self.region, self.symtab)
            groups = {}
            for sym, cid in classes.class_of.items():
                groups.setdefault(cid, []).append(sym.name)
            for cid, names in sorted(groups.items()):
                self._emit(f"// dim: shared offset computation for {{{', '.join(sorted(names))}}}")
        if small:
            names = ", ".join(sorted(s.name for s in small if s in arrays))
            if names:
                self._emit(f"// small: 32-bit offsets for {{{names}}}")

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, LocalDecl):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            self._emit(f"{stmt.sym.stype} {stmt.sym.name}{init};")
        elif isinstance(stmt, Assign):
            self._emit(f"{format_expr(stmt.target)} = {format_expr(stmt.value)};")
        elif isinstance(stmt, If):
            self._emit(f"if ({format_expr(stmt.cond)}) {{")
            self._indent += 1
            for s in stmt.then_body:
                self._stmt(s)
            self._indent -= 1
            if stmt.else_body:
                self._emit("} else {")
                self._indent += 1
                for s in stmt.else_body:
                    self._stmt(s)
                self._indent -= 1
            self._emit("}")
        elif isinstance(stmt, Loop):
            if stmt.is_parallel:
                self._parallel_loop(stmt)
            else:
                self._seq_loop(stmt)
        else:
            raise TypeError(f"cannot render {type(stmt).__name__}")

    _AXES = ("x", "y", "z")

    def _parallel_loop(self, loop: Loop) -> None:
        axis = self._AXES[min(self._axis, 2)]
        self._axis += 1
        var = loop.var.name
        d = loop.directive
        if d is not None and d.vector is not None:
            gid = f"blockIdx.{axis} * blockDim.{axis} + threadIdx.{axis}"
        else:
            gid = f"blockIdx.{axis}"
        step = f" * {loop.step}" if loop.step != 1 else ""
        self._emit(f"int {var} = {format_expr(loop.init)} + ({gid}){step};")
        self._emit(f"if ({var} {loop.cond_op} {format_expr(loop.bound)}) {{")
        self._indent += 1
        for s in loop.body:
            self._stmt(s)
        self._indent -= 1
        self._emit("}")
        self._axis -= 1

    def _seq_loop(self, loop: Loop) -> None:
        var = loop.var.name
        if loop.step == 1:
            inc = f"{var}++"
        elif loop.step == -1:
            inc = f"{var}--"
        elif loop.step > 0:
            inc = f"{var} += {loop.step}"
        else:
            inc = f"{var} -= {-loop.step}"
        self._emit(
            f"for (int {var} = {format_expr(loop.init)}; "
            f"{var} {loop.cond_op} {format_expr(loop.bound)}; {inc}) {{"
        )
        self._indent += 1
        for s in loop.body:
            self._stmt(s)
        self._indent -= 1
        self._emit("}")


def render_cuda(
    region: Region,
    symtab: SymbolTable,
    options: CodegenOptions | None = None,
    name: str = "kernel_region",
) -> str:
    """Render one offload region as CUDA-like source text."""
    return CudaRenderer(region, symtab, options, name).render()
