"""Lowering of OpenACC offload regions to the VIR virtual ISA.

This is the GPU half of the OpenUH pipeline (Figure 2 of the paper): the
region's parallel loops become the launch topology, sequential loops become
per-thread loops, and every array reference expands into dope-vector
loads + offset arithmetic + a memory access — the code whose register cost
the ``dim`` and ``small`` clauses attack:

* **dope vectors** (Section IV-A): a VLA/allocatable array of rank *n*
  needs *n* lower bounds + *n−1* row lengths as compiler temporaries
  (5 for the paper's 3-D Fortran example).  With the ``dim`` clause,
  arrays of one group share a single set — and, when their subscripts
  match, a single offset value (the paper's ``offset0`` listing).

* **offset width** (Section IV-B): offsets are 64-bit by default (two
  hardware registers each); arrays proven/declared ``small`` use 32-bit
  arithmetic, halving that cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.coalescing import AccessInfo, AccessPattern, classify_access
from ..analysis.loopinfo import analyze_loops
from ..analysis.memspace import MemSpace, classify_memspaces
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
    expr_type,
    scalar_reads,
)
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..ir.symbols import Symbol, SymbolTable
from ..lang.directives import LoopDirective
from ..transforms.dim_clause import DopeClasses, compute_dope_classes
from ..transforms.small_clause import small_arrays
from .vir import Instr, LaunchConfig, Op, VirKernel, VReg, VRegAllocator


@dataclass(slots=True)
class CodegenOptions:
    """Code generation switches (one compiler configuration)."""

    #: Honor the proposed ``dim`` clause (share dope vectors / offsets).
    honor_dim: bool = True
    #: Honor the proposed ``small`` clause (32-bit offsets).
    honor_small: bool = True
    #: Lower read-only data through the Kepler read-only cache.
    readonly_cache: bool = True
    #: Reuse identical offset computations (address CSE).
    cse_offsets: bool = True
    #: Merge statement-level adjacent loads (last subscripts differing by
    #: one) into a single two-element vector load — the paper's
    #: future-work "memory vectorization".
    vectorize_loads: bool = False
    #: Value-number expressions during lowering: structurally identical
    #: pure scalar expressions share one register within a scope, loads
    #: of the same reference share within a statement, and row offsets
    #: share partial accumulators per subscript prefix.  Off by default —
    #: enabled by ``CompilerConfig.saturate``, because it only pays once
    #: equality saturation has canonicalized equal spellings into
    #: structurally identical trees.
    cse_exprs: bool = False
    #: vector_length when a vector clause has no size.
    default_vector_length: int = 128


class KernelGenerator:
    """Generates one :class:`VirKernel` from one offload region."""

    def __init__(
        self,
        region: Region,
        symtab: SymbolTable,
        options: CodegenOptions | None = None,
        name: str | None = None,
    ):
        self.region = region
        self.symtab = symtab
        self.options = options or CodegenOptions()
        self.name = name or region.name_hint
        self.ra = VRegAllocator()
        self.instrs: list[Instr] = []
        self.scalar_regs: dict[Symbol, VReg] = {}
        self.base_regs: dict[Symbol, VReg] = {}
        self.dope_regs: dict[tuple[Symbol, int, str], VReg] = {}
        # Stack-scoped offset cache: (array-or-class-rep, indices, width).
        self._offset_scopes: list[dict] = [{}]
        # Value-numbering state (cse_exprs): evaluated sub-expressions,
        # cached per *statement* only.  Cross-statement reuse is deliberately
        # off — holding a value across statements stretches its live range,
        # and the max-overlap register model charges that directly (one
        # extra resident register can cross an occupancy boundary and cost
        # more than the saved ALU op ever pays back).
        self._stmt_cache: dict[Expr, VReg] = {}
        # Per-statement vector-load fusion state.
        self._vec_partner: dict = {}
        self._vec_loaded: dict = {}
        self.info = analyze_loops(region)
        self.vector_var = self.info.vector_var
        self.divergent = frozenset(self.info.divergent_symbols())
        self.spaces = classify_memspaces(
            region, has_readonly_cache=self.options.readonly_cache
        )
        if self.options.honor_small:
            self.small = small_arrays(region, symtab)
        else:
            # Static detection still applies (the compiler always knows
            # static shapes); only the clause information is dropped.
            self.small = {
                s
                for s in symtab.arrays()
                if s.array
                and s.array.static_size_bytes() is not None
                and s.array.static_size_bytes() < 4 * 1024**3
            }
        if self.options.honor_dim:
            self.dope_classes = compute_dope_classes(region, symtab)
        else:
            self.dope_classes = DopeClasses()

    # -- public ---------------------------------------------------------------
    def generate(self) -> VirKernel:
        launch = self._build_launch()
        self._launch_tpb = launch.threads_per_block
        self.smem_bytes = 0
        self._emit_prologue()
        self._emit_stmts(self.region.body)
        self._emit(Instr(Op.RET))
        return VirKernel(
            name=self.name,
            instrs=self.instrs,
            launch=launch,
            vreg_count=self.ra.count,
            smem_bytes=self.smem_bytes,
        )

    # -- helpers ---------------------------------------------------------------
    def _emit(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def _offset_cache(self) -> dict:
        return self._offset_scopes[-1]

    def _push_scope(self) -> None:
        self._offset_scopes.append(dict(self._offset_scopes[-1]))

    def _pop_scope(self) -> None:
        self._offset_scopes.pop()

    def _offset_width(self, sym: Symbol) -> int:
        return 32 if sym in self.small else 64

    def _scalar_reg(self, sym: Symbol) -> VReg:
        reg = self.scalar_regs.get(sym)
        if reg is None:
            reg = self.ra.fresh(bits=sym.stype.bits, hint=sym.name)
            self.scalar_regs[sym] = reg
        return reg

    # -- prologue ----------------------------------------------------------
    def _referenced_arrays(self) -> list[Symbol]:
        from ..analysis.memspace import referenced_arrays

        return sorted(referenced_arrays(self.region), key=lambda s: s.name)

    def _emit_prologue(self) -> None:
        """Parameter, base-pointer and dope-vector loads."""
        for sym in self._referenced_arrays():
            base = self.ra.fresh(bits=64, hint=f"{sym.name}_base")
            self.base_regs[sym] = base
            self._emit(Instr(Op.LD_PARAM, dst=base, array=sym, comment=f"&{sym.name}"))
            self._emit_dope_loads(sym)

    def _emit_dope_loads(self, sym: Symbol) -> None:
        """Materialise the dope temporaries one array needs.

        Rank-n VLA: lower bounds for dims 0..n-1 (skipped when statically
        zero) and row lengths for dims 1..n-1 (skipped when static).  With
        ``dim`` sharing, only the class representative's set is loaded.
        """
        if sym.array is None or sym.array.is_pointer or not sym.array.dims:
            return
        rep = self.dope_classes.representative(sym)
        width = self._offset_width(sym)
        for d in range(len(rep.array.dims)):
            if not self._lower_is_immediate(rep, d):
                self._dope_reg(rep, d, "lb", width)
            if d >= 1 and not isinstance(rep.array.dims[d].extent, int):
                self._dope_reg(rep, d, "len", width)

    @staticmethod
    def _lower_is_immediate(rep: Symbol, d: int) -> bool:
        """Can dimension ``d``'s lower bound be folded at compile time?

        For *dynamic* arrays (any runtime extent — Fortran allocatables /
        C VLAs) a declared non-zero lower bound lives in the run-time dope
        vector: the paper's ``(i - t0)`` temporaries exist even when the
        program text says ``1:nx``.  A literal 0 is the C guarantee and
        always folds; fully static arrays fold everything.
        """
        dim = rep.array.dims[d]
        if not isinstance(dim.lower, int):
            return False
        if dim.lower == 0:
            return True
        return not rep.array.is_vla

    def _dope_reg(self, rep: Symbol, dim: int, kind: str, width: int) -> VReg:
        key = (rep, dim, kind)
        reg = self.dope_regs.get(key)
        if reg is None:
            reg = self.ra.fresh(bits=width, hint=f"{rep.name}_{kind}{dim}")
            self.dope_regs[key] = reg
            self._emit(
                Instr(
                    Op.LD_DOPE,
                    dst=reg,
                    array=rep,
                    dope_dim=dim,
                    dope_kind=kind,
                    comment=f"{rep.name}.{kind}[{dim}]",
                )
            )
        return reg

    # -- launch topology -----------------------------------------------------
    def _build_launch(self) -> LaunchConfig:
        vector_loops: list[Loop] = []
        gang_loops: list[Loop] = []
        tpb = 1
        for loop in self.info.parallel_loops:
            d = loop.directive
            if d is not None and d.vector is not None:
                vector_loops.append(loop)
                size = d.vector
                if isinstance(size, bool) or not isinstance(size, int):
                    size = self.options.default_vector_length
                tpb *= size
            else:
                gang_loops.append(loop)
        if not vector_loops and self.info.parallel_loops:
            tpb = self.options.default_vector_length
        return LaunchConfig(
            threads_per_block=max(1, min(tpb, 1024)),
            vector_loops=vector_loops,
            gang_loops=gang_loops,
        )

    # -- statements -----------------------------------------------------------
    def _emit_stmts(self, stmts: list[Stmt]) -> None:
        for stmt in stmts:
            self._emit_stmt(stmt)

    def _emit_stmt(self, stmt: Stmt) -> None:
        self._begin_stmt()
        if isinstance(stmt, Assign):
            self._scan_vector_pairs(stmt)
            value = self._eval(stmt.value)
            if isinstance(stmt.target, VarRef):
                dst = self._scalar_reg(stmt.target.sym)
                self._emit(
                    Instr(
                        Op.MOV,
                        dst=dst,
                        srcs=(value,),
                        is_float=stmt.target.sym.stype.is_float,
                    )
                )
                self._evict_scalar(stmt.target.sym)
            else:
                self._emit_store(stmt.target, value)
        elif isinstance(stmt, LocalDecl):
            if stmt.init is not None:
                self._scan_vector_pairs(stmt)
                value = self._eval(stmt.init)
                dst = self._scalar_reg(stmt.sym)
                self._emit(
                    Instr(Op.MOV, dst=dst, srcs=(value,), is_float=stmt.sym.stype.is_float)
                )
                self._evict_scalar(stmt.sym)
            else:
                self._scalar_reg(stmt.sym)
        elif isinstance(stmt, If):
            cond = self._eval(stmt.cond)
            self._emit(Instr(Op.IF_BEGIN, srcs=(cond,)))
            self._push_scope()
            self._emit_stmts(stmt.then_body)
            self._pop_scope()
            if stmt.else_body:
                self._emit(Instr(Op.IF_ELSE))
                self._push_scope()
                self._emit_stmts(stmt.else_body)
                self._pop_scope()
            self._emit(Instr(Op.IF_END))
        elif isinstance(stmt, Loop):
            if stmt.is_parallel:
                self._emit_parallel_loop(stmt)
            else:
                self._emit_seq_loop(stmt)
        else:
            raise TypeError(f"cannot lower statement {type(stmt).__name__}")

    def _emit_parallel_loop(self, loop: Loop) -> None:
        """Map one parallel loop onto the thread topology:
        ``var = init + global_id * step`` with a bounds guard."""
        d = loop.directive
        tid = self.ra.fresh(hint=f"tid_{loop.var.name}")
        if d is not None and d.vector is not None:
            ctaid = self.ra.fresh(hint=f"ctaid_{loop.var.name}")
            ntid = self.ra.fresh(hint=f"ntid_{loop.var.name}")
            raw = self.ra.fresh(hint=f"gid_{loop.var.name}")
            self._emit(Instr(Op.TID, dst=tid))
            self._emit(Instr(Op.CTAID, dst=ctaid))
            self._emit(Instr(Op.NTID, dst=ntid))
            self._emit(Instr(Op.MAD, dst=raw, srcs=(ctaid, ntid, tid)))
        else:
            raw = self.ra.fresh(hint=f"gid_{loop.var.name}")
            self._emit(Instr(Op.CTAID, dst=raw))
        var_reg = self._scalar_reg(loop.var)
        init = self._eval(loop.init)
        if loop.step == 1:
            self._emit(Instr(Op.ADD, dst=var_reg, srcs=(init, raw)))
        else:
            step_reg = self._imm(loop.step)
            self._emit(Instr(Op.MAD, dst=var_reg, srcs=(raw, step_reg, init)))
        self._evict_scalar(loop.var)
        bound = self._eval(loop.bound)
        pred = self.ra.fresh(hint=f"guard_{loop.var.name}")
        self._emit(Instr(Op.SETP, dst=pred, srcs=(var_reg, bound), func=loop.cond_op))
        self._emit(Instr(Op.IF_BEGIN, srcs=(pred,), comment="thread guard"))
        self._push_scope()
        self._emit_stmts(loop.body)
        self._pop_scope()
        self._emit(Instr(Op.IF_END))
        if d is not None and d.reductions:
            self._emit_reduction_epilogue(loop)

    def _emit_reduction_epilogue(self, loop: Loop) -> None:
        """Block-level tree reduction for ``reduction(op:var)`` clauses.

        Each reduction variable gets one element of shared memory per
        thread; ``log2(tpb)`` rounds of barrier + shared load/add/store
        combine the block's partials, and lane 0 issues the global update.
        This charges the real costs OpenACC reduction lowering pays:
        shared-memory capacity (which caps occupancy), barriers, and the
        final global traffic.
        """
        import math as _math

        d = loop.directive
        tpb = getattr(self, "_launch_tpb", 0) or self.options.default_vector_length
        rounds = max(1, int(_math.ceil(_math.log2(max(tpb, 2)))))
        uniform = AccessInfo(AccessPattern.COALESCED, 1)
        for red in d.reductions:
            sym = None
            for s in self.symtab:
                if s.name == red.var and not s.is_array:
                    sym = s
                    break
            elem_bits = sym.stype.bits if sym is not None else 64
            self.smem_bytes += tpb * (elem_bits // 8)
            acc = (
                self._scalar_reg(sym)
                if sym is not None
                else self.ra.fresh(bits=elem_bits, hint="red_acc")
            )
            self._emit(
                Instr(
                    Op.ST,
                    srcs=(acc,),
                    space=MemSpace.SHARED,
                    access=uniform,
                    width_bits=elem_bits,
                    comment=f"reduction({red.op}:{red.var}) partial",
                )
            )
            for _ in range(rounds):
                self._emit(Instr(Op.BAR, comment="reduction barrier"))
                tmp = self.ra.fresh(bits=elem_bits, hint="red")
                self._emit(
                    Instr(
                        Op.LD,
                        dst=tmp,
                        space=MemSpace.SHARED,
                        access=uniform,
                        width_bits=elem_bits,
                        comment="reduction peer",
                    )
                )
                self._emit(
                    Instr(Op.ADD, dst=acc, srcs=(acc, tmp), is_float=elem_bits == 64)
                )
                self._emit(
                    Instr(
                        Op.ST,
                        srcs=(acc,),
                        space=MemSpace.SHARED,
                        access=uniform,
                        width_bits=elem_bits,
                    )
                )
            # Lane 0 publishes the block result.
            self._emit(
                Instr(
                    Op.ST,
                    srcs=(acc,),
                    space=MemSpace.GLOBAL,
                    access=AccessInfo(AccessPattern.UNIFORM, 0),
                    width_bits=elem_bits,
                    comment=f"reduction({red.op}:{red.var}) block result",
                )
            )

    def _emit_seq_loop(self, loop: Loop) -> None:
        var_reg = self._scalar_reg(loop.var)
        init = self._eval(loop.init)
        self._emit(Instr(Op.MOV, dst=var_reg, srcs=(init,)))
        self._evict_scalar(loop.var)
        bound = self._eval(loop.bound)
        self._emit(Instr(Op.LOOP_BEGIN, loop=loop, srcs=(bound,)))
        self._push_scope()
        # Loop-variant offsets must not leak across iterations.
        self._offset_scopes[-1] = {}
        self._emit_stmts(loop.body)
        step_reg = self._imm(abs(loop.step))
        op = Op.ADD if loop.step > 0 else Op.SUB
        self._emit(Instr(op, dst=var_reg, srcs=(var_reg, step_reg)))
        pred = self.ra.fresh(hint=f"p_{loop.var.name}")
        self._emit(Instr(Op.SETP, dst=pred, srcs=(var_reg, bound), func=loop.cond_op))
        self._pop_scope()
        self._emit(Instr(Op.LOOP_END, loop=loop, srcs=(pred,)))

    # -- memory access --------------------------------------------------------
    def _emit_store(self, ref: ArrayRef, value: VReg) -> None:
        offset = self._offset_of(ref)
        base = self.base_regs[ref.sym]
        elem = ref.sym.array.elem
        self._emit(
            Instr(
                Op.ST,
                srcs=(base, offset, value),
                array=ref.sym,
                space=MemSpace.GLOBAL,
                access=classify_access(ref, self.vector_var, self.divergent),
                width_bits=elem.bits,
                comment=f"{ref.sym.name}[...]",
            )
        )

    def _scan_vector_pairs(self, stmt) -> None:
        """Find adjacent read pairs (same array, last subscripts exactly
        one apart) within one statement for vector-load fusion."""
        self._vec_partner = {}
        self._vec_loaded = {}
        if not self.options.vectorize_loads:
            return
        from ..analysis.subscripts import subscript_forms
        from ..ir.expr import array_refs as _array_refs

        exprs = []
        if isinstance(stmt, Assign):
            exprs.append(stmt.value)
            if isinstance(stmt.target, ArrayRef):
                exprs.extend(stmt.target.indices)
        elif isinstance(stmt, LocalDecl) and stmt.init is not None:
            exprs.append(stmt.init)
        refs: list[ArrayRef] = []
        for e in exprs:
            for r in _array_refs(e):
                if r not in refs:
                    refs.append(r)
        taken: set[int] = set()
        for i, lo in enumerate(refs):
            if i in taken:
                continue
            flo = subscript_forms(lo)
            if flo is None:
                continue
            for j, hi in enumerate(refs):
                if j == i or j in taken or hi.sym is not lo.sym:
                    continue
                if len(hi.indices) != len(lo.indices):
                    continue
                fhi = subscript_forms(hi)
                if fhi is None:
                    continue
                if any((fh - fl).terms and k < len(flo) - 1
                       for k, (fh, fl) in enumerate(zip(fhi, flo))):
                    continue
                diff = fhi[-1] - flo[-1]
                if diff.is_constant and diff.const == 1:
                    self._vec_partner[lo] = ("lo", hi)
                    self._vec_partner[hi] = ("hi", lo)
                    taken.add(i)
                    taken.add(j)
                    break

    def _emit_load(self, ref: ArrayRef) -> VReg:
        cached = self._vec_loaded.get(ref)
        if cached is not None:
            return cached
        elem = ref.sym.array.elem
        pair = self._vec_partner.get(ref) if self.options.vectorize_loads else None
        if pair is not None:
            # Fused two-element load (ld.v2 in PTX terms): one transaction,
            # one latency, both lanes defined at once, addressed from the
            # LOW element.
            role, other = pair
            lo_ref = ref if role == "lo" else other
            hi_ref = other if role == "lo" else ref
            offset = self._offset_of(lo_ref)
            base = self.base_regs[ref.sym]
            dst_lo = self.ra.fresh(bits=elem.bits, hint=f"{ref.sym.name}_v")
            dst_hi = self.ra.fresh(bits=elem.bits, hint=f"{ref.sym.name}_v2")
            self._emit(
                Instr(
                    Op.LD,
                    dst=dst_lo,
                    dst2=dst_hi,
                    srcs=(base, offset),
                    array=ref.sym,
                    space=self.spaces.get(ref.sym, MemSpace.GLOBAL),
                    access=classify_access(lo_ref, self.vector_var, self.divergent),
                    width_bits=elem.bits * 2,
                    comment=f"{ref.sym.name}[...].v2",
                )
            )
            self._vec_loaded[lo_ref] = dst_lo
            self._vec_loaded[hi_ref] = dst_hi
            return self._vec_loaded[ref]
        offset = self._offset_of(ref)
        base = self.base_regs[ref.sym]
        dst = self.ra.fresh(bits=elem.bits, hint=f"{ref.sym.name}_v")
        self._emit(
            Instr(
                Op.LD,
                dst=dst,
                srcs=(base, offset),
                array=ref.sym,
                space=self.spaces.get(ref.sym, MemSpace.GLOBAL),
                access=classify_access(ref, self.vector_var, self.divergent),
                width_bits=elem.bits,
                comment=f"{ref.sym.name}[...]",
            )
        )
        return dst

    def _offset_of(self, ref: ArrayRef) -> VReg:
        """Flattened element offset of ``ref`` in the array's offset width.

        Identical subscripts on arrays of one dope class share one offset
        register (the ``dim`` optimisation), looked up through the
        stack-scoped CSE cache.
        """
        sym = ref.sym
        rep = self.dope_classes.representative(sym)
        width = self._offset_width(sym)
        key = (rep, ref.indices, width)
        if self.options.cse_offsets:
            cached = self._offset_cache().get(key)
            if cached is not None:
                return cached
        offset = self._compute_offset(ref, rep, width)
        if self.options.cse_offsets:
            self._offset_cache()[key] = offset
        return offset

    def _compute_offset(self, ref: ArrayRef, rep: Symbol, width: int) -> VReg:
        sym = ref.sym
        assert sym.array is not None
        if sym.array.is_pointer:
            idx = self._eval(ref.indices[0])
            return self._to_width(idx, width)
        dims = rep.array.dims if rep.array and rep.array.dims else sym.array.dims
        acc: VReg | None = None
        start = 0
        if self.options.cse_exprs and self.options.cse_offsets:
            # Resume from the longest cached subscript prefix: stencils
            # differing only in the last subscript (A[k][j][i±1]) share
            # every row-offset accumulator but the final one.
            cache = self._offset_cache()
            for p in range(len(ref.indices) - 1, 0, -1):
                cached = cache.get((rep, ref.indices[:p], width))
                if cached is not None:
                    acc, start = cached, p
                    break
        for d, (index_expr, dim) in enumerate(zip(ref.indices, dims)):
            if d < start:
                continue
            idx = self._to_width(self._eval(index_expr), width)
            # idx - lb
            if self._lower_is_immediate(rep, d):
                if dim.lower != 0:
                    tmp = self.ra.fresh(bits=width, hint="idx")
                    self._emit(Instr(Op.SUB, dst=tmp, srcs=(idx,), imm=dim.lower))
                    idx = tmp
            else:
                lb = self._dope_reg(rep, d, "lb", width)
                tmp = self.ra.fresh(bits=width, hint="idx")
                self._emit(Instr(Op.SUB, dst=tmp, srcs=(idx, lb)))
                idx = tmp
            if acc is None:
                acc = idx
            else:
                # acc = acc * len_d + idx
                out = self.ra.fresh(bits=width, hint="off")
                if isinstance(dim.extent, int):
                    self._emit(Instr(Op.MAD, dst=out, srcs=(acc, idx), imm=dim.extent))
                else:
                    length = self._dope_reg(rep, d, "len", width)
                    self._emit(Instr(Op.MAD, dst=out, srcs=(acc, length, idx)))
                acc = out
            if (
                self.options.cse_exprs
                and self.options.cse_offsets
                and d < len(ref.indices) - 1
            ):
                self._offset_cache()[(rep, ref.indices[: d + 1], width)] = acc
        assert acc is not None
        return acc

    def _to_width(self, reg: VReg, width: int) -> VReg:
        if reg.bits == width:
            return reg
        out = self.ra.fresh(bits=width, hint="cvt")
        self._emit(Instr(Op.CVT, dst=out, srcs=(reg,)))
        return out

    def _imm(self, value: int | float, bits: int = 32, is_float: bool = False) -> VReg:
        reg = self.ra.fresh(bits=bits, hint="imm")
        self._emit(Instr(Op.MOV_IMM, dst=reg, imm=value, is_float=is_float))
        return reg

    # -- expression value numbering (cse_exprs) -----------------------------
    def _vn_lookup(self, e: Expr) -> VReg | None:
        return self._stmt_cache.get(e)

    def _vn_store(self, e: Expr, reg: VReg) -> None:
        self._stmt_cache[e] = reg

    def _evict_scalar(self, sym: Symbol) -> None:
        """Drop every cached value that reads ``sym`` — from the statement
        cache (a sequential loop writes its variable between the init and
        bound evaluations of one logical statement) and from the offset
        caches (subscripts read scalars too, and those persist across
        statements)."""
        if not self.options.cse_exprs:
            return
        stale = [
            k
            for k in self._stmt_cache
            if any(r.sym is sym for r in scalar_reads(k))
        ]
        for k in stale:
            del self._stmt_cache[k]
        for cache in self._offset_scopes:
            stale = [
                key
                for key in cache
                if any(
                    r.sym is sym
                    for index in key[1]
                    for r in scalar_reads(index)
                )
            ]
            for key in stale:
                del cache[key]

    def _begin_stmt(self) -> None:
        self._stmt_cache = {}

    # -- expressions --------------------------------------------------------
    def _eval(self, e: Expr) -> VReg:
        # Leaves are never cached: scalars already live in one register,
        # and constants are cheaper rematerialized (one MOV_IMM) than
        # kept alive across statements — caching them stretches live
        # ranges and raises the max-overlap register count for nothing.
        if not self.options.cse_exprs or isinstance(
            e, (VarRef, IntConst, FloatConst)
        ):
            return self._eval_inner(e)
        cached = self._vn_lookup(e)
        if cached is not None:
            return cached
        reg = self._eval_inner(e)
        self._vn_store(e, reg)
        return reg

    def _eval_inner(self, e: Expr) -> VReg:
        if isinstance(e, IntConst):
            return self._imm(e.value, bits=e.stype.bits)
        if isinstance(e, FloatConst):
            return self._imm(e.value, bits=e.stype.bits, is_float=True)
        if isinstance(e, VarRef):
            return self._scalar_reg(e.sym)
        if isinstance(e, ArrayRef):
            return self._emit_load(e)
        if isinstance(e, UnOp):
            src = self._eval(e.operand)
            dst = self.ra.fresh(bits=src.bits, hint="neg")
            op = Op.NEG if e.op == "-" else Op.NOT
            self._emit(Instr(op, dst=dst, srcs=(src,), is_float=expr_type(e).is_float))
            return dst
        if isinstance(e, BinOp):
            return self._eval_binop(e)
        if isinstance(e, Select):
            cond = self._eval(e.cond)
            a = self._eval(e.then)
            b = self._eval(e.otherwise)
            dst = self.ra.fresh(bits=max(a.bits, b.bits), hint="sel")
            self._emit(Instr(Op.SELP, dst=dst, srcs=(cond, a, b)))
            return dst
        if isinstance(e, Cast):
            src = self._eval(e.operand)
            dst = self.ra.fresh(bits=e.to_type.bits, hint="cvt")
            self._emit(Instr(Op.CVT, dst=dst, srcs=(src,), is_float=e.to_type.is_float))
            return dst
        if isinstance(e, Call):
            args = tuple(self._eval(a) for a in e.args)
            result_bits = expr_type(e).bits
            dst = self.ra.fresh(bits=result_bits, hint=e.func)
            self._emit(
                Instr(Op.MATH, dst=dst, srcs=args, func=e.func, is_float=True)
            )
            return dst
        raise TypeError(f"cannot lower expression {type(e).__name__}")

    _BINOPS = {
        "+": Op.ADD,
        "-": Op.SUB,
        "*": Op.MUL,
        "/": Op.DIV,
        "%": Op.REM,
        "&&": Op.AND,
        "||": Op.OR,
    }

    def _eval_binop(self, e: BinOp) -> VReg:
        lhs = self._eval(e.left)
        rhs = self._eval(e.right)
        etype = expr_type(e)
        if e.op in ("<", "<=", ">", ">=", "==", "!="):
            dst = self.ra.fresh(hint="p")
            self._emit(Instr(Op.SETP, dst=dst, srcs=(lhs, rhs), func=e.op))
            return dst
        op = self._BINOPS[e.op]
        dst = self.ra.fresh(bits=etype.bits, hint="t")
        self._emit(Instr(op, dst=dst, srcs=(lhs, rhs), is_float=etype.is_float))
        return dst


def generate_kernel(
    region: Region,
    symtab: SymbolTable,
    options: CodegenOptions | None = None,
    name: str | None = None,
) -> VirKernel:
    """Lower one offload region to VIR."""
    return KernelGenerator(region, symtab, options, name).generate()
