"""Codegen execution tier: KernelPlan → generated Python/NumPy source.

The interpreting vector engine (:mod:`repro.gpu.vector_exec`) re-walks the
IR tree on every launch: per statement an ``isinstance`` dispatch chain,
per expression node a recursive ``_eval`` call.  This module *partially
evaluates* that walk once per kernel: each planned function is compiled
into straight-line Python source — one call per IR node into the very same
runtime primitives the interpreter uses (``_apply_binop``, ``_load_idx``,
``_apply_if`` with mask push/pop, ``_run_loop`` with the planned axis/seq
mode baked in, ordinal loops for lane-varying seq bounds) — then ``exec``'d
once into a function object and cached in memory keyed by the caller's
content hash.

Bit-for-bit equality with the scalar oracle is preserved *by construction*:
the generated program invokes the identical primitives in the identical
order the interpreting engine would, so both tiers produce the same arrays,
the same :class:`~repro.gpu.interpreter.ExecutionStats`, and the same
``VectorUnsupported`` errors.  Anything the generator does not recognise
raises :class:`CodegenUnsupported` and the executor ladder falls back to
the interpreting engine.

The generated *source text* is persisted next to the compiled program in
the DiskCache envelope (format v2) — a warm restart re-binds the text to a
freshly parsed function via :func:`bind_source` without re-running the
planner.  Rebinding is positional: ``enumerate_nodes`` walks the IR
deterministically, and the source references nodes only through their
walk index, so any parse of the same source text binds correctly.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
)
from ..ir.module import KernelFunction
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..obs.tracer import span
from .vector_lower import AXIS, KernelPlan, plan_kernel

FORMAT = "repro:numpy_source v1"

__all__ = [
    "CodegenUnsupported",
    "GeneratedKernel",
    "FunctionCache",
    "enumerate_nodes",
    "generate_source",
    "bind_source",
    "compile_kernel",
    "get_or_compile",
    "function_cache",
]


class CodegenUnsupported(Exception):
    """The generator cannot express this kernel; callers fall back to the
    interpreting vector engine (the message is the logged reason)."""


# ---------------------------------------------------------------------------
# Deterministic node enumeration
# ---------------------------------------------------------------------------


def enumerate_nodes(fn: KernelFunction) -> list[object]:
    """Pre-order walk over statements and expressions of ``fn.body``.

    The walk order is a pure function of the IR structure, so generated
    source from one parse binds against any other parse of the same
    kernel source (node *identities* differ across parses — interned
    constants may even be shared — but walk *positions* never do).
    """
    out: list[object] = []

    def walk_expr(e: Expr) -> None:
        out.append(e)
        for c in e.children():
            walk_expr(c)

    def walk_stmt(s: Stmt) -> None:
        out.append(s)
        if isinstance(s, Assign):
            walk_expr(s.target)
            walk_expr(s.value)
        elif isinstance(s, LocalDecl):
            if s.init is not None:
                walk_expr(s.init)
        elif isinstance(s, If):
            walk_expr(s.cond)
            for t in s.then_body:
                walk_stmt(t)
            for t in s.else_body:
                walk_stmt(t)
        elif isinstance(s, Loop):
            walk_expr(s.init)
            walk_expr(s.bound)
            for t in s.body:
                walk_stmt(t)
        elif isinstance(s, Region):
            for t in s.body:
                walk_stmt(t)

    for s in fn.body:
        walk_stmt(s)
    return out


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------

_IND = "    "


class _Generator:
    def __init__(self, fn: KernelFunction, plan: KernelPlan):
        self._fn = fn
        self._plan = plan
        nodes = enumerate_nodes(fn)
        self._count = len(nodes)
        self._pos: dict[int, int] = {}
        for i, node in enumerate(nodes):
            self._pos.setdefault(id(node), i)
        self._binds: list[str] = []  # bind-time lines (run once per exec)
        self._bound: dict[tuple, str] = {}
        self._lines: list[str] = []  # kernel body lines
        self._n = 0

    # -- naming -------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self._n}"
        self._n += 1
        return name

    def _emit(self, depth: int, line: str) -> None:
        self._lines.append(_IND * depth + line)

    def _bind(self, key: tuple, rhs: str) -> str:
        name = self._bound.get(key)
        if name is None:
            name = self._fresh(key[0])
            self._bound[key] = name
            self._binds.append(f"{name} = {rhs}")
        return name

    def _node(self, node: object) -> str:
        idx = self._pos[id(node)]
        return self._bind(("n", idx), f"__nodes__[{idx}]")

    def _sym(self, node: object) -> str:
        idx = self._pos[id(node)]
        return self._bind(("s", idx), f"__nodes__[{idx}].sym")

    def _cast_type(self, node: Cast) -> str:
        idx = self._pos[id(node)]
        return self._bind(("c", idx), f"__nodes__[{idx}].to_type")

    def _const(self, e: Expr) -> str:
        if isinstance(e, IntConst):
            return self._bind(("k", "i", e.value), f"__ic__({e.value!r})")
        assert isinstance(e, FloatConst)
        return self._bind(("k", "f", repr(e.value)), f"__fc__({e.value!r})")

    # -- expressions ----------------------------------------------------------
    def expr(self, e: Expr, depth: int) -> str:
        """Emit statements computing ``e`` at ``depth``; return the Python
        expression (a temp name or inline leaf) holding its VArray.
        Emission order replays the interpreter's evaluation order."""
        if isinstance(e, (IntConst, FloatConst)):
            return self._const(e)
        if isinstance(e, VarRef):
            t = self._fresh("t")
            self._emit(depth, f"{t} = _eg({e.sym.name!r})")
            return t
        if isinstance(e, ArrayRef):
            idxs = [self.expr(i, depth) for i in e.indices]
            t = self._fresh("t")
            self._emit(depth, f"{t} = _ld({self._node(e)}, [{', '.join(idxs)}])")
            return t
        if isinstance(e, UnOp):
            x = self.expr(e.operand, depth)
            t = self._fresh("t")
            self._emit(depth, f"{t} = _un({e.op!r}, {x})")
            return t
        if isinstance(e, BinOp):
            if e.op in ("&&", "||"):
                lhs = self.expr(e.left, depth)
                thunk = self._thunk_expr(e.right, depth)
                t = self._fresh("t")
                self._emit(depth, f"{t} = _log({e.op!r}, {lhs}, {thunk})")
                return t
            lhs = self.expr(e.left, depth)
            rhs = self.expr(e.right, depth)
            t = self._fresh("t")
            self._emit(depth, f"{t} = _bin({e.op!r}, {lhs}, {rhs})")
            return t
        if isinstance(e, Select):
            cond = self.expr(e.cond, depth)
            then_thunk = self._thunk_expr(e.then, depth)
            else_thunk = self._thunk_expr(e.otherwise, depth)
            t = self._fresh("t")
            self._emit(depth, f"{t} = _sel({cond}, {then_thunk}, {else_thunk})")
            return t
        if isinstance(e, Cast):
            x = self.expr(e.operand, depth)
            t = self._fresh("t")
            self._emit(depth, f"{t} = _cst({self._cast_type(e)}, {x})")
            return t
        if isinstance(e, Call):
            args = [self.expr(a, depth) for a in e.args]
            t = self._fresh("t")
            self._emit(depth, f"{t} = _cal({e.func!r}, [{', '.join(args)}])")
            return t
        raise CodegenUnsupported(f"unknown expression {type(e).__name__}")

    def _thunk_expr(self, e: Expr, depth: int) -> str:
        """A nested ``def`` evaluating ``e`` lazily (short-circuit rhs,
        ternary arms) — called by the runtime under the proper lane mask."""
        name = self._fresh("f")
        self._emit(depth, f"def {name}():")
        result = self.expr(e, depth + 1)
        self._emit(depth + 1, f"return {result}")
        return name

    # -- statements -----------------------------------------------------------
    def stmts(self, body: list[Stmt], depth: int) -> None:
        if not body:
            self._emit(depth, "pass")
            return
        for s in body:
            self.stmt(s, depth)

    def stmt(self, s: Stmt, depth: int) -> None:
        if isinstance(s, Assign):
            value = self.expr(s.value, depth)
            if isinstance(s.target, VarRef):
                self._emit(depth, f"_asn({self._sym(s.target)}, {value})")
            elif isinstance(s.target, ArrayRef):
                idxs = [self.expr(i, depth) for i in s.target.indices]
                self._emit(
                    depth,
                    f"_st({self._node(s.target)}, [{', '.join(idxs)}], {value})",
                )
            else:
                raise CodegenUnsupported(
                    f"unknown assignment target {type(s.target).__name__}"
                )
        elif isinstance(s, LocalDecl):
            if s.init is not None:
                value = self.expr(s.init, depth)
                self._emit(depth, f"_asn({self._sym(s)}, {value})")
            else:
                self._emit(depth, f"_dd({s.sym.name!r})")
        elif isinstance(s, If):
            cond = self.expr(s.cond, depth)
            then_name = self._fresh("f")
            self._emit(depth, f"def {then_name}():")
            self.stmts(s.then_body, depth + 1)
            else_name = self._fresh("f")
            self._emit(depth, f"def {else_name}():")
            self.stmts(s.else_body, depth + 1)
            self._emit(depth, f"_if({cond}, {then_name}, {else_name})")
        elif isinstance(s, Loop):
            body_name = self._fresh("f")
            self._emit(depth, f"def {body_name}():")
            self.stmts(s.body, depth + 1)
            axis = self._plan.mode_of(s) == AXIS
            self._emit(depth, f"_lp({self._node(s)}, {body_name}, {axis})")
        elif isinstance(s, Region):
            body_name = self._fresh("f")
            self._emit(depth, f"def {body_name}():")
            self.stmts(s.body, depth + 1)
            # The name hint carries a process-global counter — bind it from
            # the node table so the source text stays deterministic.
            idx = self._pos[id(s)]
            hint = self._bind(("r", idx), f"__nodes__[{idx}].name_hint")
            self._emit(depth, f"_rg({hint}, {body_name})")
        else:
            raise CodegenUnsupported(f"unknown statement {type(s).__name__}")

    # -- assembly -------------------------------------------------------------
    def render(self) -> str:
        self.stmts(self._fn.body, 2)
        header = [
            f"# {FORMAT}",
            f"# kernel: {self._fn.name}",
            f"# nodes: {self._count}",
        ]
        # Planner demotions ride along so the cached-function fast path
        # (which never re-plans) still reports them.
        if self._plan.demotion_reasons:
            reasons = " | ".join(
                r.replace("\n", " ") for r in self._plan.demotion_reasons
            )
            header.append(f"# demoted: {reasons}")
        header.append("def __bind__(__nodes__):")
        binds = [_IND + line for line in self._binds]
        prologue = [
            _IND + "def __kernel__(R):",
            _IND * 2 + "_eg = R._env_get",
            _IND * 2 + "_asn = R._assign_scalar",
            _IND * 2 + "_dd = R._decl_default",
            _IND * 2 + "_bin = R._apply_binop",
            _IND * 2 + "_log = R._apply_logic",
            _IND * 2 + "_un = R._apply_unop",
            _IND * 2 + "_sel = R._apply_select",
            _IND * 2 + "_cst = R._apply_cast",
            _IND * 2 + "_cal = R._apply_call",
            _IND * 2 + "_ld = R._load_idx",
            _IND * 2 + "_st = R._store_idx",
            _IND * 2 + "_if = R._apply_if",
            _IND * 2 + "_lp = R._run_loop",
            _IND * 2 + "_rg = R._run_region",
        ]
        tail = [_IND + "return __kernel__", ""]
        return "\n".join(header + binds + prologue + self._lines + tail)


def generate_source(fn: KernelFunction, plan: KernelPlan | None = None) -> str:
    """Generate the straight-line NumPy program for ``fn``.

    ``plan`` defaults to a fresh :func:`plan_kernel` run; the planned
    axis/seq decision of every loop is baked into the emitted
    ``_run_loop`` call, so executing the program needs no plan at all.
    """
    if plan is None:
        plan = plan_kernel(fn)
    with span("codegen", kernel=fn.name, tier="numpy_source") as sp:
        source = _Generator(fn, plan).render()
        sp.set(bytes=len(source))
    return source


# ---------------------------------------------------------------------------
# Binding: source text -> function object
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class GeneratedKernel:
    """A generated program bound to node positions: ``run(interp)`` drives a
    :class:`~repro.gpu.vector_exec.VectorInterpreter` (or subclass) through
    the straight-line program instead of the recursive IR walk."""

    kernel: str
    source: str
    func: object  # __kernel__(R)
    #: Planner demotion reasons captured at generation time (the cached
    #: fast path never re-plans, so these travel with the program).
    demoted: tuple = ()

    def run(self, interp) -> None:
        self.func(interp)


def _exec_globals() -> dict:
    # Deferred import: vector_exec imports this module lazily and vice versa.
    from ..gpu import vector_exec as vx

    def _fc(value: float):
        import numpy as np

        return vx.VArray(np.asarray(value, dtype=np.float64), vx.PYFLOAT)

    return {"__builtins__": {}, "__ic__": vx._const_int, "__fc__": _fc}


def bind_source(fn: KernelFunction, source: str) -> GeneratedKernel:
    """``exec`` generated source and bind it to ``fn``'s node positions.

    Validates the header (format, kernel name, node count) against the
    function it is being bound to; any mismatch — or a source that fails
    to compile — raises :class:`CodegenUnsupported`, which callers treat
    as a corrupt entry and fall back to re-planning.
    """
    lines = source.split("\n", 3)
    if len(lines) < 4 or lines[0] != f"# {FORMAT}":
        raise CodegenUnsupported("generated source: bad or missing format header")
    if lines[1] != f"# kernel: {fn.name}":
        raise CodegenUnsupported(
            f"generated source is for {lines[1].removeprefix('# kernel: ')!r}, "
            f"not {fn.name!r}"
        )
    nodes = enumerate_nodes(fn)
    if lines[2] != f"# nodes: {len(nodes)}":
        raise CodegenUnsupported(
            "generated source node count mismatch (stale entry?)"
        )
    demoted: tuple = ()
    first_body_line = lines[3].split("\n", 1)[0]
    if first_body_line.startswith("# demoted: "):
        demoted = tuple(
            first_body_line.removeprefix("# demoted: ").split(" | ")
        )
    try:
        code = compile(source, f"<numpy_source:{fn.name}>", "exec")
        namespace = _exec_globals()
        exec(code, namespace)  # noqa: S102 — our own generated text
        func = namespace["__bind__"](nodes)
    except CodegenUnsupported:
        raise
    except Exception as exc:  # noqa: BLE001 — corrupt source text
        raise CodegenUnsupported(f"generated source failed to bind: {exc}") from exc
    return GeneratedKernel(
        kernel=fn.name, source=source, func=func, demoted=demoted
    )


def compile_kernel(
    fn: KernelFunction, plan: KernelPlan | None = None
) -> GeneratedKernel:
    """Generate and bind in one step (cold path)."""
    return bind_source(fn, generate_source(fn, plan))


# ---------------------------------------------------------------------------
# In-memory function cache
# ---------------------------------------------------------------------------


class FunctionCache:
    """Process-wide cache of bound function objects keyed by content hash.

    Metrics (``cache.fnobj.hits`` / ``cache.fnobj.misses``) are counted
    into the registry the *caller* passes — sessions and brokers each see
    their own traffic against the shared cache.
    """

    def __init__(self, max_entries: int = 256):
        self._lock = threading.Lock()
        self._map: dict[str, GeneratedKernel] = {}
        self._max = max_entries
        self.hits = 0
        self.misses = 0

    def get(
        self, key: str, metrics=None, *, record_miss: bool = True
    ) -> GeneratedKernel | None:
        """Look up ``key``; ``record_miss=False`` makes a miss silent, for
        probes whose caller will retry through :func:`get_or_compile` (which
        counts the miss exactly once)."""
        with self._lock:
            gk = self._map.get(key)
            if gk is not None:
                self._map.pop(key)
                self._map[key] = gk  # LRU touch
                self.hits += 1
            elif record_miss:
                self.misses += 1
        if metrics is not None and (gk is not None or record_miss):
            metrics.counter(
                "cache.fnobj.hits" if gk is not None else "cache.fnobj.misses"
            ).inc()
        return gk

    def put(self, key: str, gk: GeneratedKernel) -> None:
        with self._lock:
            self._map[key] = gk
            while len(self._map) > self._max:
                self._map.pop(next(iter(self._map)))

    def source_for(self, key: str) -> str | None:
        """The cached generated source text, if any (for persistence)."""
        with self._lock:
            gk = self._map.get(key)
        return None if gk is None else gk.source

    def clear(self) -> None:
        with self._lock:
            self._map.clear()


_CACHE = FunctionCache()


def function_cache() -> FunctionCache:
    """The process-wide generated-function cache."""
    return _CACHE


def get_or_compile(
    fn: KernelFunction,
    plan: KernelPlan | None = None,
    *,
    content_key: str | None = None,
    source: str | None = None,
    metrics=None,
) -> GeneratedKernel:
    """Fetch the bound program for ``fn``, generating at most once.

    With a ``content_key``, repeat launches hit the in-memory function
    cache and skip planning and generation entirely.  ``source`` (from a
    warm disk-cache envelope) rebinds persisted text without re-planning;
    if it turns out corrupt or stale the tier regenerates from the plan.
    """
    if content_key is not None:
        cached = _CACHE.get(content_key, metrics)
        if cached is not None:
            return cached
    t0 = time.perf_counter()
    gk = None
    if source is not None:
        try:
            gk = bind_source(fn, source)
        except CodegenUnsupported:
            gk = None  # corrupt persisted source: regenerate below
            if metrics is not None:
                metrics.counter(
                    "cache.disk.codegen_corrupt",
                    "persisted codegen sources unusable at load time",
                ).inc()
    if gk is None:
        gk = compile_kernel(fn, plan)
    if metrics is not None:
        metrics.histogram("codegen.generate_ms").observe(
            (time.perf_counter() - t0) * 1000.0
        )
    if content_key is not None:
        _CACHE.put(content_key, gk)
    return gk
