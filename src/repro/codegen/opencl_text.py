"""OpenCL rendering of offload regions.

OpenUH's WHIRL2CUDA/OpenCL tool (paper Figure 2) emits both CUDA and
OpenCL kernels; this is the OpenCL twin of
:mod:`repro.codegen.cuda_text`.  Differences from the CUDA renderer:

* ``__kernel void`` signature with ``__global`` pointer qualifiers
  (``const __global ... restrict`` for read-only arrays);
* thread indices via ``get_group_id``/``get_local_size``/
  ``get_local_id`` (dimension numbers instead of ``.x/.y/.z``).
"""

from __future__ import annotations

from ..ir.stmt import Loop, Region
from ..ir.symbols import SymbolTable
from .cuda_text import CudaRenderer
from .kernelgen import CodegenOptions


class OpenClRenderer(CudaRenderer):
    def render(self) -> str:
        from ..analysis.memspace import referenced_arrays

        arrays = sorted(referenced_arrays(self.region), key=lambda s: s.name)
        params = []
        for sym in arrays:
            const = "const " if sym.is_const else ""
            restrict = " restrict" if sym.is_restrict or sym.is_const else ""
            params.append(f"{const}__global {sym.array.elem}*{restrict} {sym.name}")
        scalar_params = sorted(
            {
                s.name
                for s in self.symtab
                if not s.is_array and s.kind.value == "param"
            }
        )
        params += [f"{self.symtab.require(n).stype} {n}" for n in scalar_params]
        self._lines.append(f"__kernel void {self.name}({', '.join(params)})")
        self._lines.append("{")
        for stmt in self.region.body:
            self._stmt(stmt)
        self._lines.append("}")
        return "\n".join(self._lines)

    def _parallel_loop(self, loop: Loop) -> None:
        axis = min(self._axis, 2)
        self._axis += 1
        var = loop.var.name
        d = loop.directive
        if d is not None and d.vector is not None:
            gid = (
                f"get_group_id({axis}) * get_local_size({axis}) + "
                f"get_local_id({axis})"
            )
        else:
            gid = f"get_group_id({axis})"
        step = f" * {loop.step}" if loop.step != 1 else ""
        from ..ir.printer import format_expr

        self._emit(f"int {var} = {format_expr(loop.init)} + ({gid}){step};")
        self._emit(f"if ({var} {loop.cond_op} {format_expr(loop.bound)}) {{")
        self._indent += 1
        for s in loop.body:
            self._stmt(s)
        self._indent -= 1
        self._emit("}")
        self._axis -= 1


def render_opencl(
    region: Region,
    symtab: SymbolTable,
    options: CodegenOptions | None = None,
    name: str = "kernel_region",
) -> str:
    """Render one offload region as OpenCL source text."""
    return OpenClRenderer(region, symtab, options, name).render()
