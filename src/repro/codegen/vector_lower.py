"""Lowering plan for the vectorized execution engine.

Decides, statically, which ``acc parallel`` loops of a kernel function can
be turned into *array axes* by :mod:`repro.gpu.vector_exec` — i.e. executed
as one batched NumPy operation per statement instead of one Python
iteration at a time — and which must stay sequential, with a recorded
reason.  The plan is purely advisory about *performance*: the engine keeps
bit-for-bit equality with the scalar interpreter by construction (it runs
on array copies and falls back to the interpreter on anything unexpected),
but a wrong "axis" decision here would silently reorder memory traffic, so
every rule below is conservative.

A loop may become an axis only when all of the following hold:

* its directive maps it onto the GPU thread topology (``is_parallel``) and
  carries no ``reduction`` clause (vectorizing a reduction would reorder
  floating-point arithmetic);
* every scalar assigned in its body is written before it is read on every
  path (privatizable — SAFARA/unroll temporaries qualify because the
  transformations insert ``LocalDecl`` initialisers), and none of those
  scalars is consumed *after* the loop before being rewritten (the scalar
  interpreter leaks the final iteration's value; a lane-varying final value
  is not representable as one scalar);
* every array it writes is provably free of cross-lane aliasing under the
  whole axis set, by one of three arguments:

  1. **axis alignment** — every access to the array keeps one dedicated
     subscript dimension per axis variable, identical across all accesses
     (``sxx[k][j][i]`` under axes ``j``, ``i``); distinct lanes can then
     never touch the same element;
  2. **lattice disjointness** — for each pair of references some dimension
     differs by a constant that is not a multiple of the gcd of the
     per-variable strides (``frc[3*i-2]`` vs ``frc[3*i-1]``: offsets 1
     apart on a stride-3 lattice can never coincide), a disproof
     :func:`repro.analysis.reuse.iteration_distance` cannot make because
     the offset/stride ratio is fractional;
  3. **write-only last-wins** — the array is never read in the body and is
     written through a single lane-determined reference executing in a
     lane-uniform context (no lane-varying ``If`` guard or trip count):
     NumPy fancy-index assignment applies colliding updates in C order of
     the lane axes, which is exactly the scalar interpreter's iteration
     order, so duplicate writes resolve to the same final value;
  4. **symbolic delinearization** — hand-linearised pointer subscripts
     like ``(k*ny + j)*nx + i`` are recovered as mixed-radix digit vectors
     ``(k, j, i)`` by matching each variable's symbolic stride against the
     extents its loop bounds prove (``1 <= i <= nx-2`` fits inside radix
     ``nx``).  The decomposition makes the flat offset *injective* in the
     digits, so two references overlap only when every digit agrees; if
     all references share the structure and agree on the axis digits,
     any overlap is confined to a single lane, where batching preserves
     the scalar program order.

The cross-lane perspective matters because the per-loop dependence test in
:mod:`repro.analysis.dependence` compares two references *at the same
values of all other loop variables* (the ``(=, ..., =)`` direction) —
sound for deciding whether one loop's iterations commute, but blind to
collisions like ``a[i+j]`` hit from different ``(i, j)`` pairs once both
loops become axes of one batched operation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.subscripts import AffineForm, Monomial, affine_of, subscript_forms
from ..ir.expr import ArrayRef, Expr, VarRef, array_refs, scalar_reads
from ..ir.module import KernelFunction
from ..obs.tracer import span as _span
from ..ir.stmt import (
    Assign,
    If,
    LocalDecl,
    Loop,
    Region,
    Stmt,
    loops_in,
    stmt_exprs,
    walk_stmts,
)
from ..ir.symbols import Symbol, SymbolKind

#: Loop execution modes chosen by the planner.
AXIS = "axis"
SEQ = "seq"


@dataclass(slots=True)
class LoopPlan:
    """The planner's verdict for one loop."""

    loop_id: int
    var: str
    mode: str  # AXIS | SEQ
    #: Why a *parallel-directive* loop was demoted to sequential execution
    #: (``None`` for axis loops and for loops that are sequential anyway).
    reason: str | None = None


@dataclass(slots=True)
class RegionPlan:
    region_id: int
    loops: list[LoopPlan] = field(default_factory=list)

    @property
    def axis_loops(self) -> list[LoopPlan]:
        return [l for l in self.loops if l.mode == AXIS]

    @property
    def demoted(self) -> list[LoopPlan]:
        return [l for l in self.loops if l.reason is not None]


@dataclass(slots=True)
class KernelPlan:
    """Vectorization plan for a whole kernel function."""

    function: str
    regions: list[RegionPlan] = field(default_factory=list)
    by_loop_id: dict[int, LoopPlan] = field(default_factory=dict)

    @property
    def has_axes(self) -> bool:
        return any(r.axis_loops for r in self.regions)

    @property
    def demotion_reasons(self) -> list[str]:
        out = []
        for r in self.regions:
            out.extend(l.reason for l in r.demoted if l.reason)
        return out

    def mode_of(self, loop: Loop) -> str:
        plan = self.by_loop_id.get(loop.loop_id)
        return plan.mode if plan is not None else SEQ


# ---------------------------------------------------------------------------
# Scalar discipline: write-before-read classification
# ---------------------------------------------------------------------------


def _expr_reads(e: Expr, name: str) -> bool:
    return any(v.sym.name == name for v in scalar_reads(e))


def _scan_access(stmts: list[Stmt], name: str) -> str | None:
    """How ``stmts`` first touch scalar ``name``:

    * ``'read'`` — a read may observe the value from before ``stmts``;
    * ``'write'`` — a write definitely happens before any such read;
    * ``'maybe'`` — a write may happen (conditional branch, loop body that
      could run zero times), and no read observes prior state;
    * ``None`` — untouched.
    """
    state: str | None = None
    for stmt in stmts:
        eff = _stmt_access(stmt, name)
        if eff == "read":
            return "read"
        if eff == "write":
            return "write"
        if eff == "maybe":
            state = "maybe"
    return state


def _stmt_access(stmt: Stmt, name: str) -> str | None:
    if isinstance(stmt, Assign):
        if _expr_reads(stmt.value, name):
            return "read"
        if isinstance(stmt.target, ArrayRef):
            if any(_expr_reads(i, name) for i in stmt.target.indices):
                return "read"
            return None
        return "write" if stmt.target.sym.name == name else None
    if isinstance(stmt, LocalDecl):
        if stmt.init is not None and _expr_reads(stmt.init, name):
            return "read"
        if stmt.sym.name == name:
            # An uninitialised decl keeps any pre-existing value
            # (``setdefault``) — that observes prior state.
            return "write" if stmt.init is not None else "read"
        return None
    if isinstance(stmt, If):
        if _expr_reads(stmt.cond, name):
            return "read"
        then = _scan_access(stmt.then_body, name)
        other = _scan_access(stmt.else_body, name)
        if "read" in (then, other):
            return "read"
        if then == "write" and other == "write":
            return "write"
        return "maybe" if (then or other) else None
    if isinstance(stmt, Loop):
        if _expr_reads(stmt.init, name) or _expr_reads(stmt.bound, name):
            return "read"
        if stmt.var.name == name:
            return "maybe"  # rebound by the header unless zero trips
        body = _scan_access(stmt.body, name)
        if body == "read":
            return "read"
        return "maybe" if body else None  # body may run zero times
    if isinstance(stmt, Region):
        return _scan_access(stmt.body, name)
    return None


def _assigned_scalars(stmts: list[Stmt]) -> set[str]:
    """Names of scalars assigned (``Assign`` target or ``LocalDecl``)
    anywhere under ``stmts``."""
    out: set[str] = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, Assign) and isinstance(stmt.target, VarRef):
            out.add(stmt.target.sym.name)
        elif isinstance(stmt, LocalDecl):
            out.add(stmt.sym.name)
    return out


def _check_scalars(loop: Loop) -> str | None:
    """Privatizability of every scalar the loop body assigns."""
    for name in sorted(_assigned_scalars(loop.body)):
        if _scan_access(loop.body, name) == "read":
            return f"scalar '{name}' carried across iterations"
    return None


def _check_escapes(loop: Loop, after: list[list[Stmt]]) -> str | None:
    """The scalar interpreter leaks each private's final-iteration value
    past the loop; per-lane finals cannot be represented in one scalar, so
    any later *read* before a definite rewrite demotes the loop.  ``after``
    is the execution-ordered continuation: the suffix of each enclosing
    statement list, with enclosing loop bodies re-entered."""
    assigned = _assigned_scalars(loop.body)
    if not assigned:
        return None
    for name in sorted(assigned):
        for stmts in after:
            access = _scan_access(stmts, name)
            if access == "read":
                return f"private scalar '{name}' read after the loop"
            if access == "write":
                break
    return None


# ---------------------------------------------------------------------------
# Array safety under a joint axis set
# ---------------------------------------------------------------------------


def _expr_lane_uniform(e: Expr, nonuniform: set[str]) -> bool:
    """The expression's value is the same on every active lane: no array
    loads (element values are lane-dependent in general) and no scalars or
    loop variables known to vary per lane."""
    if array_refs(e):
        return False
    return all(v.sym.name not in nonuniform for v in scalar_reads(e))


def _collect_accesses(
    stmts: list[Stmt], nonuniform: set[str] | None = None
) -> tuple[dict[Symbol, list[tuple[ArrayRef, bool]]], dict[Symbol, list[ArrayRef]]]:
    """(writes, reads) array references under ``stmts``, keyed by symbol.

    The subscript expressions of a write target are *reads* of whatever
    arrays they mention; the element itself is the write.  Each write is
    paired with a *uniform-context* flag: True when every enclosing ``If``
    condition and every enclosing loop's trip count (within ``stmts``) is
    identical across lanes, so each engine step either writes on all lanes
    or on none — the precondition for the lane-determined last-wins
    argument.  ``nonuniform`` seeds the lane-varying names (axis variables
    and recomputed scalars).
    """
    writes: dict[Symbol, list[tuple[ArrayRef, bool]]] = {}
    reads: dict[Symbol, list[ArrayRef]] = {}
    nonuniform = set(nonuniform or ())

    def add_reads(e: Expr) -> None:
        for ref in array_refs(e):
            reads.setdefault(ref.sym, []).append(ref)

    def walk(stmts: list[Stmt], ctx_ok: bool, nonuni: set[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, Assign):
                if isinstance(stmt.target, ArrayRef):
                    writes.setdefault(stmt.target.sym, []).append(
                        (stmt.target, ctx_ok)
                    )
                    for idx in stmt.target.indices:
                        add_reads(idx)
                add_reads(stmt.value)
            elif isinstance(stmt, LocalDecl):
                if stmt.init is not None:
                    add_reads(stmt.init)
            elif isinstance(stmt, If):
                add_reads(stmt.cond)
                sub_ok = ctx_ok and _expr_lane_uniform(stmt.cond, nonuni)
                walk(stmt.then_body, sub_ok, nonuni)
                walk(stmt.else_body, sub_ok, nonuni)
            elif isinstance(stmt, Loop):
                add_reads(stmt.init)
                add_reads(stmt.bound)
                uniform = _expr_lane_uniform(
                    stmt.init, nonuni
                ) and _expr_lane_uniform(stmt.bound, nonuni)
                child_nonuni = nonuni if uniform else nonuni | {stmt.var.name}
                walk(stmt.body, ctx_ok and uniform, child_nonuni)
            elif isinstance(stmt, Region):
                walk(stmt.body, ctx_ok, nonuni)

    walk(stmts, True, nonuniform)
    return writes, reads


def _uniform_symbols_only(
    form: AffineForm, axis_vars: list[Symbol], varying: set[str]
) -> bool:
    """True when the form's value is identical on every lane: no loop
    variables of the nest under analysis, no axis variables, and no scalars
    recomputed inside loop bodies (those take lane-dependent values)."""
    for s in form.symbols():
        if s in axis_vars or s.name in varying:
            return False
        if s.kind is SymbolKind.LOOPVAR:
            # A loop variable of the nest varies per lane or per shared
            # sequential step; only *enclosing* sequential vars are uniform
            # and those are excluded by the callers' `steps` handling.
            return False
    return True


def _axis_aligned(
    refs: list[ArrayRef], axis_vars: list[Symbol], varying: set[str]
) -> bool:
    """Each axis variable owns one dedicated subscript dimension, with an
    identical form ``c*v + uniform`` across every access."""
    all_forms = [subscript_forms(r) for r in refs]
    if not all_forms or any(f is None for f in all_forms):
        return False
    ndim = len(all_forms[0])
    if any(len(f) != ndim for f in all_forms):
        return False
    used: set[int] = set()
    for var in axis_vars:
        choice = None
        for d in range(ndim):
            if d in used:
                continue
            f0 = all_forms[0][d]
            if any(forms[d] != f0 for forms in all_forms[1:]):
                continue
            coeff = f0.linear_coefficient(var)
            if coeff is None or not coeff.is_constant or coeff.const == 0:
                continue
            rest = f0 - AffineForm.variable(var).scale(coeff.const)
            if not _uniform_symbols_only(rest, axis_vars, varying):
                continue
            choice = d
            break
        if choice is None:
            return False
        used.add(choice)
    return True


def _lane_determined(
    ref: ArrayRef, axis_vars: list[Symbol], varying: set[str]
) -> bool:
    """The element a reference touches is a function of the lane alone
    (axis variables and launch-uniform symbols) — not of sequential loop
    variables or recomputed scalars.

    This is what makes duplicate-write arguments sound: a batched store
    resolves same-statement collisions in C order of the lane axes (the
    scalar iteration order), but a collision *across* steps of an enclosing
    or nested sequential loop would be resolved step-major by the vector
    engine and lane-major by the scalar interpreter.  When the subscript is
    lane-determined, every step rewrites the same lane→element map, so the
    winning lane — and with it the winning value's iteration point — agrees.

    The argument additionally needs the write to execute on *all* lanes at
    every step: under a lane-varying ``If`` or a loop with lane-varying
    trip counts, some steps write only on some lanes, and the last step
    that touches an element need not involve the scalar order's winning
    lane.  The caller enforces that via the uniform-context flag from
    :func:`_collect_accesses`.
    """
    forms = subscript_forms(ref)
    if forms is None:
        return False
    for f in forms:
        for s in f.symbols():
            if s in axis_vars:
                continue
            if s.name in varying or s.kind is SymbolKind.LOOPVAR:
                return False
    return True


def _pair_disjoint(
    a: ArrayRef,
    b: ArrayRef,
    steps: dict[Symbol, int],
    varying: set[str],
) -> bool:
    """Can references ``a`` and ``b`` *ever* touch the same element, for
    any pair of iteration points?  True when provably not.

    Looks for a dimension where both subscripts have identical variable
    parts and a constant offset difference that is not a multiple of the
    gcd of the per-variable lattice strides (coefficient × loop step); the
    integer lattice the variables span can then never bridge the gap.
    """
    fa = subscript_forms(a)
    fb = subscript_forms(b)
    if fa is None or fb is None or len(fa) != len(fb):
        return False
    for da, db in zip(fa, fb):
        diff = da - db
        if not diff.is_constant or diff.const == 0:
            continue
        lattice = 0
        provable = True
        for sym in set(da.symbols()) | set(db.symbols()):
            ca = da.linear_coefficient(sym)
            cb = db.linear_coefficient(sym)
            if ca is None or cb is None or not ca.is_constant or not cb.is_constant:
                provable = False
                break
            step = steps.get(sym)
            if step is not None:
                # Iteration variable: contributes coefficient×step to the
                # lattice of reachable offset differences.
                for c in (ca.const, cb.const):
                    if c:
                        lattice = math.gcd(lattice, abs(c * step))
            elif sym.name in varying:
                # A recomputed scalar takes lane-dependent values; it does
                # not cancel between the two sides.
                provable = False
                break
            # Uniform symbols cancel (diff is constant, so coefficients
            # agree) — no lattice contribution.
        if not provable:
            continue
        if lattice == 0 or diff.const % lattice != 0:
            return True
    return False


# ---------------------------------------------------------------------------
# Symbolic delinearization of flat pointer subscripts
# ---------------------------------------------------------------------------


def _var_extent(loop: Loop) -> tuple[int, AffineForm] | None:
    """Inclusive symbolic range of ``loop.var``: ``(lo, max_form)`` with
    ``lo`` a non-negative integer and the maximum an affine form over
    uniform symbols.  ``None`` when the bounds don't fit that shape."""
    if loop.step == 0:
        return None
    init = affine_of(loop.init)
    bound = affine_of(loop.bound)
    if init is None or bound is None:
        return None
    if loop.step > 0:
        if loop.cond_op not in ("<", "<=") or not init.is_constant:
            return None
        lo = init.const
        max_form = bound - AffineForm.constant(1) if loop.cond_op == "<" else bound
    else:
        if loop.cond_op not in (">", ">=") or not bound.is_constant:
            return None
        lo = bound.const + 1 if loop.cond_op == ">" else bound.const
        max_form = init
    if lo < 0:
        return None
    return lo, max_form


def _single_monomial(form: AffineForm) -> tuple[int, Monomial] | None:
    """``(c, syms)`` for a one-term form with positive coefficient."""
    if len(form.terms) != 1:
        return None
    m, c = form.terms[0]
    return (c, m) if c > 0 else None


def _monomial_ratio(
    num: tuple[int, Monomial], den: tuple[int, Monomial]
) -> AffineForm | None:
    """``num / den`` as an affine form when the division is exact."""
    cn, mn = num
    cd, md = den
    if cn % cd != 0:
        return None
    rest = list(mn)
    for s in md:
        if s not in rest:
            return None
        rest.remove(s)
    return AffineForm(((tuple(sorted(rest, key=id)), cn // cd),))


def _delinearize(
    ref: ArrayRef,
    loops_by_name: dict[str, Loop],
    varying: set[str],
) -> list[tuple[str, tuple[int, Monomial], int]] | None:
    """Recover a flat subscript as mixed-radix digits.

    Returns levels ``(var_name, stride_monomial, offset)`` sorted from the
    fastest-varying stride upward, with every level below the top proven to
    fit inside the radix implied by the next stride (digit ``v + offset``
    stays in ``[0, stride_{l+1}/stride_l)`` for all values the loop bounds
    allow).  The flat offset is then *injective* in the digit vector.
    ``None`` when the subscript doesn't delinearize."""
    forms = subscript_forms(ref)
    if forms is None or len(forms) != 1:
        return None
    f = forms[0]
    loop_syms: list[Symbol] = []
    for s in f.symbols():
        if s.name in loops_by_name:
            loop_syms.append(s)
        elif s.name in varying or s.kind is SymbolKind.LOOPVAR:
            return None  # lane/step-dependent value we cannot bound
    if not loop_syms:
        return None
    coeffs: dict[Symbol, tuple[int, Monomial]] = {}
    rem = f
    for s in loop_syms:
        stride = f.linear_coefficient(s)
        if stride is None:
            return None
        for cs in stride.symbols():
            if (
                cs.name in loops_by_name
                or cs.name in varying
                or cs.kind is SymbolKind.LOOPVAR
            ):
                return None  # non-uniform stride
        mono = _single_monomial(stride)
        if mono is None:
            return None
        coeffs[s] = mono
        prod = stride.multiply(AffineForm.variable(s))
        if prod is None:
            return None
        rem = rem - prod
    # Fastest stride first; ties (equal strides ⇒ non-injective) rejected.
    order = sorted(coeffs, key=lambda s: (len(coeffs[s][1]), coeffs[s][0]))
    offsets = {s: 0 for s in order}
    # Fold the residual constant part into per-level digit offsets: every
    # term must be an exact integer multiple of some level's stride.
    for m, c in rem.terms:
        for s in order:
            cs, ms = coeffs[s]
            if m == ms and c % cs == 0:
                offsets[s] += c // cs
                break
        else:
            return None
    levels: list[tuple[str, tuple[int, Monomial], int]] = []
    for pos, s in enumerate(order):
        rng = _var_extent(loops_by_name[s.name])
        if rng is None:
            return None
        lo, max_form = rng
        d = offsets[s]
        if lo + d < 0:
            return None
        if pos + 1 < len(order):
            radix = _monomial_ratio(coeffs[order[pos + 1]], coeffs[s])
            if radix is None:
                return None
            over = max_form + AffineForm.constant(d) - radix
            if not over.is_constant or over.const >= 0:
                return None
        levels.append((s.name, coeffs[s], d))
    return levels


def _delin_safe(
    wrefs: list[ArrayRef],
    rrefs: list[ArrayRef],
    loops_by_name: dict[str, Loop],
    axis_names: set[str],
    varying: set[str],
) -> bool:
    """All references delinearize with one shared level structure, every
    axis variable owns a level, and all references agree on the axis-level
    digit offsets.  Injectivity of the mixed-radix decomposition then
    means any two overlapping references have *equal* digits everywhere —
    in particular equal axis digits, i.e. they belong to the same lane,
    where batched execution preserves the scalar program order."""
    if not loops_by_name:
        return False
    delins = [
        _delinearize(r, loops_by_name, varying) for r in wrefs + rrefs
    ]
    if any(d is None for d in delins):
        return False
    base = delins[0]
    structure = [(var, stride) for var, stride, _ in base]
    for d in delins[1:]:
        if [(var, stride) for var, stride, _ in d] != structure:
            return False
    level_vars = {var for var, _ in structure}
    if not axis_names <= level_vars:
        return False  # a missing axis digit means cross-lane collisions
    for pos, (var, _stride) in enumerate(structure):
        if var in axis_names:
            if any(d[pos][2] != base[pos][2] for d in delins[1:]):
                return False
    return True


def _dedup(refs: list[ArrayRef]) -> list[ArrayRef]:
    out: list[ArrayRef] = []
    for r in refs:
        if r not in out:
            out.append(r)
    return out


def _check_arrays(
    loop: Loop,
    axis_vars: list[Symbol],
    varying: set[str],
    loops_by_name: dict[str, Loop] | None = None,
) -> str | None:
    """Cross-lane aliasing check for every array written in the loop,
    under the joint lane space ``axis_vars`` (the loop's own variable, its
    axis ancestors, and every nested loop assumed to become an axis).
    ``loops_by_name`` maps every in-scope loop variable (ancestors, the
    loop itself, nested loops) to its ``Loop`` for bound-based reasoning;
    it must be omitted when variable names are ambiguous."""
    axis_names = {v.name for v in axis_vars}
    writes, reads = _collect_accesses(loop.body, axis_names | varying)
    steps: dict[Symbol, int] = {}
    for var in axis_vars:
        steps[var] = 1  # conservative default; gcd(x, |c|) only shrinks
    for inner in loops_in(loop.body):
        steps[inner.var] = inner.step
    steps[loop.var] = loop.step
    for sym in sorted(writes, key=lambda s: s.name):
        wrefs = _dedup([ref for ref, _ in writes[sym]])
        # A ref is uniform-context only if *every* occurrence of it is.
        wctx = {ref: True for ref in wrefs}
        for ref, ctx_ok in writes[sym]:
            wctx[ref] = wctx[ref] and ctx_ok
        rrefs = _dedup(reads.get(sym, []))
        if _axis_aligned(wrefs + rrefs, axis_vars, varying):
            continue
        if loops_by_name is not None and _delin_safe(
            wrefs, rrefs, loops_by_name, axis_names, varying
        ):
            continue

        # A ref may collide with *itself* across lanes (or across steps of
        # a sequential loop); harmless for a pure write when lane-determined
        # (last-wins resolves in lane order, every step the same way) or
        # per-ref axis-aligned (injective — no collision at all).
        def injective(r: ArrayRef) -> bool:
            return _axis_aligned([r], axis_vars, varying)

        def self_safe(r: ArrayRef) -> bool:
            if wctx[r] and _lane_determined(r, axis_vars, varying):
                return True
            return injective(r)

        pairs_disjoint = all(
            _pair_disjoint(wrefs[i], wrefs[j], steps, varying)
            for i in range(len(wrefs))
            for j in range(i + 1, len(wrefs))
        )
        if not rrefs:
            if pairs_disjoint and all(self_safe(r) for r in wrefs):
                continue
            return f"writes to '{sym.name}' may collide across lanes"
        # Read+write array.  Each read must either be structurally equal to
        # an *injective* write (the lane reads exactly the element it
        # writes, so batching preserves the lane's program order on it) or
        # be provably disjoint from every write (it never observes one).
        def read_safe(r: ArrayRef) -> bool:
            if r in wrefs:
                return injective(r)
            return all(_pair_disjoint(r, w, steps, varying) for w in wrefs)

        if (
            pairs_disjoint
            and all(self_safe(w) for w in wrefs)
            and all(injective(w) for w in wrefs if w in rrefs)
            and all(read_safe(r) for r in rrefs)
        ):
            continue
        return f"read/write overlap on '{sym.name}' across lanes"
    return None


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------


def plan_kernel(fn: KernelFunction) -> KernelPlan:
    """Build the vectorization plan for every region of ``fn``.

    Two phases.  First, per-loop checks that do not depend on the axis set
    (directive, scalar privatizability, escapes) select the *candidate*
    loops.  Then the array-aliasing check runs to a fixpoint under the
    optimistic assumption that every candidate in a loop's nest becomes an
    axis: a candidate that fails is demoted, which shrinks the assumed lane
    space of the others, so their checks re-run until nothing changes.
    (Demotion only removes lane symbols, making the remaining proofs
    strictly harder, so the iteration converges.)
    """
    with _span("vector.plan", kernel=fn.name) as _sp:
        plan = _plan_kernel(fn)
        _sp.set(
            loops=len(plan.by_loop_id),
            axes=sum(
                1 for lp in plan.by_loop_id.values() if lp.mode == AXIS
            ),
            demoted=sum(
                1 for lp in plan.by_loop_id.values() if lp.reason
            ),
        )
    return plan


def _plan_kernel(fn: KernelFunction) -> KernelPlan:
    plan = KernelPlan(function=fn.name)
    # (loop, parent loop, RegionPlan, region varying-set, continuation)
    records: list[tuple[Loop, Loop | None, RegionPlan, set[str], list]] = []

    def visit(
        stmts: list[Stmt],
        parent: Loop | None,
        region: RegionPlan | None,
        varying: set[str],
        after: list[list[Stmt]],
    ) -> None:
        for pos, stmt in enumerate(stmts):
            suffix = [stmts[pos + 1 :]] + after
            if isinstance(stmt, Region):
                rp = RegionPlan(region_id=stmt.region_id)
                plan.regions.append(rp)
                # Scalars recomputed inside any loop of the region take
                # lane- or step-dependent values; everything else that
                # appears in a subscript is uniform across one launch.
                region_varying = set()
                for l in loops_in(stmt.body):
                    region_varying |= _assigned_scalars(l.body)
                visit(stmt.body, None, rp, region_varying, suffix)
            elif isinstance(stmt, Loop):
                records.append((stmt, parent, region, varying, suffix))
                # Re-enter the loop body in the continuation: statements at
                # its head run again after any inner statement completes.
                visit(stmt.body, stmt, region, varying, [stmt.body] + suffix)
            elif isinstance(stmt, If):
                visit(stmt.then_body, parent, region, varying, suffix)
                visit(stmt.else_body, parent, region, varying, suffix)

    visit(fn.body, None, None, set(), [])

    parent_of: dict[int, Loop | None] = {}
    candidates: dict[int, tuple[Loop, RegionPlan, set[str]]] = {}
    for loop, parent, region, varying, after in records:
        parent_of[loop.loop_id] = parent
        lp = LoopPlan(loop_id=loop.loop_id, var=loop.var.name, mode=SEQ)
        plan.by_loop_id[lp.loop_id] = lp
        if region is not None:
            region.loops.append(lp)
        if region is None or loop.is_seq:
            continue
        reason = None
        if loop.directive is not None and loop.directive.reductions:
            names = ", ".join(r.var for r in loop.directive.reductions)
            reason = f"reduction clause on '{names}' (FP evaluation order)"
        reason = reason or _check_scalars(loop)
        reason = reason or _check_escapes(loop, after)
        if reason is not None:
            lp.reason = reason
        else:
            candidates[loop.loop_id] = (loop, region, varying)

    def ancestors(loop_id: int) -> list[Loop]:
        out = []
        p = parent_of.get(loop_id)
        while p is not None:
            out.append(p)
            p = parent_of.get(p.loop_id)
        return out

    changed = True
    while changed:
        changed = False
        for loop_id, (loop, region, varying) in list(candidates.items()):
            axis_vars = [
                a.var for a in ancestors(loop_id) if a.loop_id in candidates
            ]
            axis_vars.append(loop.var)
            axis_vars += [
                inner.var
                for inner in loops_in(loop.body)
                if inner.loop_id in candidates
            ]
            scope = ancestors(loop_id) + [loop] + list(loops_in(loop.body))
            loops_by_name: dict[str, Loop] | None = {}
            for l in scope:
                if l.var.name in loops_by_name:
                    loops_by_name = None  # ambiguous variable names
                    break
                loops_by_name[l.var.name] = l
            reason = _check_arrays(loop, axis_vars, varying, loops_by_name)
            if reason is not None:
                plan.by_loop_id[loop_id].reason = reason
                del candidates[loop_id]
                changed = True

    for loop_id in candidates:
        plan.by_loop_id[loop_id].mode = AXIS
    return plan
