"""VIR — a PTX-like virtual ISA.

The paper's key observation about GPU toolchains (Section III-B.2): the
compiler emits a *virtual* ISA with unlimited pseudo-registers ("NVIDIA
uses PTX ... There are unlimited pseudo register numbers available"); only
the vendor's closed-source assembler assigns hardware registers.  VIR
plays the role of PTX here, and :mod:`repro.gpu.registers` plays the role
of ``ptxas``.

Instructions are structured (loops and conditionals are bracketed by
marker instructions rather than arbitrary branches), which keeps liveness
analysis exact and matches the structured code OpenACC regions lower to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..analysis.coalescing import AccessInfo
from ..analysis.memspace import MemSpace
from ..ir.stmt import Loop
from ..ir.symbols import Symbol


@dataclass(eq=False, slots=True)
class VReg:
    """A virtual register (identity equality).

    ``bits`` is 32 or 64; a 64-bit vreg consumes two hardware registers
    when allocated (Section IV-B).
    """

    id: int
    bits: int = 32
    hint: str = ""

    @property
    def units(self) -> int:
        """32-bit register units consumed."""
        return self.bits // 32

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        suffix = "d" if self.bits == 64 else ""
        label = f"%{self.hint}" if self.hint else f"%r{self.id}"
        return f"{label}{suffix}"


class Op(enum.Enum):
    # Data movement / arithmetic
    MOV = "mov"
    MOV_IMM = "mov_imm"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAD = "mad"  # dst = a*b + c
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    CVT = "cvt"  # width/type conversion
    SETP = "setp"  # compare -> predicate (we model predicates as regs)
    SELP = "selp"  # select
    AND = "and"
    OR = "or"
    NOT = "not"
    MATH = "math"  # sqrt/exp/... (attr 'func')

    # Parameters / special registers
    LD_PARAM = "ld_param"
    LD_DOPE = "ld_dope"  # dope-vector field (lower bound / length)
    TID = "tid"
    CTAID = "ctaid"
    NTID = "ntid"

    # Memory
    LD = "ld"  # global / readonly load
    ST = "st"  # global store

    # Synchronisation
    BAR = "bar"  # __syncthreads()

    # Structure markers
    LOOP_BEGIN = "loop_begin"
    LOOP_END = "loop_end"
    IF_BEGIN = "if_begin"
    IF_ELSE = "if_else"
    IF_END = "if_end"
    RET = "ret"


#: Ops that read memory (for statistics/timing).
MEMORY_OPS = frozenset({Op.LD, Op.ST})
#: Marker ops that do not execute.
MARKER_OPS = frozenset(
    {Op.LOOP_BEGIN, Op.LOOP_END, Op.IF_BEGIN, Op.IF_ELSE, Op.IF_END, Op.RET}
)


@dataclass(slots=True)
class Instr:
    """One VIR instruction."""

    op: Op
    dst: VReg | None = None
    #: Second destination for vector (two-element) loads.
    dst2: VReg | None = None
    srcs: tuple[VReg, ...] = ()
    imm: int | float | None = None
    func: str = ""  # MATH function name / SETP comparison / ALU variant
    is_float: bool = False
    # -- memory attributes -------------------------------------------------
    array: Symbol | None = None
    space: MemSpace | None = None
    access: AccessInfo | None = None
    width_bits: int = 32
    dope_dim: int = -1
    dope_kind: str = ""  # 'lb' | 'len'
    # -- structure attributes ------------------------------------------------
    loop: Loop | None = None
    comment: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = [self.op.value]
        if self.func:
            parts.append(f".{self.func}")
        if self.dst is not None:
            parts.append(repr(self.dst))
        if self.srcs:
            parts.append(", ".join(repr(s) for s in self.srcs))
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.array is not None:
            parts.append(f"[{self.array.name}]")
        if self.comment:
            parts.append(f"  // {self.comment}")
        return " ".join(parts)


@dataclass(slots=True)
class LaunchConfig:
    """Kernel launch topology derived from gang/vector clauses.

    ``block_dims``/``grid_dims`` hold the per-axis sizes; symbolic sizes
    (from runtime bounds) are expressions evaluated by the timing model
    against a problem-size environment.
    """

    threads_per_block: int = 128
    #: (loop, axis) pairs: which IR loops map to which thread axes.
    vector_loops: list[Loop] = field(default_factory=list)
    gang_loops: list[Loop] = field(default_factory=list)

    def total_threads(self, env: dict[str, int]) -> int:
        total = 1
        for loop in self.vector_loops + self.gang_loops:
            trips = loop.trip_count(env)
            if trips is None:
                raise ValueError(
                    f"cannot evaluate trip count of loop {loop.var.name}"
                )
            total *= max(trips, 1)
        return total


@dataclass(slots=True)
class VirKernel:
    """The virtual-ISA form of one offload region."""

    name: str
    instrs: list[Instr] = field(default_factory=list)
    launch: LaunchConfig = field(default_factory=LaunchConfig)
    vreg_count: int = 0
    #: Static shared memory per block (reduction scratch).
    smem_bytes: int = 0

    def dump(self) -> str:
        """Readable listing (indentation mirrors structure)."""
        lines = []
        depth = 0
        for ins in self.instrs:
            if ins.op in (Op.LOOP_END, Op.IF_END, Op.IF_ELSE):
                depth = max(0, depth - 1)
            lines.append("  " * depth + repr(ins))
            if ins.op in (Op.LOOP_BEGIN, Op.IF_BEGIN, Op.IF_ELSE):
                depth += 1
        return "\n".join(lines)

    def count(self, op: Op) -> int:
        return sum(1 for i in self.instrs if i.op is op)


class VRegAllocator:
    """Hands out fresh virtual registers (unlimited, like PTX)."""

    def __init__(self) -> None:
        self._next = 0

    def fresh(self, bits: int = 32, hint: str = "") -> VReg:
        self._next += 1
        return VReg(id=self._next, bits=bits, hint=hint)

    @property
    def count(self) -> int:
        return self._next
