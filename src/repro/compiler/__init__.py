"""Compiler driver: configurations, the compile session (cache + pass
pipeline + stats), runtime clause guards, and reporting.

:class:`CompilerSession` is the primary API; the free functions
(``compile_source``, ``compile_function``, ``compile_guarded``,
``time_program``) are shims over a module-level default session and keep
their historical behavior.
"""

from .guards import (
    ClauseVerdict,
    ClauseViolation,
    GuardedKernel,
    compile_guarded,
    verify_clauses,
)
from .driver import (
    CompiledKernel,
    CompiledProgram,
    ProgramTiming,
    compile_function,
    compile_source,
    execute_program,
    time_program,
)
from .options import (
    ALL_CONFIGS,
    BASE,
    CARR_KENNEDY,
    CompilerConfig,
    PGI,
    SAFARA_ONLY,
    SMALL,
    SMALL_DIM,
    SMALL_DIM_SAFARA,
    UNROLL_SAFARA,
    VECTOR_SAFARA,
)
from .session import (
    CompileJob,
    CompilerSession,
    compile_many,
    default_session,
)

__all__ = [
    "ALL_CONFIGS",
    "BASE",
    "CARR_KENNEDY",
    "ClauseVerdict",
    "ClauseViolation",
    "CompileJob",
    "CompiledKernel",
    "CompiledProgram",
    "CompilerConfig",
    "CompilerSession",
    "PGI",
    "ProgramTiming",
    "SAFARA_ONLY",
    "SMALL",
    "SMALL_DIM",
    "SMALL_DIM_SAFARA",
    "UNROLL_SAFARA",
    "VECTOR_SAFARA",
    "GuardedKernel",
    "compile_function",
    "compile_guarded",
    "compile_many",
    "default_session",
    "execute_program",
    "verify_clauses",
    "compile_source",
    "time_program",
]
