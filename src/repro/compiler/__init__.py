"""Compiler driver: configurations, the compile pipeline, runtime clause
guards, and reporting."""

from .guards import (
    ClauseVerdict,
    ClauseViolation,
    GuardedKernel,
    compile_guarded,
    verify_clauses,
)
from .driver import (
    CompiledKernel,
    CompiledProgram,
    ProgramTiming,
    compile_function,
    compile_source,
    time_program,
)
from .options import (
    ALL_CONFIGS,
    BASE,
    CARR_KENNEDY,
    CompilerConfig,
    PGI,
    SAFARA_ONLY,
    SMALL,
    SMALL_DIM,
    SMALL_DIM_SAFARA,
    UNROLL_SAFARA,
    VECTOR_SAFARA,
)

__all__ = [
    "ALL_CONFIGS",
    "BASE",
    "CARR_KENNEDY",
    "ClauseVerdict",
    "ClauseViolation",
    "CompiledKernel",
    "CompiledProgram",
    "CompilerConfig",
    "PGI",
    "ProgramTiming",
    "SAFARA_ONLY",
    "SMALL",
    "SMALL_DIM",
    "SMALL_DIM_SAFARA",
    "UNROLL_SAFARA",
    "VECTOR_SAFARA",
    "GuardedKernel",
    "compile_function",
    "compile_guarded",
    "verify_clauses",
    "compile_source",
    "time_program",
]
