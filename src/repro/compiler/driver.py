"""The OpenUH-like compiler driver: result types and the public shims.

Mirrors the paper's Figure 2 pipeline: front end → IR → (optional)
scalar-replacement transformations with assembler feedback → virtual-ISA
code generation → register allocation — and, downstream, the analytic
timing model.

The pipeline itself lives in :mod:`repro.pipeline` (the ``Pass`` /
``PassManager`` abstraction) and is owned by a
:class:`~repro.compiler.session.CompilerSession`; the free functions here
are thin shims over the module-level default session and keep their
historical signatures and behavior.

Because the transformations mutate IR in place, each configuration
compiles from a *fresh* parse of the source (``compile_source``) —
exactly as separate compiler invocations would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.vir import VirKernel
from ..gpu.registers import PtxasInfo
from ..gpu.timing import KernelTiming
from ..ir.module import KernelFunction
from ..esat.optimize import EsatReport
from ..transforms.carr_kennedy import CarrKennedyReport
from ..transforms.autopar import AutoparReport
from ..transforms.licm import LicmReport
from ..transforms.unroll import UnrollReport
from ..transforms.safara import SafaraReport
from .options import BASE, CompilerConfig


@dataclass(slots=True)
class CompiledKernel:
    """One offload region, fully compiled."""

    name: str
    region_id: int
    vir: VirKernel
    ptxas: PtxasInfo
    safara: SafaraReport | None = None
    carr_kennedy: CarrKennedyReport | None = None
    licm: LicmReport | None = None
    autopar: AutoparReport | None = None
    unroll: UnrollReport | None = None
    esat: "EsatReport | None" = None
    backend_compilations: int = 1

    @property
    def registers(self) -> int:
        return self.ptxas.registers


@dataclass(slots=True)
class CompiledProgram:
    """A kernel function compiled under one configuration."""

    function: KernelFunction
    config: CompilerConfig
    kernels: list[CompiledKernel] = field(default_factory=list)

    def kernel(self, name: str) -> CompiledKernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    @property
    def max_registers(self) -> int:
        return max((k.registers for k in self.kernels), default=0)


@dataclass(slots=True)
class ProgramTiming:
    """Timing verdict for a whole compiled program under one problem size."""

    program: CompiledProgram
    kernels: list[KernelTiming] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return sum(k.time_ms for k in self.kernels)


def compile_function(fn: KernelFunction, config: CompilerConfig = BASE) -> CompiledProgram:
    """Deprecated shim: compile every offload region of ``fn`` under
    ``config`` through the default session.

    The function's IR is mutated by the transformations (like a real
    compilation); parse fresh per configuration.
    """
    from .._compat import warn_legacy
    from .session import default_session

    warn_legacy("compile_function", "CompilerSession.compile_function()")
    return default_session().compile_function(fn, config)


def compile_source(
    source: str,
    config: CompilerConfig = BASE,
    *,
    kernel_name: str | None = None,
    filename: str = "<string>",
) -> CompiledProgram:
    """Deprecated shim: parse + lower + compile one kernel function from
    source text through the default session."""
    from .._compat import warn_legacy
    from .session import default_session

    warn_legacy("compile_source", "CompilerSession.compile_source()")
    return default_session().compile_source(
        source, config, kernel_name=kernel_name, filename=filename
    )


def time_program(
    compiled: CompiledProgram,
    env: dict[str, int],
    *,
    launches: dict[str, int] | list[int] | int = 1,
) -> ProgramTiming:
    """Deprecated shim: evaluate the timing model for every kernel of a
    compiled program through the default session.

    ``launches`` is a global launch count, a per-kernel-name map, or a list
    aligned with region order (benchmarks launch hot kernels once per time
    step).
    """
    from .._compat import warn_legacy
    from .session import default_session

    warn_legacy("time_program", "CompilerSession.time_program()")
    return default_session().time_program(compiled, env, launches=launches)


def execute_program(
    fn: KernelFunction,
    args: dict[str, object],
    *,
    executor: str | None = None,
):
    """Run a kernel function functionally through the default session's
    execution engine (vectorized with automatic scalar fallback unless the
    session — or ``executor`` — says otherwise).  Returns
    ``(arrays, stats, info)``."""
    from .session import default_session

    return default_session().execute(fn, args, executor=executor)
