"""The OpenUH-like compiler driver.

Mirrors the paper's Figure 2 pipeline: front end → IR → (optional)
scalar-replacement transformations with assembler feedback → virtual-ISA
code generation → register allocation — and, downstream, the analytic
timing model.

Because the transformations mutate IR in place, each configuration
compiles from a *fresh* parse of the source (``compile_source``) —
exactly as separate compiler invocations would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.kernelgen import generate_kernel
from ..codegen.vir import VirKernel
from ..gpu.registers import PtxasInfo, ptxas_info
from ..gpu.timing import KernelTiming, estimate_time
from ..ir.builder import build_module
from ..ir.module import KernelFunction
from ..lang.parser import parse_program
from ..transforms.carr_kennedy import CarrKennedyReport, apply_carr_kennedy
from ..transforms.autopar import AutoparReport, auto_parallelize
from ..transforms.licm import LicmReport, apply_licm
from ..transforms.unroll import UnrollReport, apply_unrolling
from ..transforms.safara import SafaraReport
from ..feedback.driver import FeedbackCompiler, optimize_region
from .options import BASE, CompilerConfig


@dataclass(slots=True)
class CompiledKernel:
    """One offload region, fully compiled."""

    name: str
    region_id: int
    vir: VirKernel
    ptxas: PtxasInfo
    safara: SafaraReport | None = None
    carr_kennedy: CarrKennedyReport | None = None
    licm: LicmReport | None = None
    autopar: AutoparReport | None = None
    unroll: UnrollReport | None = None
    backend_compilations: int = 1

    @property
    def registers(self) -> int:
        return self.ptxas.registers


@dataclass(slots=True)
class CompiledProgram:
    """A kernel function compiled under one configuration."""

    function: KernelFunction
    config: CompilerConfig
    kernels: list[CompiledKernel] = field(default_factory=list)

    def kernel(self, name: str) -> CompiledKernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)

    @property
    def max_registers(self) -> int:
        return max((k.registers for k in self.kernels), default=0)


def compile_function(fn: KernelFunction, config: CompilerConfig = BASE) -> CompiledProgram:
    """Compile every offload region of ``fn`` under ``config``.

    The function's IR is mutated by the transformations (like a real
    compilation); parse fresh per configuration.
    """
    program = CompiledProgram(function=fn, config=config)
    codegen_opts = config.codegen_options()
    for index, region in enumerate(fn.regions(), start=1):
        name = f"{fn.name}_k{index}"
        safara_report: SafaraReport | None = None
        ck_report: CarrKennedyReport | None = None
        compilations = 1
        # kernels-construct lowering: map undirected loops automatically
        # (paper Section II-C; OpenUH reference [16]).
        autopar_report = auto_parallelize(region)
        # Baseline global optimisation (WOPT): invariant-load hoisting runs
        # in every configuration.
        licm_report = apply_licm(region, fn.symtab)
        unroll_report: UnrollReport | None = None
        if config.unroll_factor > 1:
            unroll_report = apply_unrolling(
                region, fn.symtab, factor=config.unroll_factor
            )
            # Unrolling may expose new invariants; re-run LICM.
            apply_licm(region, fn.symtab)
        if config.carr_kennedy:
            ck_report = apply_carr_kennedy(
                region,
                fn.symtab,
                register_budget=config.ck_register_budget,
                intra_only=config.ck_intra_only,
            )
        if config.safara:
            safara_report, feedback = optimize_region(
                region,
                fn.symtab,
                options=codegen_opts,
                arch=config.arch,
                register_limit=config.register_limit,
                latency=config.latency or config.arch.latency,
                name=name,
            )
            compilations = feedback.compilations
        vir = generate_kernel(region, fn.symtab, codegen_opts, name=name)
        info = ptxas_info(vir, config.arch, config.register_limit)
        compilations += 1
        program.kernels.append(
            CompiledKernel(
                name=name,
                region_id=region.region_id,
                vir=vir,
                ptxas=info,
                safara=safara_report,
                carr_kennedy=ck_report,
                licm=licm_report,
                autopar=autopar_report,
                unroll=unroll_report,
                backend_compilations=compilations,
            )
        )
    return program


def compile_source(
    source: str,
    config: CompilerConfig = BASE,
    kernel_name: str | None = None,
    filename: str = "<string>",
) -> CompiledProgram:
    """Parse + lower + compile one kernel function from source text."""
    module = build_module(parse_program(source, filename))
    fn = module.functions[0] if kernel_name is None else module.function(kernel_name)
    return compile_function(fn, config)


@dataclass(slots=True)
class ProgramTiming:
    """Timing verdict for a whole compiled program under one problem size."""

    program: CompiledProgram
    kernels: list[KernelTiming] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return sum(k.time_ms for k in self.kernels)


def time_program(
    compiled: CompiledProgram,
    env: dict[str, int],
    launches: dict[str, int] | list[int] | int = 1,
) -> ProgramTiming:
    """Evaluate the timing model for every kernel of a compiled program.

    ``launches`` is a global launch count, a per-kernel-name map, or a list
    aligned with region order (benchmarks launch hot kernels once per time
    step).
    """
    timing = ProgramTiming(program=compiled)
    for idx, ck in enumerate(compiled.kernels):
        if isinstance(launches, int):
            n = launches
        elif isinstance(launches, list):
            n = launches[idx] if idx < len(launches) else 1
        else:
            n = launches.get(ck.name, 1)
        timing.kernels.append(
            estimate_time(
                ck.vir,
                ck.ptxas,
                env,
                arch=compiled.config.arch,
                launches=n,
                issue_scale=compiled.config.issue_efficiency,
            )
        )
    return timing
