"""Runtime clause verification (paper Section IV, final paragraph).

    "Note that in the case where the user provides incorrect information
    inside the proposed clauses, the compiler can generate two versions of
    each kernel: (1) optimized kernel ... (2) unoptimized kernel ...  Also,
    the compiler can generate a segment of code responsible for verifying
    the correctness of the clauses.  At runtime, this segment will be run
    and a decision will be made to execute the optimized or unoptimized
    kernel."

This module implements exactly that scheme: :func:`compile_guarded` lowers
one region twice (clauses honored / ignored), and :func:`verify_clauses`
is the generated "segment" — it checks, against the run-time problem
sizes, that every ``dim`` group's arrays really share their dimensions and
that every ``small`` array really spans fewer than 4 GB.
:func:`select_kernel` then makes the paper's runtime decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.kernelgen import CodegenOptions, generate_kernel
from ..codegen.vir import VirKernel
from ..gpu.arch import GpuArch, KEPLER_K20XM
from ..gpu.registers import PtxasInfo, ptxas_info
from ..ir.stmt import Region
from ..ir.symbols import Dim, Symbol, SymbolTable
from ..transforms.small_clause import SMALL_LIMIT_BYTES


@dataclass(frozen=True, slots=True)
class ClauseViolation:
    """One runtime clause-check failure."""

    clause: str  # 'dim' | 'small'
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.clause}: {self.message}"


@dataclass(slots=True)
class ClauseVerdict:
    violations: list[ClauseViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _dim_value(bound: int | Symbol, env: dict[str, int]) -> int:
    if isinstance(bound, int):
        return bound
    try:
        return int(env[bound.name])
    except KeyError:
        raise KeyError(f"runtime size {bound.name!r} missing from env") from None


def _shape(sym: Symbol, env: dict[str, int]) -> tuple[tuple[int, int], ...]:
    assert sym.array is not None
    return tuple(
        (_dim_value(d.lower, env), _dim_value(d.extent, env)) for d in sym.array.dims
    )


def verify_clauses(
    region: Region, symtab: SymbolTable, env: dict[str, int]
) -> ClauseVerdict:
    """The runtime verification segment: check dim/small against concrete
    problem sizes."""
    verdict = ClauseVerdict()

    for group in region.directive.dim_groups:
        syms = [symtab.require(name) for name in group.arrays]
        shapes = [(s.name, _shape(s, env)) for s in syms]
        first_name, first_shape = shapes[0]
        for name, shape in shapes[1:]:
            if shape != first_shape:
                verdict.violations.append(
                    ClauseViolation(
                        clause="dim",
                        message=(
                            f"arrays {first_name!r} and {name!r} declared to share "
                            f"dimensions but have shapes {first_shape} vs {shape}"
                        ),
                    )
                )
        # Dimension data given in the clause itself (extents/bounds) was
        # already checked structurally at compile time where static; the
        # runtime check above covers the dynamic part (actual shapes).
        if group.dims:
            declared = tuple(
                (
                    spec.lower if isinstance(spec.lower, int) else _dim_value(symtab.require(spec.lower), env),
                    spec.extent if isinstance(spec.extent, int) else _dim_value(symtab.require(spec.extent), env),
                )
                for spec in group.dims
            )
            if declared != first_shape:
                verdict.violations.append(
                    ClauseViolation(
                        clause="dim",
                        message=(
                            f"clause declares bounds {declared} but array "
                            f"{first_name!r} has shape {first_shape}"
                        ),
                    )
                )

    for name in region.directive.small:
        sym = symtab.require(name)
        assert sym.array is not None
        elem_bytes = sym.array.elem.bits // 8
        count = 1
        for d in sym.array.dims:
            count *= _dim_value(d.extent, env)
        size = count * elem_bytes
        if size >= SMALL_LIMIT_BYTES:
            verdict.violations.append(
                ClauseViolation(
                    clause="small",
                    message=(
                        f"array {name!r} spans {size} bytes at this problem size "
                        f"(>= {SMALL_LIMIT_BYTES}); 32-bit offsets would overflow"
                    ),
                )
            )
    return verdict


@dataclass(slots=True)
class GuardedKernel:
    """The paper's two-version compilation of one region."""

    region: Region
    symtab: SymbolTable
    optimized: VirKernel
    optimized_info: PtxasInfo
    fallback: VirKernel
    fallback_info: PtxasInfo

    def select(self, env: dict[str, int]) -> tuple[VirKernel, PtxasInfo, ClauseVerdict]:
        """The runtime decision: optimized when the clauses verify, the
        unoptimized fallback otherwise."""
        verdict = verify_clauses(self.region, self.symtab, env)
        if verdict.ok:
            return self.optimized, self.optimized_info, verdict
        return self.fallback, self.fallback_info, verdict


def _compile_guarded(
    region: Region,
    symtab: SymbolTable,
    *,
    options: CodegenOptions | None = None,
    arch: "GpuArch | str" = KEPLER_K20XM,
    name: str = "guarded",
) -> GuardedKernel:
    """Lower one region twice: clauses honored vs ignored.

    The ``arch`` keyword is routed through ``CompilerConfig.derive`` so a
    caller-supplied arch (including a registry name) hits the same
    validation path as every other configuration field — an unknown name
    raises :class:`~repro.errors.ConfigError` here instead of silently
    compiling for an unintended device.
    """
    from .options import BASE

    arch = BASE.derive(arch=arch).arch
    options = options or CodegenOptions()
    opt = generate_kernel(region, symtab, options, name=f"{name}_opt")
    from dataclasses import replace

    plain_opts = replace(options, honor_dim=False, honor_small=False)
    fallback = generate_kernel(region, symtab, plain_opts, name=f"{name}_fallback")
    return GuardedKernel(
        region=region,
        symtab=symtab,
        optimized=opt,
        optimized_info=ptxas_info(opt, arch),
        fallback=fallback,
        fallback_info=ptxas_info(fallback, arch),
    )


def compile_guarded(
    region: Region,
    symtab: SymbolTable,
    *,
    options: CodegenOptions | None = None,
    arch: "GpuArch | str" = KEPLER_K20XM,
    name: str = "guarded",
) -> GuardedKernel:
    """Deprecated shim: lower one region twice (clauses honored vs
    ignored) through the default
    :class:`~repro.compiler.session.CompilerSession`."""
    from .._compat import warn_legacy
    from .session import default_session

    warn_legacy("compile_guarded", "CompilerSession.compile_guarded()")
    return default_session().compile_guarded(
        region, symtab, options=options, arch=arch, name=name
    )
