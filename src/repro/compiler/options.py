"""Compiler configurations — the experimental arms of the evaluation.

Each :class:`CompilerConfig` is one bar group in the paper's figures:

* ``BASE``          — OpenUH with the paper's optimisations disabled;
* ``SAFARA_ONLY``   — Figure 7 (SAFARA without the new clauses);
* ``SMALL``         — the ``small`` clause alone;
* ``SMALL_DIM``     — ``small`` + ``dim``;
* ``SMALL_DIM_SAFARA`` — everything (Figures 9/10's rightmost bars);
* ``CARR_KENNEDY``  — the classic algorithm, for the ablation benches;
* ``PGI``           — the commercial-comparator model of Figures 11/12.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from ..analysis.cost_model import LatencyModel
from ..codegen.kernelgen import CodegenOptions
from ..errors import ConfigError
from ..gpu.arch import ARCHES, GpuArch, KEPLER_K20XM


@dataclass(frozen=True, slots=True)
class CompilerConfig:
    """One complete compiler configuration."""

    name: str
    #: Honor the proposed clauses in the source.
    honor_small: bool = False
    honor_dim: bool = False
    #: Run SAFARA (feedback-driven, latency-aware scalar replacement).
    safara: bool = False
    #: Cap on scalar-replacement candidates SAFARA may apply per feedback
    #: iteration (None = unlimited).  An autotuning knob: small budgets
    #: trade loads-saved for register headroom (and shorter feedback
    #: loops) without disabling SAFARA outright.
    safara_max_candidates: int | None = None
    #: Run the classic Carr-Kennedy baseline instead.
    carr_kennedy: bool = False
    #: Restrict Carr-Kennedy to intra-iteration groups (used by the PGI
    #: model: a production compiler that will not sequentialise loops but
    #: also has no latency-aware inter-iteration machinery).
    ck_intra_only: bool = False
    ck_register_budget: int = 32
    #: Use the read-only data cache for eligible arrays.
    readonly_cache: bool = True
    #: Per-thread register cap handed to ptxas (None = arch maximum).
    register_limit: int | None = None
    #: Unroll innermost sequential loops by this factor before scalar
    #: replacement (1 = off).  The paper's future-work combination.
    unroll_factor: int = 1
    #: Merge adjacent loads into vector (128-bit) loads during codegen —
    #: the future-work "memory vectorization".
    vectorize_loads: bool = False
    #: Run equality saturation (:mod:`repro.esat`) before scalar
    #: replacement: canonicalize expressions so equal-but-differently-
    #: spelled subscripts unify, and strength-reduce where bit-exact.
    #: Also turns on expression value numbering in codegen (the two are
    #: one optimization: esat canonicalizes, codegen reuses).
    saturate: bool = False
    #: Overrides for the esat extraction cost weights, as a mapping from
    #: weight key (``repro.esat.WEIGHT_KEYS``) to positive float.  Stored
    #: normalized as a sorted tuple of pairs so the frozen config stays
    #: hashable and cache keys are spelling-independent; unknown keys and
    #: non-positive values raise :class:`~repro.errors.ConfigError`.
    esat_extraction_weights: "tuple[tuple[str, float], ...] | None" = None
    #: Relative quality of the backend's scalar code (PGI's mature backend
    #: emits slightly tighter address code than the research compiler).
    issue_efficiency: float = 1.0
    #: Target architecture: a :class:`GpuArch` profile, or the registry
    #: name of one (``"cdna2-mi250"``); names are resolved through
    #: :data:`repro.gpu.arch.ARCHES` in ``__post_init__``, so every
    #: construction path (``derive``, ``replace``, direct init) validates
    #: them and unknown names raise :class:`~repro.errors.ConfigError`.
    arch: GpuArch | str = KEPLER_K20XM
    latency: LatencyModel | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.arch, GpuArch):
            object.__setattr__(self, "arch", ARCHES.get(self.arch))
        if self.esat_extraction_weights is not None:
            from ..esat.extract import validate_weights

            raw = self.esat_extraction_weights
            pairs = dict(raw.items() if isinstance(raw, dict) else raw)
            validate_weights(pairs)
            object.__setattr__(
                self,
                "esat_extraction_weights",
                tuple(sorted((k, float(v)) for k, v in pairs.items())),
            )

    def extraction_weights(self) -> "dict[str, float] | None":
        """The weight overrides as the dict :mod:`repro.esat` consumes."""
        if self.esat_extraction_weights is None:
            return None
        return dict(self.esat_extraction_weights)

    def codegen_options(self) -> CodegenOptions:
        return CodegenOptions(
            honor_dim=self.honor_dim,
            honor_small=self.honor_small,
            readonly_cache=self.readonly_cache and self.arch.has_readonly_cache,
            vectorize_loads=self.vectorize_loads,
            cse_exprs=self.saturate,
        )

    def derive(self, **overrides) -> "CompilerConfig":
        """Builder: a new frozen config with the given fields replaced.

        The canonical way to vary a configuration (configs are immutable)::

            capped = SMALL_DIM_SAFARA.derive(name="cap32", register_limit=32)

        Unknown keys are rejected with a :class:`~repro.errors.ConfigError`
        (a ``ValueError``) naming the offending key — the autotuner relies
        on this to catch knob-name typos in strategy definitions instead
        of silently tuning nothing.
        """
        valid = {f.name for f in fields(self)}
        for key in overrides:
            if key not in valid:
                raise ConfigError(
                    f"CompilerConfig.derive(): unknown field {key!r} "
                    f"(valid fields: {', '.join(sorted(valid))})"
                )
        return replace(self, **overrides)

    def with_arch(self, arch: "GpuArch | str") -> "CompilerConfig":
        return self.derive(arch=arch)


BASE = CompilerConfig(name="OpenUH(base)")
SAFARA_ONLY = BASE.derive(name="OpenUH(SAFARA)", safara=True)
SMALL = BASE.derive(name="OpenUH(small)", honor_small=True)
SMALL_DIM = SMALL.derive(name="OpenUH(small+dim)", honor_dim=True)
SMALL_DIM_SAFARA = SMALL_DIM.derive(name="OpenUH(SAFARA+small+dim)", safara=True)
CARR_KENNEDY = BASE.derive(name="OpenUH(Carr-Kennedy)", carr_kennedy=True)
#: The commercial-comparator model: solid baseline codegen (efficiency
#: factor), conservative intra-iteration replacement only, ignores the
#: proposed clauses entirely (they are not in the OpenACC standard).
PGI = CARR_KENNEDY.derive(
    name="PGI",
    ck_intra_only=True,
    ck_register_budget=16,
    issue_efficiency=0.85,
)

#: Future-work configurations (paper Section VII): unrolling and memory
#: vectorization composed with the full optimisation stack.
UNROLL_SAFARA = SMALL_DIM_SAFARA.derive(
    name="OpenUH(SAFARA+clauses+unroll)", unroll_factor=2
)
VECTOR_SAFARA = SMALL_DIM_SAFARA.derive(
    name="OpenUH(SAFARA+clauses+vec)", vectorize_loads=True
)

ALL_CONFIGS = {
    cfg.name: cfg
    for cfg in (
        BASE,
        SAFARA_ONLY,
        SMALL,
        SMALL_DIM,
        SMALL_DIM_SAFARA,
        CARR_KENNEDY,
        PGI,
        UNROLL_SAFARA,
        VECTOR_SAFARA,
    )
}
