"""The compilation service core: :class:`CompilerSession`.

A session owns the three pieces the historical free functions shared
implicitly:

* the **pass pipeline** (:class:`~repro.pipeline.passes.PassManager`) the
  LICM / unroll / Carr-Kennedy / SAFARA transformations register into,
  with per-pass instrumentation (wall time, IR-size delta, register delta
  from the feedback history);
* the **content-addressed compile cache**
  (:class:`~repro.pipeline.cache.CompileCache`) keyed by
  hash(source text, config, env bindings, arch), with hit/miss/evict
  counters — the SAFARA loop recompiles constantly and the experiments
  multiply that by configurations × benchmarks;
* the **statistics** (:class:`~repro.pipeline.trace.SessionStats`):
  structured traces of every compile, serialisable to JSON for the CLI's
  ``--stats`` flag.

The public free functions (``compile_source``, ``compile_function``,
``compile_guarded``, ``time_program``, ``optimize_region``) are thin shims
over a module-level default session and keep their historical behavior;
:func:`CompilerSession.compile_many` adds batch compilation fanned out
over ``concurrent.futures`` workers with in-batch deduplication.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..codegen.kernelgen import CodegenOptions, generate_kernel
from ..executors import parse_executor
from ..gpu.arch import GpuArch, KEPLER_K20XM
from ..gpu.registers import ptxas_info
from ..gpu.timing import estimate_time, profile_thread
from ..ir.builder import build_module
from ..ir.stmt import clone_region
from ..ir.module import KernelFunction
from ..lang.parser import parse_program
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import current_trace_id, span
from ..pipeline.cache import CompileCache, cache_key
from ..pipeline.diskcache import DiskCache
from ..pipeline.passes import Pass, PassContext, PassManager, run_safara
from ..pipeline.trace import CompileTrace, SessionStats
from ..analysis.cost_model import LatencyModel
from ..transforms.safara import SafaraReport
from ..feedback.driver import (
    FeedbackCompiler,
    backend_latency,
    current_deadline,
    deadline_scope,
)
from .driver import CompiledKernel, CompiledProgram, ProgramTiming
from .guards import GuardedKernel, _compile_guarded
from .options import BASE, CompilerConfig


class _SyntheticTripEnv(dict):
    """An env that answers every lookup with one fixed value.

    The saturation guard profiles two codegen alternatives of the same
    region without knowing the real problem size; any fixed trip count is
    fair because both alternatives are charged identically and the guard
    only compares, never reports, the resulting cycle numbers.
    """

    def __init__(self, value: int):
        super().__init__()
        self._value = value

    def __contains__(self, key) -> bool:
        return True

    def __getitem__(self, key) -> int:
        return self._value

    def get(self, key, default=None) -> int:
        return self._value


@dataclass(frozen=True, slots=True)
class CompileJob:
    """One unit of batch compilation for :meth:`CompilerSession.compile_many`.

    ``env`` does not influence code generation today, but it is part of
    the cache key (the paper's pipeline may constant-fold problem sizes in
    the future, and the experiments key their reuse on it).
    """

    source: str
    config: CompilerConfig = BASE
    kernel_name: str | None = None
    filename: str = "<string>"
    env: dict[str, int] | None = None

    def key(self) -> str:
        return cache_key(
            self.source, self.config, env=self.env, kernel_name=self.kernel_name
        )


class CompilerSession:
    """One compiler service instance: cache + pass pipeline + stats.

    Sessions are cheap; create a private one to isolate statistics or to
    register custom passes.  All methods are thread-safe — ``compile_many``
    drives them from worker threads.
    """

    def __init__(
        self,
        *,
        cache_size: int = 512,
        passes: list[Pass] | None = None,
        max_workers: int | None = None,
        executor: str = "auto",
        cache_dir: "str | None" = None,
        disk_cache: DiskCache | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        #: One registry for the whole session: the cache's hit/miss/evict
        #: counters and the stats' compile/execution counters share it, so
        #: ``session.metrics.as_dict()`` is the single metrics surface.
        #: Pass one in to share the namespace across sessions (the serving
        #: broker gives each worker a session over one registry).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = CompileCache(maxsize=cache_size, metrics=self.metrics)
        #: Optional persistent tier behind the in-memory cache.  A memory
        #: miss consults it before compiling; fresh compiles write through,
        #: so warm starts survive process restarts (``docs/serving.md``).
        if disk_cache is not None:
            self.disk_cache: DiskCache | None = disk_cache
        elif cache_dir is not None:
            self.disk_cache = DiskCache(cache_dir, metrics=self.metrics)
        else:
            self.disk_cache = None
        self.pipeline = PassManager(passes)
        self.stats = SessionStats(self.metrics)
        self.max_workers = max_workers
        #: Default functional-execution engine for :meth:`execute` — one
        #: of :data:`repro.executors.EXECUTOR_NAMES` (``"auto"`` walks the
        #: ladder codegen → vector → scalar).  Validated here so a typo
        #: fails at construction, not on the first execute.
        self.executor = parse_executor(executor).value
        self._lock = threading.Lock()

    # -- core compilation --------------------------------------------------

    def compile_function(
        self,
        fn: KernelFunction,
        config: CompilerConfig = BASE,
        *,
        cache_key: str | None = None,
    ) -> CompiledProgram:
        """Compile every offload region of ``fn`` under ``config``.

        The function's IR is mutated by the passes (like a real
        compilation); parse fresh per configuration.  Never cached — the
        caller owns the IR object; use :meth:`compile_source` for the
        cached path (which threads its ``cache_key`` through so the
        resulting :class:`CompileTrace` can be joined to the cache entry).
        """
        t0 = time.perf_counter()
        with span(
            "compile.function", function=fn.name, config=config.name
        ) as fn_span:
            program = CompiledProgram(function=fn, config=config)
            trace = CompileTrace(
                function=fn.name, config=config.name, cache_key=cache_key
            )
            codegen_opts = config.codegen_options()
            for index, region in enumerate(fn.regions(), start=1):
                name = f"{fn.name}_k{index}"
                if config.saturate:
                    vir, info, ctx, region_trace = self._lower_region_guarded(
                        region, fn.symtab, config, codegen_opts, name
                    )
                else:
                    vir, info, ctx, region_trace = self._lower_region(
                        region, fn.symtab, config, codegen_opts, name
                    )
                program.kernels.append(
                    CompiledKernel(
                        name=name,
                        region_id=region.region_id,
                        vir=vir,
                        ptxas=info,
                        safara=ctx.reports.get("safara"),
                        carr_kennedy=ctx.reports.get("carr_kennedy"),
                        licm=ctx.reports.get("licm"),
                        autopar=ctx.reports.get("autopar"),
                        unroll=ctx.reports.get("unroll"),
                        esat=ctx.reports.get("esat"),
                        backend_compilations=ctx.backend_compilations,
                    )
                )
                trace.regions.append(region_trace)
            trace.wall_ms = (time.perf_counter() - t0) * 1000.0
            fn_span.set(kernels=len(program.kernels), wall_ms=trace.wall_ms)
        with self._lock:
            self.stats.record(trace)
            for kernel in program.kernels:
                if kernel.esat is not None:
                    self.stats.record_esat(kernel.esat)
        return program

    def _lower_region(self, region, symtab, config, codegen_opts, name):
        """Run the pass pipeline over one region and lower it: returns
        ``(vir, ptxas_info, pass_context, region_trace)``."""
        ctx = PassContext(
            region=region,
            symtab=symtab,
            config=config,
            options=codegen_opts,
            kernel_name=name,
        )
        region_trace = self.pipeline.run(ctx)
        backend_latency()
        with span("codegen", kernel=name) as cg_span:
            vir = generate_kernel(region, symtab, codegen_opts, name=name)
            info = ptxas_info(vir, config.arch, config.register_limit)
            cg_span.set(
                registers=info.registers, spill_bytes=info.spill_bytes
            )
        ctx.backend_compilations += 1
        return vir, info, ctx, region_trace

    def _lower_region_guarded(self, region, symtab, config, codegen_opts, name):
        """Pressure guard for equality saturation: compile the region both
        with and without the saturated pipeline and keep the saturated
        kernel only when it is *never worse* — no more registers, no more
        spill bytes, and no higher value for any term of the timing model
        (issue cycles, memory latency, memory traffic, measured with
        synthetic trip counts so the verdict is problem-size independent).

        Saturation's rewrites only remove or cheapen instructions at equal
        loop depth, so the one way it can lose is by stretching live
        ranges across an occupancy boundary; compiling both alternatives
        and comparing is the direct check.  The discarded compile's
        backend invocations are still charged to the kernel's count.
        """
        sat_region = clone_region(region)
        base_config = config.derive(saturate=False)
        base = self._lower_region(
            region, symtab, base_config, base_config.codegen_options(), name
        )
        sat = self._lower_region(sat_region, symtab, config, codegen_opts, name)
        applied = self._never_worse(sat, base, config.arch)
        if applied:
            # The function's IR must match the kernel that ships: graft
            # the saturated statements back into the caller-visible region.
            region.body[:] = sat_region.body
            region.directive = sat_region.directive
        chosen, other = (sat, base) if applied else (base, sat)
        vir, info, ctx, region_trace = chosen
        ctx.backend_compilations += other[2].backend_compilations
        report = sat[2].reports.get("esat")
        if report is not None:
            report.applied = applied
            ctx.reports["esat"] = report
        if not applied:
            # The saturation pass did run (on the discarded alternative);
            # surface its trace instead of the base pipeline's skip marker.
            try:
                sat_pass = sat[3].pass_trace("esat")
                skip = region_trace.pass_trace("esat")
                region_trace.passes[region_trace.passes.index(skip)] = sat_pass
            except KeyError:
                pass
        return vir, info, ctx, region_trace

    @staticmethod
    def _never_worse(sat, base, arch: GpuArch) -> bool:
        """True when the saturated alternative cannot be slower under any
        problem size: every input to the timing model is <= the base's."""
        sat_vir, sat_info = sat[0], sat[1]
        base_vir, base_info = base[0], base[1]
        if sat_info.registers > base_info.registers:
            return False
        if sat_info.spill_bytes > base_info.spill_bytes:
            return False
        env = _SyntheticTripEnv(64)
        sp = profile_thread(sat_vir, env, sat_info, arch)
        bp = profile_thread(base_vir, env, base_info, arch)
        eps = 1e-9
        return (
            sp.issue_cycles <= bp.issue_cycles * (1 + eps) + eps
            and sp.mem_latency <= bp.mem_latency * (1 + eps) + eps
            and sp.mem_bytes_warp <= bp.mem_bytes_warp * (1 + eps) + eps
        )

    def compile_source(
        self,
        source: str,
        config: CompilerConfig = BASE,
        *,
        kernel_name: str | None = None,
        filename: str = "<string>",
        env: dict[str, int] | None = None,
    ) -> CompiledProgram:
        """Parse + lower + compile one kernel function from source text,
        memoised in the session's compile cache."""
        job = CompileJob(
            source=source,
            config=config,
            kernel_name=kernel_name,
            filename=filename,
            env=dict(env) if env else None,
        )
        key = job.key()
        with span("compile", config=config.name, cache_key=key) as sp:
            cached = self._cache_lookup(key, job)
            if cached is not None:
                sp.set(cache_hit=True)
                return cached
            sp.set(cache_hit=False)
            program = self._compile_job(job, key)
            self._cache_store(key, program, codegen=self._codegen_for_job(job))
        return program

    def _cache_lookup(
        self, key: str, job: CompileJob | None = None
    ) -> CompiledProgram | None:
        """Two-tier lookup: memory first, then the persistent tier (a disk
        hit is promoted into the in-memory cache).  A disk envelope that
        carries generated NumPy source is rebound into the process-wide
        function cache, so a warm restart executes hot without re-running
        the planner or the generator."""
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        if self.disk_cache is not None:
            program, codegen = self.disk_cache.get_entry(key)
            if program is not None:
                self.cache.put(key, program)
                if codegen is not None and job is not None:
                    self._rebind_codegen(job, key, codegen)
                return program
        return None

    def _cache_store(
        self, key: str, program: CompiledProgram, *, codegen: str | None = None
    ) -> None:
        self.cache.put(key, program)
        if self.disk_cache is not None:
            self.disk_cache.put(key, program, codegen=codegen)

    def _parse_job(self, job: CompileJob) -> KernelFunction:
        module = build_module(parse_program(job.source, job.filename))
        return (
            module.functions[0]
            if job.kernel_name is None
            else module.function(job.kernel_name)
        )

    def _codegen_for_job(self, job: CompileJob) -> str | None:
        """Generated NumPy source for the job's kernel, or ``None`` when
        the codegen tier cannot express it.  Always generated from a
        pristine parse — the passes mutate the compiled program's IR."""
        from ..codegen import numpy_source

        t0 = time.perf_counter()
        try:
            source = numpy_source.generate_source(self._parse_job(job))
        except Exception:  # noqa: BLE001 — codegen is best-effort
            return None
        self.metrics.histogram("codegen.generate_ms").observe(
            (time.perf_counter() - t0) * 1000.0
        )
        return source

    def _rebind_codegen(self, job: CompileJob, key: str, source: str) -> None:
        """Bind persisted generated source into the function cache (warm
        restart path: no planning, no generation — just ``exec``)."""
        from ..codegen import numpy_source

        try:
            numpy_source.get_or_compile(
                self._parse_job(job),
                content_key=key,
                source=source,
                metrics=self.metrics,
            )
        except Exception:  # noqa: BLE001 — stale source: executors re-plan
            pass

    def _compile_job(
        self, job: CompileJob, key: str | None = None
    ) -> CompiledProgram:
        return self.compile_function(self._parse_job(job), job.config, cache_key=key)

    # -- batch compilation -------------------------------------------------

    def compile_many(
        self,
        jobs: "list[CompileJob | tuple]",
        *,
        max_workers: int | None = None,
        parallel: str = "thread",
    ) -> list[CompiledProgram]:
        """Compile a batch of jobs, fanned out over a worker pool.

        Results come back aligned with ``jobs``.  Duplicate jobs (same
        cache key) compile once; cache hits never reach the pool.  The
        compile core is deterministic, so a parallel batch is bit-identical
        to a serial loop over the same jobs.

        ``parallel`` selects the pool: ``"thread"`` (default) overlaps
        backend stalls and releases the GIL in NumPy; ``"process"`` forks
        workers for CPU-bound scaling on multicore machines (results and
        traces are pickled back; thread-local backend *deadlines* do not
        cross the fork — wrap the whole batch in ``deadline_scope`` in the
        parent instead of relying on per-worker propagation).
        """
        if parallel not in ("thread", "process"):
            from ..errors import ConfigError

            raise ConfigError(
                f"unknown parallel mode {parallel!r}: "
                "valid modes are thread, process"
            )
        jobs = [j if isinstance(j, CompileJob) else CompileJob(*j) for j in jobs]
        results: list[CompiledProgram | None] = [None] * len(jobs)
        indices_for: dict[str, list[int]] = {}
        job_for: dict[str, CompileJob] = {}
        for i, job in enumerate(jobs):
            key = job.key()
            indices_for.setdefault(key, []).append(i)
            job_for.setdefault(key, job)

        to_compile: list[str] = []
        for key in indices_for:
            cached = self._cache_lookup(key, job_for[key])
            if cached is not None:
                for i in indices_for[key]:
                    results[i] = cached
            else:
                to_compile.append(key)

        if to_compile:
            workers = max_workers or self.max_workers or min(
                32, (os.cpu_count() or 1) + 4
            )
            workers = max(1, min(workers, len(to_compile)))
            if parallel == "process" and workers > 1:
                compiled = self._compile_in_processes(
                    [job_for[k] for k in to_compile], workers
                )
            elif workers == 1:
                compiled = [self._compile_job(job_for[k], k) for k in to_compile]
            else:
                # Backend deadlines are thread-local; re-install the
                # caller's active deadline inside each worker so a batch
                # under deadline_scope() still honors it.
                deadline = current_deadline()

                def compile_one(k: str) -> CompiledProgram:
                    if deadline is None:
                        return self._compile_job(job_for[k], k)
                    with deadline_scope(deadline):
                        return self._compile_job(job_for[k], k)

                with ThreadPoolExecutor(max_workers=workers) as pool:
                    compiled = list(pool.map(compile_one, to_compile))
            for key, program in zip(to_compile, compiled):
                self._cache_store(
                    key, program, codegen=self._codegen_for_job(job_for[key])
                )
                for i in indices_for[key]:
                    results[i] = program
        return results  # type: ignore[return-value]

    def _compile_in_processes(
        self, jobs: list[CompileJob], workers: int
    ) -> list[CompiledProgram]:
        """Fan a batch out over forked worker processes.

        Each worker compiles in a throwaway session and pickles back
        ``(program, trace)``; the parent records the traces so statistics
        match the threaded path.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        ctx = None
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            outs = list(pool.map(_compile_job_in_worker, jobs))
        compiled = []
        for program, trace in outs:
            with self._lock:
                self.stats.record(trace)
            compiled.append(program)
        return compiled

    # -- downstream services ----------------------------------------------

    def time_program(
        self,
        compiled: CompiledProgram,
        env: dict[str, int],
        *,
        launches: dict[str, int] | list[int] | int = 1,
    ) -> ProgramTiming:
        """Evaluate the timing model for every kernel of a compiled program.

        ``launches`` is a global launch count, a per-kernel-name map, or a
        list aligned with region order (benchmarks launch hot kernels once
        per time step).
        """
        timing = ProgramTiming(program=compiled)
        for idx, ck in enumerate(compiled.kernels):
            if isinstance(launches, int):
                n = launches
            elif isinstance(launches, list):
                n = launches[idx] if idx < len(launches) else 1
            else:
                n = launches.get(ck.name, 1)
            timing.kernels.append(
                estimate_time(
                    ck.vir,
                    ck.ptxas,
                    env,
                    arch=compiled.config.arch,
                    launches=n,
                    issue_scale=compiled.config.issue_efficiency,
                )
            )
        with self._lock:
            self.stats.record_timing()
        return timing

    def execute(
        self,
        fn: KernelFunction,
        args: dict[str, object],
        *,
        executor: str | None = None,
        content_key: str | None = None,
        codegen_source: str | None = None,
    ):
        """Run a kernel function functionally through the vectorized
        execution engine (:func:`~repro.gpu.vector_exec.execute_kernel`).

        ``executor`` overrides the session default for one call.
        ``content_key`` (a stable content hash for ``fn``'s source) keys
        the process-wide generated-function cache, so repeat executions
        skip planning and codegen; ``codegen_source`` seeds that cache
        from a persisted disk envelope.  Returns ``(arrays, stats,
        info)``; the :class:`~repro.gpu.vector_exec.ExecutionInfo` is also
        recorded in the session statistics (the ``execution`` section of
        :meth:`stats_dict`).
        """
        from ..gpu.vector_exec import execute_kernel

        arrays, stats, info = execute_kernel(
            fn,
            args,
            executor=executor or self.executor,
            content_key=content_key,
            codegen_source=codegen_source,
            metrics=self.metrics,
        )
        record = info.as_dict()
        trace_id = current_trace_id()
        if trace_id is not None:
            # Serving tier: the execution record joins the request's
            # flight-recorder trace by this id.
            record["trace_id"] = trace_id
        with self._lock:
            self.stats.record_execution(fn.name, record)
        return arrays, stats, info

    def compile_guarded(
        self,
        region,
        symtab,
        *,
        options: CodegenOptions | None = None,
        arch: "GpuArch | str" = KEPLER_K20XM,
        name: str = "guarded",
    ) -> GuardedKernel:
        """Two-version compilation of one region (paper Section IV)."""
        return _compile_guarded(
            region, symtab, options=options, arch=arch, name=name
        )

    def optimize_region(
        self,
        region,
        symtab,
        *,
        options: CodegenOptions | None = None,
        arch: GpuArch = KEPLER_K20XM,
        register_limit: int | None = None,
        latency: LatencyModel | None = None,
        name: str | None = None,
    ) -> tuple[SafaraReport, FeedbackCompiler]:
        """Run the full SAFARA feedback optimisation on one region.

        Returns the SAFARA trace and the feedback compiler (whose
        ``history`` holds every intermediate PTXAS report).
        """
        report, feedback = run_safara(
            region,
            symtab,
            options=options or CodegenOptions(),
            arch=arch,
            register_limit=register_limit,
            latency=latency,
            name=name,
        )
        with self._lock:
            self.stats.record_feedback_optimization()
        return report, feedback

    # -- introspection -----------------------------------------------------

    def stats_dict(self) -> dict:
        """The session's statistics (and cache counters) as JSON-ready data."""
        d = self.stats.as_dict()
        d["cache"] = self.cache.as_dict()
        if self.disk_cache is not None:
            d["cache"]["disk"] = self.disk_cache.as_dict()
        return d

    def reset(self) -> None:
        """Drop cached programs and zero every counter and trace.  The
        persistent tier keeps its entries (that is its purpose); use
        ``session.disk_cache.clear()`` to wipe it too."""
        self.cache.reset()
        with self._lock:
            self.stats.reset()


def _compile_job_in_worker(job: CompileJob):
    """Module-level worker for ``parallel="process"`` batches: compile in
    a fresh, cache-less session and return ``(program, trace)``."""
    session = CompilerSession(cache_size=1)
    program = session._compile_job(job, job.key())
    trace = session.stats.traces[-1]
    return program, trace


_default_session: CompilerSession | None = None
_default_lock = threading.Lock()


def default_session() -> CompilerSession:
    """The process-wide session backing the historical free functions."""
    global _default_session
    if _default_session is None:
        with _default_lock:
            if _default_session is None:
                _default_session = CompilerSession()
    return _default_session


def compile_many(
    jobs: "list[CompileJob | tuple]", *, max_workers: int | None = None
) -> list[CompiledProgram]:
    """Batch-compile through the default session (see
    :meth:`CompilerSession.compile_many`)."""
    return default_session().compile_many(jobs, max_workers=max_workers)
