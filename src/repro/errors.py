"""The unified exception hierarchy: every failure the toolchain can
raise, under one base class, mapped 1:1 onto the serve protocol's error
codes.

Four generations of entrypoints accreted four error families — front-end
diagnostics (:mod:`repro.lang.errors`), feedback-loop failures
(:mod:`repro.feedback.driver`), cache misuse, and protocol errors
(:mod:`repro.serve.protocol`).  They all now descend from
:class:`ReproError`, so ``except ReproError`` catches any toolchain
failure while the specific types keep their historical meaning (and, for
:class:`CacheError`, their historical ``ValueError`` compatibility).

The protocol mapping is bidirectional:

* :func:`code_for` — the wire error code for an exception (what the
  broker puts in an error response);
* :func:`error_for` — the exception type for a wire error code (what a
  client raises from an error response);
* :func:`raise_for_response` — the client helper: returns the ``result``
  of an ok response, raises the mapped exception otherwise.  ``repro
  submit`` failures therefore round-trip to the *same* exception types
  the server-side compile would have raised.

This module is intentionally a leaf: it imports no subpackage at module
level (the front end and feedback driver import *it* for their base
classes).  Re-exports of the subsystem-owned types are resolved lazily
via :pep:`562` ``__getattr__``.
"""

from __future__ import annotations

import importlib


class ReproError(Exception):
    """Base class of every error raised by the repro toolchain."""


class CacheError(ReproError, ValueError):
    """Cache misuse: a malformed content-hash key or invalid bound.

    Subclasses :class:`ValueError` for backward compatibility with the
    historical ``raise ValueError`` sites in the cache layer.
    """


class ConfigError(ReproError, ValueError):
    """An invalid compiler-configuration request (e.g. an unknown field
    passed to :meth:`~repro.compiler.options.CompilerConfig.derive`)."""


class TuneError(ReproError):
    """The autotuner was asked something impossible (unknown strategy,
    empty knob space, un-timeable kernel)."""


# -- client-side protocol errors ---------------------------------------------
#
# Server-side failures that have no natural library exception (the queue
# was full, the daemon is draining) get dedicated types here so a wire
# error code always maps to exactly one exception class.


class ProtocolError(ReproError):
    """Base of the serve-protocol failures; carries the wire code."""

    #: The serve protocol error code this exception maps onto.
    code: str = "internal"
    #: Whether resubmitting the identical request can succeed.
    retryable: bool = False


class BadRequestError(ProtocolError):
    """The request line or envelope is malformed (``bad_json`` /
    ``bad_request``)."""

    code = "bad_request"


class UnknownConfigError(ProtocolError):
    """The named compiler configuration does not exist."""

    code = "unknown_config"


class UnknownArchError(ProtocolError):
    """The named GPU architecture profile is not registered (neither in
    the server's :data:`repro.gpu.arch.ARCHES` registry nor its fleet).

    Not retryable: resubmitting the identical request cannot succeed —
    the client must pick a profile from the server's advertised list.
    """

    code = "unknown_arch"


class QueueFullError(ProtocolError):
    """The admission queue is full — the 429 of the protocol."""

    code = "queue_full"
    retryable = True


class CompileFailedError(ProtocolError):
    """The compile failed deterministically (``compile_error``)."""

    code = "compile_error"


class ExecutionFailedError(ProtocolError):
    """Functional execution failed (``execution_error``)."""

    code = "execution_error"


class QuotaExceededError(ProtocolError):
    """The tenant's admission token bucket is empty (``quota_exceeded``).

    Retryable: the bucket refills at the configured per-tenant rate, so
    the identical request succeeds once the client backs off.
    """

    code = "quota_exceeded"
    retryable = True


class ShardUnavailableError(ProtocolError):
    """No shard could take the request (``shard_unavailable``).

    Raised by the cluster router when every candidate shard for the
    request's key is draining, down, or unreachable.  Retryable: shards
    rejoin after a drain/restart cycle.
    """

    code = "shard_unavailable"
    retryable = True


class ShuttingDownError(ProtocolError):
    """The daemon is draining after a shutdown request."""

    code = "shutting_down"


class InternalServiceError(ProtocolError):
    """An unexpected failure inside the service itself (a bug)."""

    code = "internal"


#: Names owned by other subsystems, re-exported here lazily (a direct
#: import would cycle: those modules import :class:`ReproError` from us).
_REEXPORTS = {
    # front-end diagnostics
    "MiniAccError": "repro.lang.errors",
    "LexError": "repro.lang.errors",
    "ParseError": "repro.lang.errors",
    "DirectiveError": "repro.lang.errors",
    "SemanticError": "repro.lang.errors",
    # feedback-loop failure taxonomy
    "FeedbackError": "repro.feedback.driver",
    "TransientFeedbackError": "repro.feedback.driver",
    "PermanentFeedbackError": "repro.feedback.driver",
    "FeedbackTimeout": "repro.feedback.driver",
    # structured protocol failure (server side)
    "ServeError": "repro.serve.protocol",
}

__all__ = [
    "ReproError",
    "CacheError",
    "ConfigError",
    "TuneError",
    "ProtocolError",
    "BadRequestError",
    "UnknownArchError",
    "UnknownConfigError",
    "QueueFullError",
    "CompileFailedError",
    "ExecutionFailedError",
    "QuotaExceededError",
    "ShardUnavailableError",
    "ShuttingDownError",
    "InternalServiceError",
    "code_for",
    "error_for",
    "raise_for_response",
    *_REEXPORTS,
]


def __getattr__(name: str):
    module = _REEXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_REEXPORTS))


# -- wire-code mapping -------------------------------------------------------


def _code_map() -> dict[str, type]:
    """Wire error code → exception class, built lazily (the lang and
    feedback types live behind the re-export indirection)."""
    lang = importlib.import_module("repro.lang.errors")
    feedback = importlib.import_module("repro.feedback.driver")
    return {
        "bad_json": BadRequestError,
        "bad_request": BadRequestError,
        "unknown_config": UnknownConfigError,
        "unknown_arch": UnknownArchError,
        "parse_error": lang.MiniAccError,
        "queue_full": QueueFullError,
        "deadline_exceeded": feedback.FeedbackTimeout,
        "transient_failure": feedback.TransientFeedbackError,
        "compile_error": CompileFailedError,
        "execution_error": ExecutionFailedError,
        "tune_error": TuneError,
        "quota_exceeded": QuotaExceededError,
        "shard_unavailable": ShardUnavailableError,
        "shutting_down": ShuttingDownError,
        "internal": InternalServiceError,
    }


def error_for(code: str, message: str) -> ReproError:
    """The exception instance for a wire error code (unknown codes map to
    :class:`InternalServiceError` so clients never crash on a newer
    server)."""
    cls = _code_map().get(code, InternalServiceError)
    return cls(message)


def code_for(exc: BaseException) -> str:
    """The wire error code for an exception (the inverse of
    :func:`error_for`; unknown exceptions are ``internal``)."""
    if isinstance(exc, ProtocolError):
        return exc.code
    for code, cls in _code_map().items():
        if type(exc) is cls:
            return code
    # Walk the map again accepting subclasses, most specific first by
    # MRO distance, so e.g. a LexError still maps to parse_error.
    best: tuple[int, str] | None = None
    for code, cls in _code_map().items():
        if isinstance(exc, cls):
            try:
                depth = type(exc).__mro__.index(cls)
            except ValueError:  # pragma: no cover - defensive
                depth = len(type(exc).__mro__)
            if best is None or depth < best[0]:
                best = (depth, code)
    return best[1] if best else "internal"


def raise_for_response(response: dict) -> dict:
    """Client helper over a protocol response: return ``result`` when the
    response is ok, raise the mapped exception otherwise.

    The raised exception carries the response's ``retryable`` verdict as
    a ``retryable`` attribute, so callers can implement backoff without
    re-consulting the code table.
    """
    if not isinstance(response, dict) or "ok" not in response:
        raise BadRequestError(f"not a protocol response: {response!r}")
    if response["ok"]:
        return response.get("result", {})
    error = response.get("error") or {}
    exc = error_for(error.get("code", "internal"), error.get("message", ""))
    exc.retryable = bool(error.get("retryable", False))
    raise exc
