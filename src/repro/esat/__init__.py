"""Equality saturation over the IR (the ACC-Saturator idea).

``repro.esat`` builds an e-graph per offload region, saturates it with a
catalog of bit-exact rewrite rules (:mod:`repro.esat.rules`), and
extracts the cheapest representative of every expression under a
configurable latency×use cost model (:mod:`repro.esat.extract`).  The
net effect is canonicalization: syntactically distinct but provably
equal expressions — commuted products, reassociated subscripts,
strength-reducible forms — collapse to one spelling, which the scalar
replacement pass (SAFARA) and the codegen value numberer then recognise
as reuse.

Runs as the ``esat`` pipeline pass (``CompilerConfig.saturate``); the
tuner exposes saturation on/off and the extraction weights as axes.
"""

from .egraph import EClass, EGraph, ENode, SaturationStats
from .extract import DEFAULT_WEIGHTS, WEIGHT_KEYS, Extractor, validate_weights
from .optimize import EsatReport, saturate_region
from .rules import Rule, default_rules

__all__ = [
    "DEFAULT_WEIGHTS",
    "EClass",
    "EGraph",
    "ENode",
    "EsatReport",
    "Extractor",
    "Rule",
    "SaturationStats",
    "WEIGHT_KEYS",
    "default_rules",
    "saturate_region",
    "validate_weights",
]
