"""The e-graph: equality saturation over ``repro.ir.expr`` trees.

An e-graph is a congruence-closed partition of expression nodes into
**e-classes** of provably equal expressions.  Each :class:`ENode` is one
operator application whose children are e-class ids rather than concrete
subtrees, so a single class compactly represents every equivalent
spelling discovered so far (the classic egg design [Willsey et al.]).

The implementation is deliberately bounded and deterministic — it runs
inside the compile pipeline, where reproducibility is a contract:

* **bounded**: saturation stops at ``node_limit`` e-nodes or
  ``iter_limit`` rule sweeps, whichever comes first (the rule set is
  size-increasing only through constant-depth rewrites, so the bound is
  rarely hit in practice);
* **deterministic**: classes are numbered in insertion order, the
  worklist is a list swept in class-id order, unions keep the *smaller*
  id as representative, and no set or identity-keyed dict is ever
  iterated — the same region saturates to the same e-graph under any
  ``PYTHONHASHSEED`` (asserted by a subprocess test).

Soundness note: every rewrite rule is *algebraic* — it equates
expressions that evaluate identically in **every** environment (bit-for-
bit, under the interpreter's semantics: exact Python ints with C
truncating division, IEEE-754 doubles).  No rule equates a variable with
a defining expression, so e-class membership never depends on program
point and the extracted program is semantically identical statement by
statement (``docs/optimizer.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    LOGIC_OPS,
    REL_OPS,
    Select,
    UnOp,
    VarRef,
)
from ..ir.types import BOOL, F64, ScalarType, promote


@dataclass(frozen=True, slots=True)
class ENode:
    """One operator application over e-class children.

    ``tag`` names the node kind (``int``, ``float``, ``var``, ``aref``,
    ``bin``, ``un``, ``call``, ``cast``, ``sel``); ``payload`` carries the
    non-child fields (constant value, symbol, operator, intrinsic name,
    target type); ``children`` are e-class ids.
    """

    tag: str
    payload: tuple
    children: tuple[int, ...]

    def with_children(self, children: tuple[int, ...]) -> "ENode":
        return ENode(self.tag, self.payload, children)


@dataclass(slots=True)
class EClass:
    """One equivalence class: its e-nodes in discovery order."""

    id: int
    nodes: list[ENode] = field(default_factory=list)
    #: Result type shared by every member (rules are type-preserving).
    stype: ScalarType = F64
    #: Distinct *original* (pre-rule) spellings that landed in this class
    #: — ``> 1`` means saturation unified syntactically different source
    #: expressions (the subscript-unification statistic).
    source_spellings: int = 0


@dataclass(slots=True)
class SaturationStats:
    """What one saturation run did (rendered into the esat report)."""

    nodes: int = 0
    classes: int = 0
    unions: int = 0
    iterations: int = 0
    saturated: bool = False  # reached a fixpoint within the limits


class EGraph:
    """A bounded, deterministic e-graph over IR expressions."""

    def __init__(self, *, node_limit: int = 4096, iter_limit: int = 8):
        self.node_limit = node_limit
        self.iter_limit = iter_limit
        #: Union-find over class ids (parent pointers; roots self-map).
        self._parent: list[int] = []
        #: Root id -> class.  Insertion-ordered; only roots are present.
        self.classes: dict[int, EClass] = {}
        #: Canonical e-node -> root class id (the hash-cons).
        self._memo: dict[ENode, int] = {}
        #: Classes whose membership changed since the last rebuild.
        self._dirty: bool = False
        self.stats = SaturationStats()

    # -- union-find --------------------------------------------------------
    def find(self, cid: int) -> int:
        root = cid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cid] != root:  # path compression
            self._parent[cid], cid = root, self._parent[cid]
        return root

    def canonicalize(self, node: ENode) -> ENode:
        if not node.children:
            return node
        return node.with_children(tuple(self.find(c) for c in node.children))

    @property
    def n_nodes(self) -> int:
        return sum(len(c.nodes) for c in self.classes.values())

    def stype(self, cid: int) -> ScalarType:
        return self.classes[self.find(cid)].stype

    # -- construction ------------------------------------------------------
    def _new_class(self, node: ENode, stype: ScalarType) -> int:
        cid = len(self._parent)
        self._parent.append(cid)
        self.classes[cid] = EClass(id=cid, nodes=[node], stype=stype)
        self._memo[node] = cid
        return cid

    def add_node(self, node: ENode) -> int:
        """Insert one (canonicalized) e-node; returns its class id."""
        node = self.canonicalize(node)
        cached = self._memo.get(node)
        if cached is not None:
            return self.find(cached)
        return self._new_class(node, self._node_stype(node))

    def add(self, expr: Expr) -> int:
        """Insert a whole expression tree; returns the root's class id.

        Counts each *distinct* spelling toward its class's
        ``source_spellings`` (a repeated identical expression hits the
        hash-cons and does not count twice).
        """
        node = self.canonicalize(self._enode_of(expr))
        known = node in self._memo
        cid = self.add_node(node)
        if not known:
            self.classes[self.find(cid)].source_spellings += 1
        return cid

    def _enode_of(self, e: Expr) -> ENode:
        if isinstance(e, IntConst):
            return ENode("int", (e.value, e.stype), ())
        if isinstance(e, FloatConst):
            return ENode("float", (e.value, e.stype), ())
        if isinstance(e, VarRef):
            return ENode("var", (e.sym,), ())
        if isinstance(e, ArrayRef):
            children = tuple(self.add(i) for i in e.indices)
            return ENode("aref", (e.sym,), children)
        if isinstance(e, BinOp):
            return ENode("bin", (e.op,), (self.add(e.left), self.add(e.right)))
        if isinstance(e, UnOp):
            return ENode("un", (e.op,), (self.add(e.operand),))
        if isinstance(e, Call):
            return ENode("call", (e.func,), tuple(self.add(a) for a in e.args))
        if isinstance(e, Cast):
            return ENode("cast", (e.to_type,), (self.add(e.operand),))
        if isinstance(e, Select):
            return ENode(
                "sel",
                (),
                (self.add(e.cond), self.add(e.then), self.add(e.otherwise)),
            )
        raise TypeError(f"cannot add expression {type(e).__name__}")

    def _node_stype(self, node: ENode) -> ScalarType:
        tag, payload = node.tag, node.payload
        if tag in ("int", "float"):
            return payload[1]
        if tag == "var":
            return payload[0].stype
        if tag == "aref":
            return payload[0].array.elem
        if tag == "bin":
            op = payload[0]
            if op in REL_OPS or op in LOGIC_OPS:
                return BOOL
            return promote(
                self.stype(node.children[0]), self.stype(node.children[1])
            )
        if tag == "un":
            return BOOL if payload[0] == "!" else self.stype(node.children[0])
        if tag == "cast":
            return payload[0]
        if tag == "sel":
            return promote(
                self.stype(node.children[1]), self.stype(node.children[2])
            )
        if tag == "call":
            func = payload[0]
            if not node.children:
                return F64
            arg_t = self.stype(node.children[0])
            for c in node.children[1:]:
                arg_t = promote(arg_t, self.stype(c))
            if func not in ("min", "max", "abs") and not arg_t.is_float:
                return F64
            return arg_t
        raise TypeError(f"unknown e-node tag {tag!r}")

    # -- merging -----------------------------------------------------------
    def union(self, a: int, b: int) -> int:
        """Merge two classes; the smaller id stays the representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if rb < ra:
            ra, rb = rb, ra
        keep, gone = self.classes[ra], self.classes.pop(rb)
        self._parent[rb] = ra
        keep.nodes.extend(gone.nodes)
        keep.source_spellings += gone.source_spellings
        self._dirty = True
        self.stats.unions += 1
        return ra

    def rebuild(self) -> None:
        """Restore congruence closure after unions.

        Re-canonicalizes every e-node; two classes holding the same
        canonical node are congruent and merge, which can cascade — loop
        to a fixpoint.  The simple full-sweep variant is O(iterations x
        nodes), fine at this module's node bounds.
        """
        while self._dirty:
            self._dirty = False
            memo: dict[ENode, int] = {}
            for cid in sorted(self.classes):
                cls = self.classes.get(cid)
                if cls is None:  # merged away earlier in this sweep
                    continue
                fresh: list[ENode] = []
                for node in cls.nodes:
                    canon = self.canonicalize(node)
                    if canon not in fresh:
                        fresh.append(canon)
                cls.nodes = fresh
                for node in fresh:
                    owner = memo.get(node)
                    if owner is None:
                        memo[node] = self.find(cid)
                    elif self.find(owner) != self.find(cid):
                        self.union(owner, cid)
            self._memo = {
                node: cid
                for cid in sorted(self.classes)
                for node in self.classes[cid].nodes
            }

    # -- saturation --------------------------------------------------------
    def saturate(self, rules: "list") -> SaturationStats:
        """Apply ``rules`` to a fixpoint or to the node/iteration bound.

        Each rule is called once per (class, node) pair per sweep and
        returns class ids to union with that class (building any new
        nodes through :meth:`add_node`).  Sweeps run in class-id order;
        the run is deterministic for a deterministic rule list.
        """
        for sweep in range(self.iter_limit):
            self.stats.iterations = sweep + 1
            changed = False
            for cid in sorted(self.classes):
                cls = self.classes.get(cid)
                if cls is None:
                    continue
                # Snapshot: rules may append nodes to this very class.
                for node in list(cls.nodes):
                    if self.n_nodes >= self.node_limit:
                        break
                    for rule in rules:
                        for equal in rule.apply(self, self.find(cid), node):
                            if self.find(equal) != self.find(cid):
                                self.union(equal, cid)
                                changed = True
            self.rebuild()
            if not changed:
                self.stats.saturated = True
                break
        self.stats.nodes = self.n_nodes
        self.stats.classes = len(self.classes)
        return self.stats

    # -- introspection -----------------------------------------------------
    def unified_classes(self) -> int:
        """Classes holding more than one distinct original spelling —
        saturation proved syntactically different source expressions
        equal (the headline statistic of the esat report)."""
        return sum(
            1 for c in self.classes.values() if c.source_spellings > 1
        )
