"""Cost-based extraction: pick one representative per e-class.

After saturation every e-class holds several equal spellings; extraction
chooses the cheapest one under a latency×use cost model and rebuilds a
plain (interned) IR expression from the choices.

The cost of an e-node is its own operator weight plus the cost of each
**distinct** child class — children are deduplicated per node before
summing.  That single design choice is what makes strength reduction
land: the tree cost of ``x + x`` double-counts the shared ``x``, but its
extraction cost counts ``x`` once, so ``x + x`` (one add) beats
``x * 2`` (one mul plus a constant) even when ``x`` is an expensive
load.  The duplicated occurrence is then visible to the reuse analysis
as a second use of the same array reference.

Costs are solved to a fixpoint over the (possibly cyclic) class graph:
start at infinity, relax until stable.  Ties are broken by e-node
insertion order, so when a rewrite cannot beat the source spelling the
source spelling survives and extraction is the identity.

Weights are configurable per operator family (``const``, ``var``,
``load``, ``alu``, ``mul``, ``div``, ``call``, ``cast``, ``select``) and
default to the issue-cost table the SAFARA profitability model already
uses — the two models must agree on what "expensive" means or extraction
would undo what scalar replacement wants to do.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
    intern_expr,
)
from .egraph import EGraph, ENode

#: The configurable weight axes, in canonical order.
WEIGHT_KEYS = (
    "const",
    "var",
    "load",
    "alu",
    "mul",
    "div",
    "call",
    "cast",
    "select",
)

#: Default weights — aligned with the SAFARA issue-cost table (loads are
#: worth ~4 ALU slots, divides and intrinsic calls ~8).
DEFAULT_WEIGHTS: dict[str, float] = {
    "const": 0.5,
    "var": 1.0,
    "load": 4.0,
    "alu": 1.0,
    "mul": 1.5,
    "div": 8.0,
    "call": 8.0,
    "cast": 1.0,
    "select": 2.0,
}


def validate_weights(weights: dict[str, float]) -> dict[str, float]:
    """Merge ``weights`` over the defaults; reject unknown keys and
    non-positive values (a zero-cost operator would make extraction
    insensitive to it and ties meaningless)."""
    unknown = sorted(set(weights) - set(WEIGHT_KEYS))
    if unknown:
        raise ConfigError(
            f"unknown extraction weight keys {unknown} "
            f"(valid keys: {', '.join(WEIGHT_KEYS)})"
        )
    merged = dict(DEFAULT_WEIGHTS)
    for key, value in weights.items():
        value = float(value)
        if not math.isfinite(value) or value <= 0.0:
            raise ConfigError(
                f"extraction weight {key!r} must be a positive finite "
                f"number, got {value!r}"
            )
        merged[key] = value
    return merged


def _node_weight(node: ENode, weights: dict[str, float]) -> float:
    tag = node.tag
    if tag in ("int", "float"):
        return weights["const"]
    if tag == "var":
        return weights["var"]
    if tag == "aref":
        return weights["load"]
    if tag == "bin":
        op = node.payload[0]
        if op == "*":
            return weights["mul"]
        if op in ("/", "%"):
            return weights["div"]
        return weights["alu"]
    if tag == "un":
        return weights["alu"]
    if tag == "call":
        return weights["call"]
    if tag == "cast":
        return weights["cast"]
    if tag == "sel":
        return weights["select"]
    raise TypeError(f"unknown e-node tag {tag!r}")


class Extractor:
    """Solve per-class best costs once, then rebuild exprs for any root.

    Deterministic: classes are relaxed in id order and a candidate only
    replaces the incumbent on a *strictly* lower cost, so the earliest
    inserted e-node — the original source spelling, for classes the
    rules never improved — wins every tie.
    """

    def __init__(self, eg: EGraph, weights: "dict[str, float] | None" = None):
        self.eg = eg
        self.weights = validate_weights(weights or {})
        #: root class id -> fixpoint cost
        self.costs: dict[int, float] = {}
        #: root class id -> chosen e-node (first minimal, insertion order)
        self.chosen: dict[int, ENode] = {}
        self._built: dict[int, Expr] = {}
        self._solve()

    def _node_cost(self, node: ENode) -> float:
        total = _node_weight(node, self.weights)
        seen: list[int] = []
        for child in node.children:
            root = self.eg.find(child)
            if root in seen:
                continue  # shared subtree: count once
            seen.append(root)
            total += self.costs.get(root, math.inf)
        return total

    def _solve(self) -> None:
        # Relax class costs to a fixpoint (costs only ever decrease)...
        changed = True
        while changed:
            changed = False
            for cid in sorted(self.eg.classes):
                best = min(
                    self._node_cost(n) for n in self.eg.classes[cid].nodes
                )
                if best < self.costs.get(cid, math.inf):
                    self.costs[cid] = best
                    changed = True
        bad = sorted(set(self.eg.classes) - set(self.costs))
        if bad:
            raise RuntimeError(
                f"extraction failed to cost classes {bad} "
                "(cycle with no tree-shaped member?)"
            )
        # ...then pick nodes once: the first node (insertion order) that
        # achieves the fixpoint cost, so source spellings win ties.
        for cid in sorted(self.eg.classes):
            target = self.costs[cid]
            for node in self.eg.classes[cid].nodes:
                if self._node_cost(node) <= target:
                    self.chosen[cid] = node
                    break

    def cost_of(self, cid: int) -> float:
        return self.costs[self.eg.find(cid)]

    def expr_of(self, cid: int) -> Expr:
        """The chosen representative of ``cid`` as an interned IR tree."""
        root = self.eg.find(cid)
        cached = self._built.get(root)
        if cached is not None:
            return cached
        expr = self._build(self.chosen[root])
        self._built[root] = expr
        return expr

    def _build(self, node: ENode) -> Expr:
        tag, payload = node.tag, node.payload
        kids = node.children
        if tag == "int":
            e: Expr = IntConst(payload[0], payload[1])
        elif tag == "float":
            e = FloatConst(payload[0], payload[1])
        elif tag == "var":
            e = VarRef(payload[0])
        elif tag == "aref":
            e = ArrayRef(payload[0], tuple(self.expr_of(c) for c in kids))
        elif tag == "bin":
            e = BinOp(payload[0], self.expr_of(kids[0]), self.expr_of(kids[1]))
        elif tag == "un":
            e = UnOp(payload[0], self.expr_of(kids[0]))
        elif tag == "call":
            e = Call(payload[0], tuple(self.expr_of(c) for c in kids))
        elif tag == "cast":
            e = Cast(payload[0], self.expr_of(kids[0]))
        elif tag == "sel":
            e = Select(
                self.expr_of(kids[0]),
                self.expr_of(kids[1]),
                self.expr_of(kids[2]),
            )
        else:
            raise TypeError(f"unknown e-node tag {tag!r}")
        return intern_expr(e)
