"""The region driver: saturate + extract every expression in a region.

One e-graph per offload region — sharing the graph across statements is
the point: two statements spelling the same value differently land in
one e-class, extract to the *same interned tree*, and from then on every
structural consumer (scalar-replacement grouping, codegen value
numbering, the readonly-cache planner) sees them as identical.  The
e-graph proves the equality; the downstream passes cash it in.

Expression slots rewritten: assignment values, array-store subscripts,
local-decl initialisers and branch conditions.  Loop bounds are left
untouched on purpose — they are evaluated once to shape the launch
topology, not per thread, so rewriting them buys nothing and would
perturb the spelling that launch-config cache keys hash over.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..ir.expr import ArrayRef
from ..ir.stmt import Assign, If, LocalDecl, Region, stmt_exprs, walk_stmts
from ..obs.tracer import span as obs_span
from .egraph import EGraph
from .extract import Extractor
from .rules import Rule, default_rules


@dataclass(slots=True)
class EsatReport:
    """What one saturation+extraction run did on a region."""

    #: Expression slots fed to the e-graph.
    exprs: int = 0
    #: Final e-graph size.
    nodes: int = 0
    classes: int = 0
    #: Equalities discovered (union operations).
    unions: int = 0
    #: Rule sweeps executed.
    iterations: int = 0
    #: Reached a fixpoint within the node/iteration bounds.
    saturated: bool = False
    #: Classes holding > 1 distinct source spelling — syntactically
    #: different source expressions proven equal (the SAFARA feed).
    unified_spellings: int = 0
    #: Slots whose extracted tree differs from the original.
    rewritten: int = 0
    #: Array references that are *newly repeated* after extraction —
    #: references SAFARA's reuse analysis sees >= 2 times post-esat but
    #: saw < 2 times pre-esat (``A[i]*2 -> A[i]+A[i]`` duplicates the
    #: load; subscript canonicalisation folds distinct spellings onto one
    #: reference).  Together with :attr:`unified_spellings` these are the
    #: new scalar-replacement candidates the pass feeds downstream.
    new_candidates: int = 0
    #: Did the saturated kernel ship?  The session's register-pressure
    #: guard compiles each region both ways and falls back to the
    #: unsaturated kernel when saturation would not help (False here);
    #: set by the session, not by :func:`saturate_region`.
    applied: bool = True


def saturate_region(
    region: Region,
    *,
    rules: "list[Rule] | None" = None,
    weights: "dict[str, float] | None" = None,
    node_limit: int = 4096,
    iter_limit: int = 8,
) -> EsatReport:
    """Saturate every expression of ``region`` and rewrite in place.

    Returns the :class:`EsatReport`; the region's statements are
    mutated to hold the extracted (interned) representatives.
    """
    eg = EGraph(node_limit=node_limit, iter_limit=iter_limit)
    # (statement, attribute) slots, in deterministic program order.
    slots: list[tuple[object, str, int]] = []
    for stmt in walk_stmts(region.body):
        if isinstance(stmt, Assign):
            slots.append((stmt, "value", eg.add(stmt.value)))
            if isinstance(stmt.target, ArrayRef):
                slots.append((stmt, "target", eg.add(stmt.target)))
        elif isinstance(stmt, LocalDecl) and stmt.init is not None:
            slots.append((stmt, "init", eg.add(stmt.init)))
        elif isinstance(stmt, If):
            slots.append((stmt, "cond", eg.add(stmt.cond)))

    report = EsatReport(exprs=len(slots))
    repeated_before = _repeated_refs(region)
    with obs_span("esat", slots=len(slots)):
        stats = eg.saturate(rules if rules is not None else default_rules())
        report.nodes = stats.nodes
        report.classes = stats.classes
        report.unions = stats.unions
        report.iterations = stats.iterations
        report.saturated = stats.saturated
        report.unified_spellings = eg.unified_classes()

        with obs_span("esat.extract", classes=stats.classes):
            extractor = Extractor(eg, weights)
            for stmt, attr, cid in slots:
                old = getattr(stmt, attr)
                new = extractor.expr_of(cid)
                if attr == "target" and not (
                    isinstance(new, ArrayRef) and new.sym is old.sym
                ):
                    continue  # never let a store target change shape
                if new is not old and new != old:
                    setattr(stmt, attr, new)
                    report.rewritten += 1
    report.new_candidates = len(_repeated_refs(region) - repeated_before)
    return report


def _repeated_refs(region: Region) -> "set[ArrayRef]":
    """Array references occurring at least twice in the region — the
    shapes SAFARA's reuse analysis groups into replacement candidates."""
    counts: Counter = Counter()
    for stmt in walk_stmts(region.body):
        for e in stmt_exprs(stmt):
            for node in e.walk():
                if isinstance(node, ArrayRef):
                    counts[node] += 1
    return {ref for ref, n in counts.items() if n >= 2}
