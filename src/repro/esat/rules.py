"""The rewrite-rule catalog for equality saturation.

Every rule is **bit-exact**: it equates expressions that evaluate to the
same value — same bits, not merely the same real number — under the
execution semantics shared by the scalar interpreter and the vectorized
engine (exact Python integers with C truncating division; IEEE-754
binary64 for floats; ``pow`` is the correctly-rounded libm ``pow``).
That discipline is what lets extraction pick *any* representative and
still reproduce the unsaturated program's output exactly (the scalar-
oracle property test over the full benchmark suite).

What is deliberately **not** here, and why:

* float associativity / distribution — reassociation changes rounding;
* ``x + 0.0`` / ``x * 0.0`` for floats — ``-0.0 + 0.0`` is ``+0.0``,
  and ``NaN * 0.0`` is ``NaN``, not ``0.0``;
* ``x / c -> x * (1/c)`` for a general constant — only exact when ``c``
  is a power of two (binary scaling commutes with rounding);
* ``pow(x, n) -> x * x * ...`` for ``n >= 3`` — the mul chain rounds
  twice, the correctly-rounded ``pow`` once, and they differ by an ulp
  on real inputs; only ``n == 2`` (one rounding each) is exact.

Each rule implements ``apply(egraph, cid, node) -> list[int]``: class
ids provably equal to ``cid``.  Rules construct new nodes through
:meth:`~repro.esat.egraph.EGraph.add_node` only — building is how an
e-graph explores, union is decided by the saturation driver.
"""

from __future__ import annotations

import math

from ..ir.types import I32, ScalarType
from .egraph import EGraph, ENode

#: Operators the commutativity / associativity rules touch.
_COMM_OPS = ("+", "*")


def _const_of(eg: EGraph, cid: int) -> "tuple[object, ScalarType] | None":
    """The (value, stype) of a constant member of class ``cid``, if any."""
    for node in eg.classes[eg.find(cid)].nodes:
        if node.tag in ("int", "float"):
            return node.payload
    return None


def _int_const(eg: EGraph, cid: int) -> "int | None":
    got = _const_of(eg, cid)
    if got is not None and isinstance(got[0], int):
        return got[0]
    return None


def _is_int(eg: EGraph, cid: int) -> bool:
    return not eg.stype(cid).is_float


def _bin(eg: EGraph, op: str, left: int, right: int) -> int:
    return eg.add_node(ENode("bin", (op,), (left, right)))


def _iconst(eg: EGraph, value: int, stype: ScalarType = I32) -> int:
    return eg.add_node(ENode("int", (value, stype), ()))


def _fconst(eg: EGraph, value: float, stype: ScalarType) -> int:
    return eg.add_node(ENode("float", (value, stype), ()))


class Rule:
    """Base: a named bit-exact rewrite."""

    name: str = "rule"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.name}>"


class Commute(Rule):
    """``a + b = b + a``, ``a * b = b * a`` — IEEE addition and
    multiplication are commutative bit-for-bit (both orders round the
    same exact product/sum), so this holds for floats too."""

    name = "commute"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "bin" or node.payload[0] not in _COMM_OPS:
            return []
        left, right = node.children
        return [_bin(eg, node.payload[0], right, left)]


class AssociateInt(Rule):
    """``(a op b) op c = a op (b op c)`` for integer ``+``/``*`` only —
    exact integers reassociate freely; floats do not."""

    name = "assoc-int"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "bin" or node.payload[0] not in _COMM_OPS:
            return []
        if not _is_int(eg, cid):
            return []
        op = node.payload[0]
        left, right = node.children
        out = []
        for inner in eg.classes[eg.find(left)].nodes:
            if inner.tag == "bin" and inner.payload[0] == op:
                a, b = inner.children
                out.append(_bin(eg, op, a, _bin(eg, op, b, right)))
        return out


class FoldInt(Rule):
    """Integer constant folding: ``+``, ``-``, ``*``, unary ``-``, and
    ``/`` under C truncation-toward-zero (the interpreter's rule)."""

    name = "fold-int"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag == "un" and node.payload[0] == "-":
            got = _const_of(eg, node.children[0])
            if got is not None and isinstance(got[0], int):
                return [_iconst(eg, -got[0], got[1])]
            return []
        if node.tag != "bin":
            return []
        op = node.payload[0]
        if op not in ("+", "-", "*", "/"):
            return []
        lv = _const_of(eg, node.children[0])
        rv = _const_of(eg, node.children[1])
        if lv is None or rv is None:
            return []
        (a, at), (b, _bt) = lv, rv
        if not (isinstance(a, int) and isinstance(b, int)):
            return []
        if op == "+":
            return [_iconst(eg, a + b, at)]
        if op == "-":
            return [_iconst(eg, a - b, at)]
        if op == "*":
            return [_iconst(eg, a * b, at)]
        if b == 0:
            return []
        q = abs(a) // abs(b)
        return [_iconst(eg, q if (a >= 0) == (b >= 0) else -q, at)]


class Identity(Rule):
    """Identity and annihilator elements:

    * ``x * 1 = x`` and ``x / 1 = x`` — exact for floats too (scaling by
      one is the identity on every IEEE value, signed zeros included);
    * ``x + 0 = x``, ``x - 0 = x``, ``x * 0 = 0``, ``x - x = 0`` —
      **integers only** (``-0.0 + 0.0`` flips the zero sign; ``NaN - NaN``
      is ``NaN``).
    """

    name = "identity"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "bin":
            return []
        op = node.payload[0]
        left, right = node.children
        rc = _const_of(eg, right)
        rval = rc[0] if rc is not None else None
        if op in ("*", "/") and rval == 1 and not isinstance(rval, bool):
            return [left]
        if not _is_int(eg, cid):
            return []
        out = []
        if op in ("+", "-") and rval == 0:
            out.append(left)
        if op == "*" and rval == 0:
            out.append(_iconst(eg, 0, eg.stype(cid)))
        if op == "-" and eg.find(left) == eg.find(right):
            out.append(_iconst(eg, 0, eg.stype(cid)))
        return out


class MulTwo(Rule):
    """``x * 2 = x + x`` — exact for integers *and* floats (both spell
    the same exactly-representable doubling).  The extractor's shared-
    subtree costing prefers ``x + x``, which turns a lone ``2 * A[i]``
    into a second ``A[i]`` occurrence — a new scalar-replacement
    candidate (the ACC Saturator observation)."""

    name = "mul-two"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "bin" or node.payload[0] != "*":
            return []
        left, right = node.children
        rc = _const_of(eg, right)
        if rc is not None and rc[0] == 2 and not isinstance(rc[0], bool):
            return [_bin(eg, "+", left, left)]
        if rc is not None and rc[0] == 2.0 and isinstance(rc[0], float):
            return [_bin(eg, "+", left, left)]
        return []


class DivPow2(Rule):
    """``x / c = x * (1/c)`` for a float power-of-two constant ``c`` —
    binary scaling commutes with IEEE rounding, so this is the one
    div-to-mul strength reduction that stays bit-exact."""

    name = "div-pow2"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "bin" or node.payload[0] != "/":
            return []
        if not eg.stype(cid).is_float:
            return []
        got = _const_of(eg, node.children[1])
        if got is None or not isinstance(got[0], float):
            return []
        c, ctype = got
        if c == 0.0 or not math.isfinite(c):
            return []
        mantissa, _exp = math.frexp(c)
        if abs(mantissa) != 0.5:
            return []
        inv = 1.0 / c
        if not math.isfinite(inv) or inv == 0.0:
            return []
        return [_bin(eg, "*", node.children[0], _fconst(eg, inv, ctype))]


class DivCancel(Rule):
    """``(x * c) / c = x`` for a nonzero integer constant ``c`` — the
    product is exact (Python integers), so truncating division undoes
    it.  This is the rule that re-unifies obfuscated subscripts like
    ``a[(i * 4) / 4]`` with ``a[i]`` and hands the reuse analysis a
    candidate it could not see."""

    name = "div-cancel"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "bin" or node.payload[0] != "/":
            return []
        if not _is_int(eg, cid):
            return []
        c = _int_const(eg, node.children[1])
        if c is None or c == 0:
            return []
        out = []
        for inner in eg.classes[eg.find(node.children[0])].nodes:
            if inner.tag == "bin" and inner.payload[0] == "*":
                if _int_const(eg, inner.children[1]) == c:
                    out.append(inner.children[0])
                if _int_const(eg, inner.children[0]) == c:
                    out.append(inner.children[1])
        return out


class PowSquare(Rule):
    """``pow(x, 2) = x * x`` and ``pow(x, 1) = x``.

    Exactness argument for the square: libm ``pow`` is correctly
    rounded and ``x * x`` is the correctly rounded square, so both
    produce the same double.  The chain stops here — ``x * x * x``
    rounds twice and differs from ``pow(x, 3)`` by an ulp on real
    inputs, so no rule equates them.
    """

    name = "pow-square"

    def apply(self, eg: EGraph, cid: int, node: ENode) -> list[int]:
        if node.tag != "call" or node.payload[0] != "pow":
            return []
        if len(node.children) != 2:
            return []
        base, exponent = node.children
        got = _const_of(eg, exponent)
        if got is None:
            return []
        value = got[0]
        if isinstance(value, bool) or value not in (1, 1.0, 2, 2.0):
            return []
        if value in (1, 1.0):
            if eg.stype(base).is_float:
                return [base]
            return []
        if not eg.stype(base).is_float:
            return []
        return [_bin(eg, "*", base, base)]
    # pow promotes integer args to double, so the bare-base forms only
    # apply when the base is already a double (no hidden cast).


def default_rules() -> list[Rule]:
    """The catalog, in its canonical (deterministic) application order."""
    return [
        FoldInt(),
        Identity(),
        Commute(),
        AssociateInt(),
        MulTwo(),
        DivPow2(),
        DivCancel(),
        PowSquare(),
    ]
