"""The single source of truth for execution-tier selection.

Executor choice used to be stringly-typed in three places (the CLI
``--executor`` flag, ``CompilerSession``, and the serve ``run`` op), each
with its own ad-hoc validation.  This module owns the enum and the
parser; every layer routes through :func:`parse_executor` so an unknown
value fails the same way everywhere — a :class:`~repro.errors.ConfigError`
naming the valid executors.

Tiers (fastest first):

``codegen``
    Generated straight-line NumPy source (:mod:`repro.codegen.numpy_source`),
    ``exec``'d once and cached as a function object.
``vector``
    The interpreting vectorized engine (:mod:`repro.gpu.vector_exec`).
``scalar``
    The reference scalar interpreter (:mod:`repro.gpu.interpreter`).
``auto``
    Try ``codegen``, fall back down the ladder on unsupported plans.
"""

from __future__ import annotations

import enum

from .errors import ConfigError

__all__ = ["Executor", "EXECUTOR_NAMES", "parse_executor"]


class Executor(str, enum.Enum):
    """Execution tier.  A ``str`` subclass so legacy string comparisons
    (``executor == "vector"``) and JSON serialisation keep working."""

    AUTO = "auto"
    CODEGEN = "codegen"
    VECTOR = "vector"
    SCALAR = "scalar"

    def __str__(self) -> str:  # repr-stability for logs / traces
        return self.value


#: Valid ``--executor`` values in ladder order (``auto`` first).
EXECUTOR_NAMES: tuple[str, ...] = tuple(e.value for e in Executor)


def parse_executor(value: "str | Executor | None", *, default: Executor = Executor.AUTO) -> Executor:
    """Map a user-supplied executor name onto the enum.

    ``None`` selects ``default``.  Unknown names raise
    :class:`~repro.errors.ConfigError` listing the valid executors, so the
    CLI, ``CompilerSession`` and the serve protocol all reject bad input
    with the same message.
    """
    if value is None:
        return default
    if isinstance(value, Executor):
        return value
    try:
        return Executor(value)
    except ValueError:
        valid = ", ".join(EXECUTOR_NAMES)
        raise ConfigError(
            f"unknown executor {value!r}: valid executors are {valid}"
        ) from None
