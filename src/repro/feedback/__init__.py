"""Register-usage feedback: the PTXAS-info loop driving SAFARA, plus the
failure semantics (deadlines, transient/permanent taxonomy, fault
injection) the serving broker builds on."""

from .driver import (
    FeedbackCompiler,
    FeedbackError,
    FeedbackTimeout,
    PermanentFeedbackError,
    TransientFeedbackError,
    backend_latency,
    classify_failure,
    deadline_scope,
    fault_scope,
    latency_scope,
    optimize_region,
)

__all__ = [
    "FeedbackCompiler",
    "FeedbackError",
    "FeedbackTimeout",
    "PermanentFeedbackError",
    "TransientFeedbackError",
    "backend_latency",
    "classify_failure",
    "deadline_scope",
    "fault_scope",
    "latency_scope",
    "optimize_region",
]
