"""Register-usage feedback: the PTXAS-info loop driving SAFARA."""

from .driver import FeedbackCompiler, optimize_region

__all__ = ["FeedbackCompiler", "optimize_region"]
