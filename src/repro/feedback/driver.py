"""The compile → assemble → feed-back loop (paper Section III-B.2).

``FeedbackCompiler`` is the bridge SAFARA needs: each call lowers the
region's *current* IR to VIR, runs the ptxas-simulator, and returns the
``PTXAS Info`` record.  The history of reports is kept so experiments can
show the iteration-by-iteration register climb the paper describes
("backend compilation is performed multiple times").

Because a real assembler is an *external* tool — it can hang, crash, or
fail transiently — the driver also carries the failure semantics the
serving broker (:mod:`repro.serve.broker`) builds on:

* a **deadline**: :func:`deadline_scope` installs a thread-local
  monotonic deadline; every backend invocation checks it first and raises
  :class:`FeedbackTimeout` once it passes, so a hung feedback loop cannot
  hold a worker forever;
* a **failure taxonomy**: :class:`TransientFeedbackError` (worth
  retrying: the tool was busy, the machine was loaded) vs
  :class:`PermanentFeedbackError` (retrying is pointless: the input is
  bad).  :func:`classify_failure` maps arbitrary exceptions onto it —
  the broker retries transients with backoff and fails permanents fast;
* a **fault-injection point**: :func:`fault_scope` installs a
  thread-local hook called before each backend run.  Tests and chaos
  drills inject timeouts and crashes exactly where a real ptxas would
  produce them, without touching compiler code.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from contextlib import contextmanager
from typing import Callable, Iterator

from ..analysis.cost_model import LatencyModel
from ..codegen.kernelgen import CodegenOptions, generate_kernel
from ..errors import ReproError
from ..gpu.arch import GpuArch, KEPLER_K20XM
from ..gpu.registers import PtxasInfo, ptxas_info
from ..ir.stmt import Region
from ..ir.symbols import SymbolTable
from ..obs.tracer import span
from ..transforms.safara import SafaraReport


class FeedbackError(ReproError):
    """Base of every backend-invocation failure (part of the unified
    :class:`~repro.errors.ReproError` hierarchy)."""


class TransientFeedbackError(FeedbackError):
    """The backend failed in a way worth retrying (busy tool, load spike)."""


class PermanentFeedbackError(FeedbackError):
    """The backend rejected the input; retrying cannot succeed."""


class FeedbackTimeout(TransientFeedbackError):
    """The thread's deadline passed mid-feedback-loop (see
    :func:`deadline_scope`).  Transient: a retry gets a fresh budget."""


#: Exception types (beyond the explicit taxonomy) treated as transient:
#: OS-level hiccups an external assembler produces under load.
_TRANSIENT_TYPES = (TimeoutError, InterruptedError, ConnectionError, BlockingIOError)


def classify_failure(exc: BaseException) -> str:
    """``"transient"`` (retry with backoff) or ``"permanent"`` (fail fast).

    Unknown exceptions are permanent: retrying a deterministic compiler
    on the same input reproduces the same crash.
    """
    if isinstance(exc, TransientFeedbackError):
        return "transient"
    if isinstance(exc, PermanentFeedbackError):
        return "permanent"
    if isinstance(exc, _TRANSIENT_TYPES):
        return "transient"
    return "permanent"


_local = threading.local()


@contextmanager
def deadline_scope(deadline: float | None) -> Iterator[None]:
    """Install a ``time.monotonic()`` deadline for this thread's backend
    invocations; ``None`` is a no-op.  Scopes nest — the inner (sooner)
    deadline wins while active."""
    if deadline is None:
        yield
        return
    previous = getattr(_local, "deadline", None)
    _local.deadline = deadline if previous is None else min(deadline, previous)
    try:
        yield
    finally:
        _local.deadline = previous


#: Process-wide fault-injection hook (faults are injected from *outside*
#: the worker threads that hit them — a test or chaos drill installs the
#: hook; every backend invocation in the process sees it).
_fault_hook: Callable[[str, int], None] | None = None


@contextmanager
def fault_scope(hook: Callable[[str, int], None]) -> Iterator[None]:
    """Install a process-wide fault-injection hook for the scope.

    ``hook(kernel_name, iteration)`` runs before each backend invocation
    — on whichever thread performs it — and may raise, typically
    :class:`TransientFeedbackError` or :class:`FeedbackTimeout`, to
    simulate an external-assembler failure.  Scopes restore the previous
    hook on exit; keep compiles that should see the faults inside the
    scope.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    try:
        yield
    finally:
        _fault_hook = previous


#: Process-wide simulated backend latency (seconds per invocation).  The
#: in-process ptxas model answers in microseconds; a real external
#: assembler takes tens of milliseconds.  Benchmarks install a latency to
#: measure how well fan-out layers (``compile_many``, the autotuner)
#: overlap backend stalls across workers.
_latency_s: float = 0.0


@contextmanager
def latency_scope(seconds: float) -> Iterator[None]:
    """Simulate external-assembler latency for the scope (process-wide).

    Every backend invocation inside the scope sleeps ``seconds`` before
    answering, on whichever thread performs it.  Scopes restore the
    previous latency on exit.
    """
    global _latency_s
    previous = _latency_s
    _latency_s = float(seconds)
    try:
        yield
    finally:
        _latency_s = previous


def backend_latency() -> None:
    """Stall for the installed simulated backend latency (no-op by
    default); backend call sites invoke this next to the real work."""
    if _latency_s > 0.0:
        time.sleep(_latency_s)


def current_deadline() -> float | None:
    """This thread's active backend deadline (``time.monotonic()``-based),
    or ``None``.  Fan-out layers (``CompilerSession.compile_many``, the
    autotuner) read it here to re-install the caller's deadline inside
    their worker threads — :func:`deadline_scope` is thread-local."""
    return getattr(_local, "deadline", None)


def check_deadline() -> None:
    """Raise :class:`FeedbackTimeout` if this thread's deadline passed."""
    deadline = getattr(_local, "deadline", None)
    if deadline is not None and time.monotonic() > deadline:
        raise FeedbackTimeout(
            f"feedback deadline exceeded by "
            f"{(time.monotonic() - deadline) * 1000.0:.1f} ms"
        )


@dataclass(slots=True)
class FeedbackCompiler:
    """Callable register-feedback oracle over the simulated backend."""

    symtab: SymbolTable
    options: CodegenOptions = field(default_factory=CodegenOptions)
    arch: GpuArch = KEPLER_K20XM
    register_limit: int | None = None
    name: str | None = None
    history: list[PtxasInfo] = field(default_factory=list)

    def __call__(self, region: Region) -> PtxasInfo:
        check_deadline()
        hook = _fault_hook
        if hook is not None:
            hook(self.name or "<region>", len(self.history))
        backend_latency()
        with span(
            "ptxas",
            kernel=self.name or "<region>",
            iteration=len(self.history),
        ) as sp:
            kernel = generate_kernel(
                region, self.symtab, self.options, name=self.name
            )
            info = ptxas_info(kernel, self.arch, self.register_limit)
            sp.set(registers=info.registers, spill_bytes=info.spill_bytes)
        self.history.append(info)
        return info

    @property
    def compilations(self) -> int:
        """Backend invocations so far (each one is a 'ptxas run')."""
        return len(self.history)


def optimize_region(
    region: Region,
    symtab: SymbolTable,
    options: CodegenOptions | None = None,
    *,
    arch: GpuArch = KEPLER_K20XM,
    register_limit: int | None = None,
    latency: LatencyModel | None = None,
    name: str | None = None,
) -> tuple[SafaraReport, FeedbackCompiler]:
    """Run the full SAFARA feedback optimisation on one region.

    Returns the SAFARA trace and the feedback compiler (whose ``history``
    holds every intermediate PTXAS report).  Deprecated shim over the
    default :class:`~repro.compiler.session.CompilerSession` (whose pass
    pipeline runs the same loop as its ``safara`` pass).
    """
    from .._compat import warn_legacy
    from ..compiler.session import default_session

    warn_legacy("optimize_region", "CompilerSession.optimize_region()")

    return default_session().optimize_region(
        region,
        symtab,
        options=options,
        arch=arch,
        register_limit=register_limit,
        latency=latency,
        name=name,
    )
