"""The compile → assemble → feed-back loop (paper Section III-B.2).

``FeedbackCompiler`` is the bridge SAFARA needs: each call lowers the
region's *current* IR to VIR, runs the ptxas-simulator, and returns the
``PTXAS Info`` record.  The history of reports is kept so experiments can
show the iteration-by-iteration register climb the paper describes
("backend compilation is performed multiple times").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.cost_model import LatencyModel
from ..codegen.kernelgen import CodegenOptions, generate_kernel
from ..gpu.arch import GpuArch, KEPLER_K20XM
from ..gpu.registers import PtxasInfo, ptxas_info
from ..ir.stmt import Region
from ..ir.symbols import SymbolTable
from ..obs.tracer import span
from ..transforms.safara import SafaraReport


@dataclass(slots=True)
class FeedbackCompiler:
    """Callable register-feedback oracle over the simulated backend."""

    symtab: SymbolTable
    options: CodegenOptions = field(default_factory=CodegenOptions)
    arch: GpuArch = KEPLER_K20XM
    register_limit: int | None = None
    name: str | None = None
    history: list[PtxasInfo] = field(default_factory=list)

    def __call__(self, region: Region) -> PtxasInfo:
        with span(
            "ptxas",
            kernel=self.name or "<region>",
            iteration=len(self.history),
        ) as sp:
            kernel = generate_kernel(
                region, self.symtab, self.options, name=self.name
            )
            info = ptxas_info(kernel, self.arch, self.register_limit)
            sp.set(registers=info.registers, spill_bytes=info.spill_bytes)
        self.history.append(info)
        return info

    @property
    def compilations(self) -> int:
        """Backend invocations so far (each one is a 'ptxas run')."""
        return len(self.history)


def optimize_region(
    region: Region,
    symtab: SymbolTable,
    options: CodegenOptions | None = None,
    *,
    arch: GpuArch = KEPLER_K20XM,
    register_limit: int | None = None,
    latency: LatencyModel | None = None,
    name: str | None = None,
) -> tuple[SafaraReport, FeedbackCompiler]:
    """Run the full SAFARA feedback optimisation on one region.

    Returns the SAFARA trace and the feedback compiler (whose ``history``
    holds every intermediate PTXAS report).  Shim over the default
    :class:`~repro.compiler.session.CompilerSession` (whose pass pipeline
    runs the same loop as its ``safara`` pass).
    """
    from ..compiler.session import default_session

    return default_session().optimize_region(
        region,
        symtab,
        options=options,
        arch=arch,
        register_limit=register_limit,
        latency=latency,
        name=name,
    )
