"""The simulated GPU substrate: architecture models, the ptxas-simulator
register allocator, occupancy/memory/timing models, latency microbenchmarks
and the functional interpreter."""

from .arch import (
    ARCHES,
    CDNA2_MI250,
    FERMI_LIKE,
    KEPLER_K20XM,
    ArchRegistry,
    GpuArch,
    arch_key,
    get_arch,
    list_archs,
    register_arch,
)
from .device import (
    LaunchRecord,
    SimulatedDevice,
    TransferEstimate,
    estimate_transfers,
)
from .interpreter import (
    ExecutionStats,
    Interpreter,
    InterpreterError,
    numpy_dtype,
    run_kernel,
)
from .memory import access_latency, warp_transaction_bytes, warp_transactions
from .vector_exec import (
    ExecutionInfo,
    VectorInterpreter,
    VectorUnsupported,
    execute_kernel,
)
from .microbench import LatencyMeasurement, measure_all, measure_latency
from .occupancy import Occupancy, compute_occupancy
from .registers import (
    AllocationResult,
    LiveInterval,
    PtxasInfo,
    allocate,
    compute_live_intervals,
    max_pressure,
    ptxas_info,
)
from .timing import KernelTiming, ThreadProfile, estimate_time, profile_thread

__all__ = [
    "ARCHES",
    "AllocationResult",
    "ArchRegistry",
    "CDNA2_MI250",
    "ExecutionInfo",
    "ExecutionStats",
    "FERMI_LIKE",
    "GpuArch",
    "arch_key",
    "get_arch",
    "list_archs",
    "register_arch",
    "Interpreter",
    "InterpreterError",
    "KEPLER_K20XM",
    "KernelTiming",
    "LaunchRecord",
    "SimulatedDevice",
    "TransferEstimate",
    "VectorInterpreter",
    "VectorUnsupported",
    "estimate_transfers",
    "execute_kernel",
    "LatencyMeasurement",
    "LiveInterval",
    "Occupancy",
    "PtxasInfo",
    "ThreadProfile",
    "access_latency",
    "allocate",
    "compute_live_intervals",
    "compute_occupancy",
    "estimate_time",
    "max_pressure",
    "measure_all",
    "measure_latency",
    "numpy_dtype",
    "profile_thread",
    "ptxas_info",
    "run_kernel",
    "warp_transaction_bytes",
    "warp_transactions",
]
