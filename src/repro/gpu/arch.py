"""GPU architecture descriptions.

``KEPLER_K20XM`` models the paper's evaluation device (Tesla K20Xm,
Section V-A): SMX counts, register files, occupancy limits and the memory
latencies/bandwidths the timing model and the SAFARA cost model consume.
Latency figures follow the Wong et al. microbenchmarking methodology the
paper cites ([19]) applied to Kepler-class parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.cost_model import LatencyModel


@dataclass(frozen=True, slots=True)
class GpuArch:
    """Static description of one GPU generation."""

    name: str
    num_sms: int
    #: 32-bit registers per SM.
    registers_per_sm: int
    #: Hard per-thread register limit (255 on Kepler — Section II-B).
    max_registers_per_thread: int
    #: Register allocation granularity (regs rounded up per thread).
    register_granularity: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int
    shared_mem_per_sm: int
    #: Clock in MHz (for converting cycles to seconds).
    clock_mhz: float
    #: Global memory bandwidth in GB/s.
    mem_bandwidth_gbs: float
    #: Single-precision CUDA cores per SM (f64 throughput is a fraction).
    cores_per_sm: int
    f64_throughput_ratio: float
    has_readonly_cache: bool
    #: Memory transaction size in bytes (L2 segment).
    transaction_bytes: int
    latency: LatencyModel = field(default_factory=LatencyModel)

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def round_registers(self, regs: int) -> int:
        """ptxas rounds per-thread register counts to the allocation
        granularity."""
        g = self.register_granularity
        return ((max(regs, 1) + g - 1) // g) * g


#: The paper's evaluation GPU (Tesla K20Xm, GK110).
KEPLER_K20XM = GpuArch(
    name="Tesla K20Xm",
    num_sms=14,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_granularity=4,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_size=32,
    shared_mem_per_sm=48 * 1024,
    clock_mhz=732.0,
    mem_bandwidth_gbs=250.0,
    cores_per_sm=192,
    f64_throughput_ratio=1.0 / 3.0,
    has_readonly_cache=True,
    transaction_bytes=128,
    latency=LatencyModel(
        global_mem=440.0,
        readonly_cache=160.0,
        constant_cache=48.0,
        shared_mem=48.0,
        local_mem=440.0,
        uncoalesced_factor=8.0,
    ),
)

#: A pre-Kepler profile (no read-only cache, 63-register limit) — used by
#: tests and the ablation benches to show the algorithm adapts to the
#: architecture description.
FERMI_LIKE = GpuArch(
    name="Fermi-class",
    num_sms=16,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    register_granularity=4,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    max_blocks_per_sm=8,
    warp_size=32,
    shared_mem_per_sm=48 * 1024,
    clock_mhz=1150.0,
    mem_bandwidth_gbs=144.0,
    cores_per_sm=32,
    f64_throughput_ratio=0.5,
    has_readonly_cache=False,
    transaction_bytes=128,
    latency=LatencyModel(
        global_mem=550.0,
        readonly_cache=550.0,
        constant_cache=48.0,
        shared_mem=50.0,
        local_mem=550.0,
        uncoalesced_factor=8.0,
    ),
)
