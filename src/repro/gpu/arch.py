"""GPU architecture descriptions and the pluggable profile registry.

``GpuArch`` is the single source of every hardware quantity the models
consume: the register allocator (:mod:`repro.gpu.registers`), occupancy
(:mod:`repro.gpu.occupancy`), the transaction model
(:mod:`repro.gpu.memory`) and the timing model (:mod:`repro.gpu.timing`)
read *only* these fields — no Kepler constant is hard-wired downstream,
so registering a new profile retargets the whole toolchain.

Two register/occupancy models are expressible:

* **per-SM warp-granule** (NVIDIA Kepler/Fermi): registers are drawn from
  one per-SM file, allocated per warp in ``register_warp_granule``-sized
  granules (256 on Kepler);
* **per-SIMD wavefront** (AMD CDNA2): each SM (Compute Unit) has
  ``simds_per_sm`` SIMDs, each with its own ``registers_per_simd``-entry
  per-lane VGPR file and ``wavefront_slots_per_simd`` wavefront slots.
  Selected by setting ``registers_per_simd``; occupancy is then
  ``min(slots, vgpr_file // rounded_vgprs)`` wavefronts per SIMD — the
  CDNA2 rule of 4 slot sets × 8 wavefronts = 32 wavefronts per CU.

``KEPLER_K20XM`` models the paper's evaluation device (Tesla K20Xm,
Section V-A); ``CDNA2_MI250`` models one GCD of an AMD Instinct MI250
with the MI200-series occupancy/VGPR rules (64-wide wavefronts, 512
per-lane VGPRs per SIMD with the architected/AGPR split capping a kernel
at 256 architected VGPRs).  Latency figures follow the Wong et al.
microbenchmarking methodology the paper cites ([19]).

Profiles are published through :data:`ARCHES`, an :class:`ArchRegistry`
mapping kebab-case names (``kepler-k20xm``, ``fermi-like``,
``cdna2-mi250``) and their aliases to profiles; ``CompilerConfig`` and
the serve/tune layers resolve arch *names* through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.cost_model import LatencyModel
from ..errors import ConfigError


@dataclass(frozen=True, slots=True)
class GpuArch:
    """Static description of one GPU generation."""

    name: str
    num_sms: int
    #: 32-bit registers per SM (per Compute Unit on AMD: the sum over its
    #: SIMDs' per-lane files × lanes).
    registers_per_sm: int
    #: Hard per-thread register limit (255 on Kepler — Section II-B; 256
    #: architected VGPRs on CDNA2, the rest of the file being AGPRs).
    max_registers_per_thread: int
    #: Register allocation granularity (regs rounded up per thread/lane).
    register_granularity: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    #: SIMT execution width: CUDA warp (32) or AMD wavefront (64).
    warp_size: int
    shared_mem_per_sm: int
    #: Clock in MHz (for converting cycles to seconds).
    clock_mhz: float
    #: Global memory bandwidth in GB/s.
    mem_bandwidth_gbs: float
    #: Single-precision cores per SM (f64 throughput is a fraction).
    cores_per_sm: int
    f64_throughput_ratio: float
    has_readonly_cache: bool
    #: Memory transaction size in bytes (L2 segment / cache line).
    transaction_bytes: int
    #: Sector size for scattered (uncoalesced) accesses.
    sector_bytes: int = 32
    #: Warp-instruction schedulers per SM (Kepler SMX: 4; CDNA2: one per
    #: SIMD).  The compute bound divides issue cycles by this.
    schedulers_per_sm: int = 4
    #: Wavefront-slot structure: SIMDs per SM/CU.  1 models a unified
    #: per-SM warp pool (NVIDIA); CDNA2 CUs have 4 SIMDs.
    simds_per_sm: int = 1
    #: Wavefront slots per SIMD (8 on CDNA2 → 32 wavefronts/CU).  ``None``
    #: derives the slot count from ``max_threads_per_sm``.
    wavefront_slots_per_simd: int | None = None
    #: Per-lane VGPR file size per SIMD, shared by its resident
    #: wavefronts (512 on CDNA2).  Setting this selects the per-SIMD
    #: register-occupancy model; ``None`` selects the per-SM model.
    registers_per_simd: int | None = None
    #: Per-warp register allocation granule of the per-SM model (Kepler
    #: allocates registers per warp in 256-register granules).
    register_warp_granule: int = 256
    latency: LatencyModel = field(default_factory=LatencyModel)

    @property
    def max_warps_per_sm(self) -> int:
        by_threads = self.max_threads_per_sm // self.warp_size
        if self.wavefront_slots_per_simd is not None:
            return min(by_threads, self.simds_per_sm * self.wavefront_slots_per_simd)
        return by_threads

    def round_registers(self, regs: int) -> int:
        """The assembler rounds per-thread register counts to the
        allocation granularity."""
        g = self.register_granularity
        return ((max(regs, 1) + g - 1) // g) * g

    def waves_per_simd(self, registers_per_thread: int) -> int:
        """Wavefronts resident per SIMD at a per-lane register count
        (per-SIMD model only): ``min(slots, file // rounded_regs)`` —
        the CDNA2 occupancy rule."""
        if self.registers_per_simd is None:
            raise ValueError(
                f"{self.name}: waves_per_simd() needs the per-SIMD register "
                "model (registers_per_simd is not set)"
            )
        slots = self.wavefront_slots_per_simd or (
            self.max_warps_per_sm // max(self.simds_per_sm, 1)
        )
        regs = self.round_registers(registers_per_thread)
        return max(0, min(slots, self.registers_per_simd // regs))


#: The paper's evaluation GPU (Tesla K20Xm, GK110).
KEPLER_K20XM = GpuArch(
    name="Tesla K20Xm",
    num_sms=14,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    register_granularity=4,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_size=32,
    shared_mem_per_sm=48 * 1024,
    clock_mhz=732.0,
    mem_bandwidth_gbs=250.0,
    cores_per_sm=192,
    f64_throughput_ratio=1.0 / 3.0,
    has_readonly_cache=True,
    transaction_bytes=128,
    schedulers_per_sm=4,
    latency=LatencyModel(
        global_mem=440.0,
        readonly_cache=160.0,
        constant_cache=48.0,
        shared_mem=48.0,
        local_mem=440.0,
        uncoalesced_factor=8.0,
    ),
)

#: A pre-Kepler profile (no read-only cache, 63-register limit) — used by
#: tests and the ablation benches to show the algorithm adapts to the
#: architecture description.
FERMI_LIKE = GpuArch(
    name="Fermi-class",
    num_sms=16,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    register_granularity=4,
    max_threads_per_sm=1536,
    max_threads_per_block=1024,
    max_blocks_per_sm=8,
    warp_size=32,
    shared_mem_per_sm=48 * 1024,
    clock_mhz=1150.0,
    mem_bandwidth_gbs=144.0,
    cores_per_sm=32,
    f64_throughput_ratio=1.0 / 3.0,
    has_readonly_cache=False,
    transaction_bytes=128,
    schedulers_per_sm=2,
    latency=LatencyModel(
        global_mem=550.0,
        readonly_cache=550.0,
        constant_cache=48.0,
        shared_mem=50.0,
        local_mem=550.0,
        uncoalesced_factor=8.0,
    ),
)

#: One GCD of an AMD Instinct MI250 (CDNA2, gfx90a) under the MI200
#: occupancy/register rules: 64-wide wavefronts, 4 SIMDs per CU with 8
#: wavefront slots each (32 wavefronts/CU), a 512-entry per-lane VGPR
#: file per SIMD shared by its resident wavefronts, and the
#: architected/AGPR split capping a kernel at 256 architected VGPRs.
#: The allocation granularity of 2 reproduces the published occupancy
#: tiers exactly: 64→8, 72→7, 84→6, 102→5, 128→4, 170→3, 256→2
#: wavefronts per SIMD (asserted in tests/gpu/test_arch_registry.py and
#: gated by the ``fleet`` row of benchmarks/regress.py).
CDNA2_MI250 = GpuArch(
    name="AMD Instinct MI250 (CDNA2 GCD)",
    num_sms=104,
    registers_per_sm=4 * 512 * 64,  # 4 SIMDs x 512 per-lane VGPRs x 64 lanes
    max_registers_per_thread=256,
    register_granularity=2,
    max_threads_per_sm=2048,  # 32 wavefronts x 64 lanes
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_size=64,
    shared_mem_per_sm=64 * 1024,  # LDS
    clock_mhz=1700.0,
    mem_bandwidth_gbs=1638.0,  # HBM2e, per GCD
    cores_per_sm=64,
    f64_throughput_ratio=1.0,  # CDNA2 runs FP64 at full vector rate
    has_readonly_cache=False,
    transaction_bytes=64,  # gfx90a cache line
    sector_bytes=32,
    schedulers_per_sm=4,  # one scheduler per SIMD
    simds_per_sm=4,
    wavefront_slots_per_simd=8,
    registers_per_simd=512,
    latency=LatencyModel(
        global_mem=570.0,
        readonly_cache=570.0,
        constant_cache=40.0,
        shared_mem=64.0,
        local_mem=570.0,
        uncoalesced_factor=8.0,
    ),
)


class ArchRegistry:
    """Named, pluggable architecture profiles.

    Canonical keys are kebab-case (``cdna2-mi250``); lookups normalize
    case, spaces and underscores, and aliases (including each profile's
    display ``name``) resolve to the same object.  Unknown names raise
    :class:`~repro.errors.ConfigError` listing every registered profile,
    so a typo fails loudly at configuration time rather than silently
    compiling for the wrong device.
    """

    def __init__(self) -> None:
        self._profiles: dict[str, GpuArch] = {}
        self._aliases: dict[str, str] = {}

    @staticmethod
    def normalize(name: str) -> str:
        return "-".join(str(name).strip().lower().replace("_", " ").replace("-", " ").split())

    def register(
        self, key: str, arch: GpuArch, *, aliases: tuple[str, ...] = ()
    ) -> GpuArch:
        """Register ``arch`` under a canonical ``key`` (plus aliases and
        its display name); returns the profile for chaining."""
        canon = self.normalize(key)
        self._profiles[canon] = arch
        for alias in (arch.name, *aliases):
            self._aliases[self.normalize(alias)] = canon
        return arch

    def key_of(self, arch: GpuArch) -> str | None:
        """The canonical key a profile is registered under (by value
        equality), or ``None`` for an unregistered ad-hoc profile."""
        for key, registered in self._profiles.items():
            if registered == arch:
                return key
        return None

    def get(self, name: "str | GpuArch") -> GpuArch:
        """Resolve a profile name (or pass a :class:`GpuArch` through)."""
        if isinstance(name, GpuArch):
            return name
        norm = self.normalize(name)
        key = self._aliases.get(norm, norm)
        arch = self._profiles.get(key)
        if arch is None:
            raise ConfigError(
                f"unknown GPU arch {name!r} "
                f"(registered profiles: {', '.join(self.names())})"
            )
        return arch

    def names(self) -> list[str]:
        """Canonical profile names, sorted."""
        return sorted(self._profiles)

    def __contains__(self, name: str) -> bool:
        norm = self.normalize(name)
        return norm in self._profiles or norm in self._aliases

    def items(self) -> list[tuple[str, GpuArch]]:
        return sorted(self._profiles.items())


#: The process-wide registry the configuration layer resolves names in.
ARCHES = ArchRegistry()
ARCHES.register("kepler-k20xm", KEPLER_K20XM, aliases=("kepler", "k20xm"))
ARCHES.register("fermi-like", FERMI_LIKE, aliases=("fermi",))
ARCHES.register(
    "cdna2-mi250", CDNA2_MI250, aliases=("cdna2", "mi250", "gfx90a")
)


def register_arch(
    key: str, arch: GpuArch, *, aliases: tuple[str, ...] = ()
) -> GpuArch:
    """Register a custom profile in the process-wide registry (see
    ``docs/device_model.md`` for the field checklist)."""
    return ARCHES.register(key, arch, aliases=aliases)


def get_arch(name: "str | GpuArch") -> GpuArch:
    """Look up a registered architecture profile by name."""
    return ARCHES.get(name)


def list_archs() -> list[str]:
    """Canonical names of every registered architecture profile."""
    return ARCHES.names()


def arch_key(arch: "str | GpuArch") -> str:
    """The canonical registry key for a profile (or name); falls back to
    the normalized display name for unregistered ad-hoc profiles."""
    if isinstance(arch, str):
        resolved = ARCHES.get(arch)
        return ARCHES.key_of(resolved) or ArchRegistry.normalize(arch)
    return ARCHES.key_of(arch) or ArchRegistry.normalize(arch.name)
