"""Device facade: one object tying the whole substrate together.

``SimulatedDevice`` is the user-facing handle a downstream project would
hold: it compiles regions, reports PTXAS info, estimates kernel times,
models host↔device transfers for the region's data clauses, and executes
kernels functionally — one stop for everything `repro.gpu` provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.memspace import referenced_arrays
from ..codegen.kernelgen import CodegenOptions, generate_kernel
from ..codegen.vir import VirKernel
from ..ir.module import KernelFunction
from ..ir.stmt import Region
from ..ir.symbols import Symbol
from .arch import GpuArch, KEPLER_K20XM
from .registers import PtxasInfo, ptxas_info
from .timing import KernelTiming, estimate_time

#: Effective PCIe gen-2 x16 bandwidth the K20Xm-era hosts saw (GB/s), and
#: the per-call launch/transfer latency (µs).
PCIE_BANDWIDTH_GBS = 6.0
TRANSFER_LATENCY_US = 10.0


@dataclass(frozen=True, slots=True)
class TransferEstimate:
    """Host↔device traffic implied by a region's data clauses."""

    h2d_bytes: int
    d2h_bytes: int

    def time_ms(self, bandwidth_gbs: float = PCIE_BANDWIDTH_GBS) -> float:
        total = self.h2d_bytes + self.d2h_bytes
        if total == 0:
            return 0.0
        seconds = total / (bandwidth_gbs * 1e9)
        calls = (1 if self.h2d_bytes else 0) + (1 if self.d2h_bytes else 0)
        return seconds * 1e3 + calls * TRANSFER_LATENCY_US * 1e-3


def _array_bytes(sym: Symbol, env: dict[str, int]) -> int:
    assert sym.array is not None
    elem = sym.array.elem.bits // 8
    count = 1
    if sym.array.is_pointer:
        size = env.get(f"__len_{sym.name}")
        return (size or 0) * elem
    for d in sym.array.dims:
        extent = d.extent if isinstance(d.extent, int) else env.get(d.extent.name, 0)
        count *= extent
    return count * elem


def estimate_transfers(
    region: Region, symtab, env: dict[str, int]
) -> TransferEstimate:
    """Bytes moved by the region's data clauses (OpenACC semantics:
    ``copyin`` H→D, ``copyout`` D→H, ``copy`` both; arrays without clauses
    default to ``copy`` of everything referenced, OpenACC's implicit
    behaviour for aggregate data)."""
    data = region.directive.data
    named = {name for names in data.values() for name in names}
    h2d = 0
    d2h = 0
    for name in data.get("copyin", ()):
        h2d += _array_bytes(symtab.require(name), env)
    for name in data.get("copyout", ()):
        d2h += _array_bytes(symtab.require(name), env)
    for name in data.get("copy", ()):
        size = _array_bytes(symtab.require(name), env)
        h2d += size
        d2h += size
    # 'create'/'present' move nothing.
    for sym in referenced_arrays(region):
        if sym.name not in named:
            size = _array_bytes(sym, env)
            h2d += size
            d2h += size
    return TransferEstimate(h2d_bytes=h2d, d2h_bytes=d2h)


@dataclass(slots=True)
class LaunchRecord:
    """Bookkeeping for one simulated launch."""

    kernel: VirKernel
    ptxas: PtxasInfo
    timing: KernelTiming
    transfers: TransferEstimate

    @property
    def total_ms(self) -> float:
        return self.timing.time_ms + self.transfers.time_ms()


@dataclass(slots=True)
class SimulatedDevice:
    """A virtual GPU: compile, inspect, time and run offload regions."""

    arch: GpuArch = KEPLER_K20XM
    options: CodegenOptions = field(default_factory=CodegenOptions)
    launches: list[LaunchRecord] = field(default_factory=list)
    #: Execution engine for :meth:`run`: "auto" (vectorized with automatic
    #: scalar fallback), "vector", or "scalar".
    executor: str = "auto"
    #: The :class:`~repro.gpu.vector_exec.ExecutionInfo` of the last
    #: :meth:`run` call (which executor actually ran, and why).
    last_execution: object = None

    def compile(self, region: Region, symtab, name: str = "kernel") -> VirKernel:
        return generate_kernel(region, symtab, self.options, name=name)

    def ptxas(self, kernel: VirKernel) -> PtxasInfo:
        return ptxas_info(kernel, self.arch)

    def launch(
        self,
        region: Region,
        symtab,
        env: dict[str, int],
        name: str = "kernel",
        include_transfers: bool = True,
    ) -> LaunchRecord:
        """Compile + allocate + time one region at the given problem size."""
        kernel = self.compile(region, symtab, name)
        info = self.ptxas(kernel)
        timing = estimate_time(kernel, info, env, arch=self.arch)
        transfers = (
            estimate_transfers(region, symtab, env)
            if include_transfers
            else TransferEstimate(0, 0)
        )
        record = LaunchRecord(
            kernel=kernel, ptxas=info, timing=timing, transfers=transfers
        )
        self.launches.append(record)
        return record

    def run(self, fn: KernelFunction, args: dict[str, object]):
        """Functional execution (the correctness path).

        Routes through the vectorized engine per :attr:`executor`; the
        chosen engine and any fallback reason land in
        :attr:`last_execution`.  Returns ``(arrays, stats)`` exactly like
        :func:`~repro.gpu.interpreter.run_kernel`.
        """
        from .vector_exec import execute_kernel

        arrays, stats, info = execute_kernel(fn, args, executor=self.executor)
        self.last_execution = info
        return arrays, stats

    @property
    def total_ms(self) -> float:
        return sum(l.total_ms for l in self.launches)
