"""Functional interpreter for MiniACC IR over NumPy arrays.

This is the correctness oracle of the reproduction: every compiler
transformation is validated by executing the kernel *before and after* on
the same inputs and comparing results bit-for-bit (scalar replacement never
reorders floating-point arithmetic, so exact equality is the right check).

Semantics notes:

* OpenACC-parallel loops are executed as ordinary sequential loops — for a
  *correct* OpenACC program (independent iterations) this matches any
  parallel schedule; kernels with clause lies would diverge on a GPU and
  here, equally.
* Arrays with non-zero lower bounds (Fortran-allocatable model) are backed
  by 0-based NumPy arrays; subscripts are rebased by the declared lower
  bound, mirroring the dope-vector arithmetic the backend emits.
* Integer division/modulo follow C (truncation toward zero).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
)
from ..ir.module import KernelFunction
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..ir.symbols import Symbol

_NUMPY_DTYPES = {
    ("float", 32): np.float32,
    ("double", 64): np.float64,
    ("int", 32): np.int32,
    ("long", 64): np.int64,
}


class InterpreterError(Exception):
    """Bad arguments or a runtime fault (e.g. out-of-bounds access)."""


@dataclass(slots=True)
class ExecutionStats:
    """Dynamic operation counts, for tests and the examples.

    The scalar interpreter's counting rules are the *contract*; any other
    executor (see :mod:`repro.gpu.vector_exec`) must reproduce them exactly:

    * ``loads``/``stores`` — one per :class:`~repro.ir.expr.ArrayRef`
      element access actually evaluated (lazy ``&&``/``||``/ternary
      operands that are skipped count nothing).
    * ``flops`` — one per arithmetic ``BinOp`` whose result or either
      operand is a Python ``float`` (``np.float64`` qualifies,
      ``np.float32`` does not); one per intrinsic ``Call``.  Comparisons
      and lazy logical operators never count.
    * ``iterations`` — one per executed iteration of *every* loop,
      parallel or sequential.
    """

    loads: int = 0
    stores: int = 0
    flops: int = 0
    iterations: int = 0


class Interpreter:
    """Executes one kernel function against concrete arguments."""

    def __init__(self, fn: KernelFunction, args: dict[str, object]):
        self._fn = fn
        self._scalars: dict[str, float | int] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._lowers: dict[str, tuple[int, ...]] = {}
        self.stats = ExecutionStats()
        self._bind_args(args)

    # -- setup --------------------------------------------------------------
    def _bind_args(self, args: dict[str, object]) -> None:
        self._scalars, self._arrays, self._lowers = bind_arguments(self._fn, args)

    # -- execution ------------------------------------------------------------
    def run(self) -> None:
        self._exec_stmts(self._fn.body)

    def _exec_stmts(self, stmts: list[Stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, VarRef):
                self._scalars[stmt.target.sym.name] = self._coerce_scalar(
                    stmt.target.sym, value
                )
            else:
                self._store(stmt.target, value)
        elif isinstance(stmt, LocalDecl):
            if stmt.init is not None:
                self._scalars[stmt.sym.name] = self._coerce_scalar(
                    stmt.sym, self._eval(stmt.init)
                )
            else:
                self._scalars.setdefault(stmt.sym.name, 0)
        elif isinstance(stmt, If):
            if self._eval(stmt.cond):
                self._exec_stmts(stmt.then_body)
            else:
                self._exec_stmts(stmt.else_body)
        elif isinstance(stmt, Loop):
            var = stmt.var.name
            saved = self._scalars.get(var)
            for value in stmt.iter_values(self._int_env()):
                self._scalars[var] = value
                self.stats.iterations += 1
                self._exec_stmts(stmt.body)
            if saved is not None:
                self._scalars[var] = saved
        elif isinstance(stmt, Region):
            self._exec_stmts(stmt.body)
        else:
            raise InterpreterError(f"unknown statement {type(stmt).__name__}")

    def _int_env(self) -> dict[str, int]:
        return {k: int(v) for k, v in self._scalars.items() if isinstance(v, (int, np.integer))}

    @staticmethod
    def _coerce_scalar(sym: Symbol, value):
        if sym.stype.is_float:
            return float(value)
        return int(value)

    # -- memory ---------------------------------------------------------------
    def _element_index(self, ref: ArrayRef) -> tuple[int, ...]:
        name = ref.sym.name
        lowers = self._lowers.get(name)
        idx = []
        for axis, sub in enumerate(ref.indices):
            value = int(self._eval(sub))
            if lowers is not None:
                value -= lowers[axis]
            idx.append(value)
        arr = self._arrays[name]
        if ref.sym.array is not None and ref.sym.array.is_pointer:
            flat = idx[0]
            if not (0 <= flat < arr.size):
                raise InterpreterError(
                    f"out-of-bounds access {name}[{flat}] (size {arr.size})"
                )
            return (flat,)
        for axis, value in enumerate(idx):
            if not (0 <= value < arr.shape[axis]):
                raise InterpreterError(
                    f"out-of-bounds access on {name!r} axis {axis}: index "
                    f"{value} not in [0, {arr.shape[axis]})"
                )
        return tuple(idx)

    def _load(self, ref: ArrayRef):
        arr = self._arrays[ref.sym.name]
        idx = self._element_index(ref)
        self.stats.loads += 1
        if ref.sym.array is not None and ref.sym.array.is_pointer:
            return arr.flat[idx[0]]
        return arr[idx]

    def _store(self, ref: ArrayRef, value) -> None:
        arr = self._arrays[ref.sym.name]
        idx = self._element_index(ref)
        self.stats.stores += 1
        if ref.sym.array is not None and ref.sym.array.is_pointer:
            arr.flat[idx[0]] = value
        else:
            arr[idx] = value

    # -- expressions --------------------------------------------------------
    def _eval(self, e: Expr):
        if isinstance(e, IntConst):
            return e.value
        if isinstance(e, FloatConst):
            return e.value
        if isinstance(e, VarRef):
            try:
                return self._scalars[e.sym.name]
            except KeyError:
                raise InterpreterError(f"read of unset scalar {e.sym.name!r}") from None
        if isinstance(e, ArrayRef):
            return self._load(e)
        if isinstance(e, UnOp):
            value = self._eval(e.operand)
            if e.op == "-":
                return -value
            if e.op == "!":
                return 0 if value else 1
            raise InterpreterError(f"unknown unary {e.op!r}")
        if isinstance(e, BinOp):
            return self._eval_binop(e)
        if isinstance(e, Select):
            return self._eval(e.then) if self._eval(e.cond) else self._eval(e.otherwise)
        if isinstance(e, Cast):
            value = self._eval(e.operand)
            if e.to_type.is_float:
                return float(np.float32(value)) if e.to_type.bits == 32 else float(value)
            return int(value)
        if isinstance(e, Call):
            return self._eval_call(e)
        raise InterpreterError(f"unknown expression {type(e).__name__}")

    def _eval_binop(self, e: BinOp):
        op = e.op
        if op == "&&":
            return 1 if (self._eval(e.left) and self._eval(e.right)) else 0
        if op == "||":
            return 1 if (self._eval(e.left) or self._eval(e.right)) else 0
        lhs = self._eval(e.left)
        rhs = self._eval(e.right)
        both_int = isinstance(lhs, (int, np.integer)) and isinstance(rhs, (int, np.integer))
        if op == "+":
            result = lhs + rhs
        elif op == "-":
            result = lhs - rhs
        elif op == "*":
            result = lhs * rhs
        elif op == "/":
            if both_int:
                if rhs == 0:
                    raise InterpreterError("integer division by zero")
                q = abs(lhs) // abs(rhs)
                result = q if (lhs >= 0) == (rhs >= 0) else -q
            else:
                result = lhs / rhs
        elif op == "%":
            if not both_int:
                raise InterpreterError("modulo requires integers")
            if rhs == 0:
                raise InterpreterError("integer modulo by zero")
            result = lhs - rhs * (abs(lhs) // abs(rhs)) * (1 if (lhs >= 0) == (rhs >= 0) else -1)
        elif op == "<":
            return 1 if lhs < rhs else 0
        elif op == "<=":
            return 1 if lhs <= rhs else 0
        elif op == ">":
            return 1 if lhs > rhs else 0
        elif op == ">=":
            return 1 if lhs >= rhs else 0
        elif op == "==":
            return 1 if lhs == rhs else 0
        elif op == "!=":
            return 1 if lhs != rhs else 0
        else:
            raise InterpreterError(f"unknown operator {op!r}")
        if isinstance(result, float) or (
            isinstance(lhs, float) or isinstance(rhs, float)
        ):
            self.stats.flops += 1
        return result

    def _eval_call(self, e: Call):
        args = [self._eval(a) for a in e.args]
        self.stats.flops += 1
        func = e.func
        if func == "sqrt":
            return math.sqrt(args[0])
        if func in ("fabs", "abs"):
            return abs(args[0])
        if func == "exp":
            return math.exp(args[0])
        if func == "log":
            return math.log(args[0])
        if func == "sin":
            return math.sin(args[0])
        if func == "cos":
            return math.cos(args[0])
        if func == "tan":
            return math.tan(args[0])
        if func == "pow":
            return math.pow(args[0], args[1])
        if func in ("min", "fmin"):
            return min(args)
        if func in ("max", "fmax"):
            return max(args)
        if func == "floor":
            return math.floor(args[0])
        if func == "ceil":
            return math.ceil(args[0])
        raise InterpreterError(f"unknown intrinsic {func!r}")


def bind_arguments(
    fn: KernelFunction, args: dict[str, object]
) -> tuple[dict[str, float | int], dict[str, np.ndarray], dict[str, tuple[int, ...]]]:
    """Validate ``args`` against ``fn``'s parameter list.

    Returns ``(scalars, arrays, lowers)``: the scalar environment, the array
    bindings (the caller's ndarrays, not copies), and per-array declared
    lower bounds (absent for pointer-shaped arrays, which index flat).
    Raises :class:`InterpreterError` on missing/extra arguments, non-array
    values for array parameters, or extent mismatches.
    """
    scalars: dict[str, float | int] = {}
    arrays: dict[str, np.ndarray] = {}
    for param in fn.params:
        if param.name not in args:
            raise InterpreterError(f"missing argument {param.name!r}")
        value = args[param.name]
        if param.is_array:
            if not isinstance(value, np.ndarray):
                raise InterpreterError(f"argument {param.name!r} must be ndarray")
            arrays[param.name] = value
        else:
            scalars[param.name] = value
    extra = set(args) - {p.name for p in fn.params}
    if extra:
        raise InterpreterError(f"unknown arguments {sorted(extra)}")

    def dim_value(bound: int | Symbol) -> int:
        if isinstance(bound, int):
            return bound
        value = scalars.get(bound.name)
        if value is None:
            raise InterpreterError(f"array bound {bound.name!r} not supplied")
        return int(value)

    # Resolve lower bounds and validate declared shapes.
    lowers: dict[str, tuple[int, ...]] = {}
    for param in fn.params:
        if param.array is None or param.array.is_pointer:
            continue
        arr = arrays[param.name]
        lower_list = []
        for axis, dim in enumerate(param.array.dims):
            extent = dim_value(dim.extent)
            lower_list.append(dim_value(dim.lower))
            if arr.shape[axis] != extent:
                raise InterpreterError(
                    f"array {param.name!r} axis {axis}: expected extent "
                    f"{extent}, got {arr.shape[axis]}"
                )
        lowers[param.name] = tuple(lower_list)
    return scalars, arrays, lowers


def run_kernel(
    fn: KernelFunction, args: dict[str, object]
) -> tuple[dict[str, np.ndarray], ExecutionStats]:
    """Execute ``fn`` with ``args`` (arrays are mutated in place).

    Returns the array dict and dynamic statistics.  Callers wanting the
    original data preserved should pass copies.
    """
    interp = Interpreter(fn, args)
    interp.run()
    return interp._arrays, interp.stats


def numpy_dtype(sym: Symbol) -> type:
    """The NumPy dtype matching an array symbol's element type."""
    assert sym.array is not None
    elem = sym.array.elem
    return _NUMPY_DTYPES[(elem.name, elem.bits)]


def build_run_args(
    fn: KernelFunction, env: dict, seed: int = 0
) -> dict[str, object]:
    """Deterministic functional-run arguments for a kernel function.

    Scalars come from ``env``; array arguments are random but seeded
    (identical across processes), with extents resolved from ``env`` and
    raw-pointer sizes from ``env['__len_<name>']``.  Shared by the CLI's
    ``--run`` flag and the serving daemon's ``run`` op.  Raises
    :class:`ValueError` naming the missing binding otherwise.
    """
    rng = np.random.default_rng(seed)
    run_args: dict[str, object] = {
        k: v for k, v in env.items() if not k.startswith("__")
    }
    for param in fn.params:
        if param.array is None:
            if param.name not in run_args:
                raise ValueError(
                    f"run needs env {param.name}=<value> for scalar "
                    f"parameter {param.name!r}"
                )
            continue
        if param.array.is_pointer:
            size = env.get(f"__len_{param.name}")
            if size is None:
                raise ValueError(
                    f"run needs env __len_{param.name}=<size> for "
                    f"pointer parameter {param.name!r}"
                )
            shape: tuple[int, ...] = (int(size),)
        else:
            try:
                shape = tuple(
                    d.extent if isinstance(d.extent, int) else int(env[d.extent.name])
                    for d in param.array.dims
                )
            except KeyError as missing:
                raise ValueError(
                    f"run needs env {missing.args[0]}=<value> to size "
                    f"array parameter {param.name!r}"
                ) from None
        dtype = numpy_dtype(param)
        if np.issubdtype(dtype, np.floating):
            run_args[param.name] = rng.uniform(0.5, 2.0, size=shape).astype(dtype)
        else:
            run_args[param.name] = rng.integers(0, 3, size=shape).astype(dtype)
    return run_args
