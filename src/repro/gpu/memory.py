"""Warp-level memory transaction model.

Converts one warp-wide access (pattern + element width) into the bytes of
memory traffic it generates — the quantity behind both the bandwidth bound
of the timing model and the coalescing premium in the SAFARA cost model.

Kepler services global accesses in 128-byte L2 lines but can fetch 32-byte
sectors for scattered patterns; the rules below follow the CUDA best
practices description of those cases.
"""

from __future__ import annotations

import math

from ..analysis.coalescing import AccessInfo, AccessPattern
from ..analysis.memspace import MemSpace
from .arch import GpuArch, KEPLER_K20XM

#: Default sector size for scattered (uncoalesced) accesses; the per-arch
#: value is ``arch.sector_bytes`` (kept as a module constant for
#: backward-compatible imports).
SECTOR_BYTES = 32


def warp_transaction_bytes(
    access: AccessInfo,
    width_bits: int,
    arch: GpuArch = KEPLER_K20XM,
) -> int:
    """Bytes moved for one warp-wide access of ``width_bits`` elements."""
    width = max(width_bits // 8, 1)
    warp = arch.warp_size
    if access.pattern is AccessPattern.COALESCED:
        span = warp * width
        return math.ceil(span / arch.transaction_bytes) * arch.transaction_bytes
    sector = arch.sector_bytes
    if access.pattern is AccessPattern.UNIFORM:
        return sector  # one sector broadcast to the warp
    # Uncoalesced: each thread lands in its own region once the stride
    # exceeds a sector; cap at one sector per lane.
    stride = access.stride_elems
    if stride is None:
        sectors = warp
    else:
        span = warp * max(stride, 1) * width
        sectors = min(warp, math.ceil(span / sector))
        sectors = max(sectors, math.ceil(warp * width / sector))
    return sectors * sector


def warp_transactions(
    access: AccessInfo,
    width_bits: int,
    arch: GpuArch = KEPLER_K20XM,
) -> int:
    """Number of discrete transactions for one warp-wide access."""
    if access.pattern is AccessPattern.COALESCED:
        span = arch.warp_size * max(width_bits // 8, 1)
        return math.ceil(span / arch.transaction_bytes)
    return warp_transaction_bytes(access, width_bits, arch) // arch.sector_bytes


def access_latency(
    space: MemSpace,
    access: AccessInfo,
    arch: GpuArch = KEPLER_K20XM,
) -> float:
    """Effective warp latency of one access (delegates to the arch's
    latency model — shared with the SAFARA cost model by construction)."""
    return arch.latency.access_latency(space, access)
