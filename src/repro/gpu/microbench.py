"""Wong-style latency microbenchmarks against the simulated hierarchy.

The paper calibrates its cost model with the microbenchmark methodology of
Wong et al. [19]: dependent-access pointer chases whose per-access time
reveals each memory space's latency.  This module reproduces that loop
against the *simulated* device: it builds a dependent-load VIR kernel for
each (space, pattern) combination, times it with the analytic model at
occupancy one-warp (so nothing is hidden), and recovers the per-access
latency — which must round-trip to the architecture's latency table.

This closes the calibration loop: the SAFARA cost model consumes exactly
the latencies a user of this library could re-measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.coalescing import AccessInfo, AccessPattern
from ..analysis.memspace import MemSpace
from .arch import GpuArch, KEPLER_K20XM
from .memory import access_latency


@dataclass(frozen=True, slots=True)
class LatencyMeasurement:
    space: MemSpace
    pattern: AccessPattern
    cycles: float

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.space.value:9s} {self.pattern.value:12s} {self.cycles:8.1f} cycles"


class PointerChase:
    """A dependent-load chain over the simulated memory hierarchy.

    Each access must complete before the next can issue (the classic
    latency microbenchmark structure), so total time / accesses = latency.
    """

    def __init__(self, space: MemSpace, access: AccessInfo, arch: GpuArch):
        self._space = space
        self._access = access
        self._arch = arch
        self._clock = 0.0
        self.accesses = 0

    def step(self) -> float:
        """Issue one dependent access; returns its completion time."""
        self._clock += access_latency(self._space, self._access, self._arch)
        self.accesses += 1
        return self._clock

    @property
    def cycles_per_access(self) -> float:
        if self.accesses == 0:
            raise ValueError("no accesses issued")
        return self._clock / self.accesses


def measure_latency(
    space: MemSpace,
    pattern: AccessPattern = AccessPattern.COALESCED,
    stride: int | None = 1,
    chain_length: int = 1024,
    arch: GpuArch = KEPLER_K20XM,
) -> LatencyMeasurement:
    """Run one pointer chase and report the recovered latency."""
    access = AccessInfo(pattern, stride)
    chase = PointerChase(space, access, arch)
    for _ in range(chain_length):
        chase.step()
    return LatencyMeasurement(space=space, pattern=pattern, cycles=chase.cycles_per_access)


def measure_all(arch: GpuArch = KEPLER_K20XM) -> list[LatencyMeasurement]:
    """The full latency survey used to seed the SAFARA cost model."""
    cases = [
        (MemSpace.GLOBAL, AccessPattern.COALESCED, 1),
        (MemSpace.GLOBAL, AccessPattern.UNCOALESCED, None),
        (MemSpace.GLOBAL, AccessPattern.UNIFORM, 0),
        (MemSpace.READONLY, AccessPattern.COALESCED, 1),
        (MemSpace.READONLY, AccessPattern.UNCOALESCED, None),
        (MemSpace.CONSTANT, AccessPattern.UNIFORM, 0),
        (MemSpace.SHARED, AccessPattern.COALESCED, 1),
        (MemSpace.LOCAL, AccessPattern.COALESCED, 1),
    ]
    return [
        measure_latency(space, pattern, stride, arch=arch)
        for space, pattern, stride in cases
    ]
