"""Occupancy calculation (CUDA occupancy-calculator rules for Kepler).

Occupancy is the fraction of an SM's warp slots that can be resident
simultaneously.  Register usage is the paper's central constraint: more
registers per thread → fewer resident warps → less latency hiding
(Section IV: "aggressive application of scalar replacement increases
register pressure, which may lead to low threads occupancy").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .arch import GpuArch, KEPLER_K20XM


@dataclass(frozen=True, slots=True)
class Occupancy:
    """Resident-block/warp capacity of one SM for a given kernel."""

    blocks_per_sm: int
    warps_per_block: int
    active_warps: int
    occupancy: float
    limited_by: str

    @property
    def active_threads(self) -> int:
        return self.active_warps * 32


def compute_occupancy(
    registers_per_thread: int,
    threads_per_block: int,
    arch: GpuArch = KEPLER_K20XM,
    shared_mem_per_block: int = 0,
) -> Occupancy:
    """How many blocks/warps of this kernel fit on one SM.

    Kepler allocates registers per *warp* in 256-register granules; the
    per-thread count is first rounded to the allocation granularity.
    """
    threads_per_block = max(1, min(threads_per_block, arch.max_threads_per_block))
    warps_per_block = math.ceil(threads_per_block / arch.warp_size)
    regs = arch.round_registers(max(registers_per_thread, 1))

    regs_per_warp = _round_up(regs * arch.warp_size, 256)
    by_regs = arch.registers_per_sm // (regs_per_warp * warps_per_block)
    by_threads = arch.max_threads_per_sm // threads_per_block
    # Partial warps still occupy whole warp slots.
    by_warps = arch.max_warps_per_sm // warps_per_block
    by_threads = min(by_threads, by_warps)
    by_blocks = arch.max_blocks_per_sm
    if shared_mem_per_block > 0:
        by_smem = arch.shared_mem_per_sm // shared_mem_per_block
    else:
        by_smem = by_blocks

    blocks = max(0, min(by_regs, by_threads, by_blocks, by_smem))
    limits = {
        "registers": by_regs,
        "threads": by_threads,
        "blocks": by_blocks,
        "shared-memory": by_smem,
    }
    limited_by = min(limits, key=lambda k: limits[k])
    active_warps = blocks * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_block=warps_per_block,
        active_warps=active_warps,
        occupancy=active_warps / arch.max_warps_per_sm,
        limited_by=limited_by,
    )


def _round_up(value: int, granule: int) -> int:
    return ((value + granule - 1) // granule) * granule
