"""Occupancy calculation, parameterized by the architecture profile.

Occupancy is the fraction of an SM's warp slots that can be resident
simultaneously.  Register usage is the paper's central constraint: more
registers per thread → fewer resident warps → less latency hiding
(Section IV: "aggressive application of scalar replacement increases
register pressure, which may lead to low threads occupancy").

Two register models are supported, selected by the :class:`GpuArch`
profile (never by hard-coded constants):

* **per-SM warp-granule** (NVIDIA Kepler/Fermi): registers are allocated
  per *warp* in ``arch.register_warp_granule``-sized granules from one
  per-SM file (256-register granules on Kepler);
* **per-SIMD wavefront** (AMD CDNA2, selected when
  ``arch.registers_per_simd`` is set): each SIMD's per-lane VGPR file is
  shared by its resident wavefronts — ``min(slots, file // regs)``
  wavefronts per SIMD, times ``arch.simds_per_sm`` SIMDs per CU.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .arch import GpuArch, KEPLER_K20XM


@dataclass(frozen=True, slots=True)
class Occupancy:
    """Resident-block/warp capacity of one SM for a given kernel."""

    blocks_per_sm: int
    warps_per_block: int
    active_warps: int
    occupancy: float
    limited_by: str
    warp_size: int = 32

    @property
    def active_threads(self) -> int:
        return self.active_warps * self.warp_size


def _register_block_limit(
    regs: int, warps_per_block: int, arch: GpuArch
) -> int:
    """Blocks per SM permitted by the register file, under the arch's
    register model (``regs`` already rounded to the granularity)."""
    if arch.registers_per_simd is not None:
        waves = arch.waves_per_simd(regs) * arch.simds_per_sm
        return waves // warps_per_block
    regs_per_warp = _round_up(regs * arch.warp_size, arch.register_warp_granule)
    return arch.registers_per_sm // (regs_per_warp * warps_per_block)


def compute_occupancy(
    registers_per_thread: int,
    threads_per_block: int,
    arch: GpuArch = KEPLER_K20XM,
    shared_mem_per_block: int = 0,
) -> Occupancy:
    """How many blocks/warps of this kernel fit on one SM."""
    threads_per_block = max(1, min(threads_per_block, arch.max_threads_per_block))
    warps_per_block = math.ceil(threads_per_block / arch.warp_size)
    regs = arch.round_registers(max(registers_per_thread, 1))

    by_regs = _register_block_limit(regs, warps_per_block, arch)
    by_threads = arch.max_threads_per_sm // threads_per_block
    # Partial warps still occupy whole warp slots.
    by_warps = arch.max_warps_per_sm // warps_per_block
    by_threads = min(by_threads, by_warps)
    by_blocks = arch.max_blocks_per_sm
    if shared_mem_per_block > 0:
        by_smem = arch.shared_mem_per_sm // shared_mem_per_block
    else:
        by_smem = by_blocks

    blocks = max(0, min(by_regs, by_threads, by_blocks, by_smem))
    limits = {
        "registers": by_regs,
        "threads": by_threads,
        "blocks": by_blocks,
        "shared-memory": by_smem,
    }
    limited_by = min(limits, key=lambda k: limits[k])
    active_warps = blocks * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_block=warps_per_block,
        active_warps=active_warps,
        occupancy=active_warps / arch.max_warps_per_sm,
        limited_by=limited_by,
        warp_size=arch.warp_size,
    )


def _round_up(value: int, granule: int) -> int:
    return ((value + granule - 1) // granule) * granule
