"""The ``ptxas`` simulator: liveness analysis + register allocation over VIR.

The paper's feedback loop (Section III-B.2) depends on the vendor
assembler's ``PTXAS Info`` report — the only place hardware register usage
becomes visible.  This module reproduces that interface:

* exact live intervals over the structured VIR instruction list (with
  back-edge extension inside loops, so rotating scalar-replacement
  temporaries are correctly live across iterations);
* register demand = maximum overlap of live intervals, in 32-bit units
  (64-bit values cost two, Section IV-B);
* when demand exceeds a limit, intervals are spilled longest-first to
  local memory, producing the spill loads/stores the timing model charges.

The resulting :class:`PtxasInfo` mirrors the fields of real ``ptxas -v``
output (``Used N registers, M bytes spill stores, K bytes spill loads``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.vir import Instr, MARKER_OPS, Op, VirKernel, VReg
from .arch import GpuArch, KEPLER_K20XM


@dataclass(slots=True)
class LiveInterval:
    """Half-open live range [start, end] in instruction positions."""

    vreg: VReg
    start: int
    end: int
    use_count: int = 0

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def overlaps(self, pos: int) -> bool:
        return self.start <= pos <= self.end


@dataclass(slots=True)
class PtxasInfo:
    """The feedback record the compiler reads back (paper: "PTXAS Info")."""

    kernel_name: str
    registers: int
    spilled_vregs: int = 0
    spill_loads: int = 0
    spill_stores: int = 0
    spill_bytes: int = 0
    raw_pressure: int = 0  # before the limit was applied

    def summary(self) -> str:
        """Human-readable line in the style of ``ptxas -v``."""
        text = f"ptxas info : Used {self.registers} registers"
        if self.spill_bytes:
            text += (
                f", {self.spill_bytes} bytes spill stores/loads"
                f" ({self.spilled_vregs} values)"
            )
        return f"{text} — {self.kernel_name}"


def compute_live_intervals(instrs: list[Instr]) -> list[LiveInterval]:
    """Live intervals with loop back-edge extension.

    Rules (conservative, exact enough for structured code):

    1. base interval = [first def/use, last def/use];
    2. a vreg occurring both inside a loop region and outside it is live
       through the whole region;
    3. a vreg used inside a loop at a position before its first in-loop
       definition receives its value from the previous iteration — it is
       live across the back edge, hence through the whole region.
    """
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    first_def: dict[int, int] = {}
    uses: dict[int, int] = {}
    regs: dict[int, VReg] = {}

    def touch(reg: VReg, pos: int, is_def: bool) -> None:
        key = reg.id
        regs[key] = reg
        first.setdefault(key, pos)
        last[key] = max(last.get(key, pos), pos)
        if is_def:
            first_def.setdefault(key, pos)
        else:
            uses[key] = uses.get(key, 0) + 1

    loop_stack: list[int] = []
    loop_regions: list[tuple[int, int]] = []
    for pos, ins in enumerate(instrs):
        if ins.op is Op.LOOP_BEGIN:
            loop_stack.append(pos)
        elif ins.op is Op.LOOP_END:
            begin = loop_stack.pop()
            loop_regions.append((begin, pos))
        for src in ins.srcs:
            touch(src, pos, is_def=False)
        if ins.dst is not None:
            touch(ins.dst, pos, is_def=True)
        if ins.dst2 is not None:
            touch(ins.dst2, pos, is_def=True)

    intervals = {
        key: LiveInterval(
            vreg=regs[key], start=first[key], end=last[key], use_count=uses.get(key, 0)
        )
        for key in first
    }

    # Occurrence positions per vreg for the loop rules.
    occ: dict[int, list[tuple[int, bool]]] = {}
    for pos, ins in enumerate(instrs):
        for src in ins.srcs:
            occ.setdefault(src.id, []).append((pos, False))
        if ins.dst is not None:
            occ.setdefault(ins.dst.id, []).append((pos, True))
        if ins.dst2 is not None:
            occ.setdefault(ins.dst2.id, []).append((pos, True))

    for begin, end in loop_regions:
        for key, positions in occ.items():
            inside = [(p, d) for (p, d) in positions if begin <= p <= end]
            if not inside:
                continue
            iv = intervals[key]
            outside = iv.start < begin or iv.end > end
            if outside:
                iv.start = min(iv.start, begin)
                iv.end = max(iv.end, end)
                continue
            in_defs = [p for (p, d) in inside if d]
            in_uses = [p for (p, d) in inside if not d]
            if in_uses and (not in_defs or min(in_uses) < min(in_defs)):
                iv.start = begin
                iv.end = end
    return sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))


def max_pressure(intervals: list[LiveInterval]) -> int:
    """Maximum simultaneous demand in 32-bit register units."""
    events: list[tuple[int, int]] = []
    for iv in intervals:
        events.append((iv.start, iv.vreg.units))
        events.append((iv.end + 1, -iv.vreg.units))
    events.sort()
    cur = best = 0
    for _, delta in events:
        cur += delta
        best = max(best, cur)
    return best


@dataclass(slots=True)
class AllocationResult:
    info: PtxasInfo
    intervals: list[LiveInterval] = field(default_factory=list)
    spilled: list[LiveInterval] = field(default_factory=list)


def allocate(
    kernel: VirKernel,
    arch: GpuArch = KEPLER_K20XM,
    register_limit: int | None = None,
    reserved_registers: int = 2,
) -> AllocationResult:
    """Run the ptxas-simulator on one kernel.

    ``register_limit`` defaults to the architecture's per-thread maximum
    (255 on Kepler).  ``reserved_registers`` models the handful ptxas keeps
    for its own use (call/return state).
    """
    limit = register_limit or arch.max_registers_per_thread
    intervals = compute_live_intervals(kernel.instrs)
    demand = max_pressure(intervals) + reserved_registers

    spilled: list[LiveInterval] = []
    if demand > limit:
        # Spill longest-lived values first (classic linear-scan heuristic);
        # each spill replaces the long interval with per-use short reloads,
        # modelled as freeing the interval entirely but charging traffic.
        remaining = sorted(intervals, key=lambda iv: -iv.length)
        live = list(intervals)
        for candidate in remaining:
            if max_pressure(live) + reserved_registers <= limit:
                break
            live.remove(candidate)
            spilled.append(candidate)
        demand_after = max_pressure(live) + reserved_registers
        registers = min(limit, max(demand_after, 1))
    else:
        registers = demand

    spill_stores = sum(1 for _ in spilled)
    spill_loads = sum(iv.use_count for iv in spilled)
    spill_bytes = sum(iv.vreg.units * 4 for iv in spilled)
    info = PtxasInfo(
        kernel_name=kernel.name,
        registers=min(arch.round_registers(registers), limit),
        spilled_vregs=len(spilled),
        spill_loads=spill_loads,
        spill_stores=spill_stores,
        spill_bytes=spill_bytes,
        raw_pressure=demand,
    )
    return AllocationResult(info=info, intervals=intervals, spilled=spilled)


def ptxas_info(
    kernel: VirKernel,
    arch: GpuArch = KEPLER_K20XM,
    register_limit: int | None = None,
) -> PtxasInfo:
    """Convenience wrapper returning only the feedback record."""
    return allocate(kernel, arch, register_limit).info
