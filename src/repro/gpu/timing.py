"""Analytic kernel-time model for the simulated Kepler device.

The model evaluates three classical bounds per SM and takes their maximum:

``compute``
    Total warp-instruction issue cycles divided by the SM's scheduler
    throughput.

``bandwidth``
    Total memory traffic (from the transaction model) against the SM's
    share of DRAM bandwidth.

``latency``
    Total exposed memory latency divided by the number of *resident*
    warps — the occupancy term.  This is where register pressure bites:
    scalar replacement removes loads (shrinking the numerator) but may
    reduce occupancy (shrinking the denominator), reproducing the paper's
    Figure 7, where aggressive SAFARA slows 355.seismic down until the
    ``dim``/``small`` clauses recover the registers.

Instruction counts come from walking the VIR stream with sequential-loop
trip multipliers; the launch topology supplies the thread count.  Nothing
is hard-coded per benchmark: changing a clause changes the generated code,
which changes registers, occupancy and traffic, which changes time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis.coalescing import AccessInfo, AccessPattern
from ..analysis.memspace import MemSpace
from ..codegen.vir import Instr, Op, VirKernel
from .arch import GpuArch, KEPLER_K20XM
from .memory import access_latency, warp_transaction_bytes
from .occupancy import Occupancy, compute_occupancy
from .registers import PtxasInfo

#: Warp-instruction issue cost by class (cycles per warp instruction,
#: normalised to one scheduler).  The f64 cost is derived per-arch from
#: ``arch.f64_throughput_ratio`` (3.0 on the K20X's 1/3-rate DP units,
#: 1.0 on CDNA2's full-rate FP64 pipes).
_ISSUE_COST = {
    "alu32": 1.0,
    "alu64": 2.0,
    "f32": 1.0,
    "math": 8.0,  # sqrt/div/transcendental via SFU
    "mov": 0.5,
    "mem": 1.0,
}


def _f64_cost(arch: GpuArch) -> float:
    return 1.0 / max(arch.f64_throughput_ratio, 1e-9)


@dataclass(slots=True)
class ThreadProfile:
    """Per-thread dynamic counts extracted from the VIR stream."""

    issue_cycles: float = 0.0
    mem_latency: float = 0.0
    mem_bytes_warp: float = 0.0  # bytes per *warp* (already warp-wide)
    loads: float = 0.0
    stores: float = 0.0


@dataclass(slots=True)
class KernelTiming:
    """The timing verdict for one kernel launch."""

    name: str
    total_threads: int
    threads_per_block: int
    occupancy: Occupancy
    compute_cycles: float
    bandwidth_cycles: float
    latency_cycles: float
    time_ms: float
    bound: str
    profile: ThreadProfile = field(default=None)

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.bandwidth_cycles, self.latency_cycles)


def profile_thread(
    kernel: VirKernel,
    env: dict[str, int],
    spill_info: PtxasInfo | None = None,
    arch: GpuArch = KEPLER_K20XM,
    branch_weight: float = 1.0,
) -> ThreadProfile:
    """Walk the instruction stream accumulating per-thread costs.

    Sequential loops multiply their body by the trip count evaluated in
    ``env``; ``if`` bodies are weighted by ``branch_weight`` (1.0 models
    the common all-threads-take-the-guard case).
    """
    prof = ThreadProfile()
    mult_stack: list[float] = [1.0]

    def mult() -> float:
        return mult_stack[-1]

    for ins in kernel.instrs:
        op = ins.op
        if op is Op.LOOP_BEGIN:
            trips = ins.loop.trip_count(env) if ins.loop is not None else None
            if trips is None and ins.loop is not None:
                # Data-dependent bounds (e.g. CSR row loops): the benchmark
                # supplies an average trip count as __trips_<var>.
                trips = env.get(f"__trips_{ins.loop.var.name}")
            if trips is None:
                raise ValueError(
                    f"trip count of loop {ins.loop.var.name if ins.loop else '?'} "
                    "not evaluable; missing env entries?"
                )
            mult_stack.append(mult() * max(trips, 0))
            continue
        if op is Op.LOOP_END:
            mult_stack.pop()
            continue
        if op is Op.IF_BEGIN:
            mult_stack.append(mult() * branch_weight)
            continue
        if op in (Op.IF_ELSE,):
            continue
        if op is Op.IF_END:
            mult_stack.pop()
            continue
        if op is Op.RET:
            continue
        m = mult()
        if op in (Op.LD, Op.ST):
            assert ins.access is not None and ins.space is not None
            prof.issue_cycles += m * _ISSUE_COST["mem"]
            prof.mem_latency += m * access_latency(ins.space, ins.access, arch)
            prof.mem_bytes_warp += m * warp_transaction_bytes(
                ins.access, ins.width_bits, arch
            )
            if op is Op.LD:
                prof.loads += m
            else:
                prof.stores += m
        elif op is Op.MATH or op is Op.DIV or op is Op.REM:
            prof.issue_cycles += m * _ISSUE_COST["math"]
        elif op is Op.BAR:
            # Barrier: roughly a pipeline drain across the block.
            prof.issue_cycles += m * 20.0
        elif op in (Op.MOV, Op.MOV_IMM, Op.LD_PARAM, Op.LD_DOPE, Op.TID, Op.CTAID, Op.NTID):
            prof.issue_cycles += m * _ISSUE_COST["mov"]
        else:
            dst_bits = ins.dst.bits if ins.dst is not None else 32
            if ins.is_float:
                prof.issue_cycles += m * (
                    _f64_cost(arch) if dst_bits == 64 else _ISSUE_COST["f32"]
                )
            else:
                prof.issue_cycles += m * (
                    _ISSUE_COST["alu64"] if dst_bits == 64 else _ISSUE_COST["alu32"]
                )

    if spill_info is not None and spill_info.spilled_vregs:
        # Spill traffic: local-memory accesses per thread.
        uniform = AccessInfo(AccessPattern.COALESCED, 1)
        lat = access_latency(MemSpace.LOCAL, uniform, arch)
        n = spill_info.spill_loads + spill_info.spill_stores
        prof.mem_latency += n * lat
        prof.issue_cycles += n * _ISSUE_COST["mem"]
        prof.mem_bytes_warp += n * warp_transaction_bytes(uniform, 32, arch)
        prof.loads += spill_info.spill_loads
        prof.stores += spill_info.spill_stores
    return prof


def estimate_time(
    kernel: VirKernel,
    ptxas: PtxasInfo,
    env: dict[str, int],
    arch: GpuArch = KEPLER_K20XM,
    launches: int = 1,
    issue_scale: float = 1.0,
) -> KernelTiming:
    """Estimate wall-clock time of ``launches`` executions of the kernel.

    ``issue_scale`` models relative backend code quality (a mature
    commercial backend emits tighter scalar code than a research
    prototype); it scales only the compute bound.
    """
    prof = profile_thread(kernel, env, spill_info=ptxas, arch=arch)
    prof.issue_cycles *= issue_scale
    total_threads = max(1, kernel.launch.total_threads(env))
    tpb = kernel.launch.threads_per_block
    occ = compute_occupancy(
        ptxas.registers, tpb, arch, shared_mem_per_block=kernel.smem_bytes
    )

    total_warps = math.ceil(total_threads / arch.warp_size)
    # The busiest SM bounds kernel time; tiny launches (e.g. a loop that a
    # bad transformation sequentialised) cannot be spread below one warp.
    warps_per_sm = max(total_warps / arch.num_sms, 1.0) if total_warps else 0.0

    compute_cycles = warps_per_sm * prof.issue_cycles / arch.schedulers_per_sm

    bytes_per_sm = warps_per_sm * prof.mem_bytes_warp
    bytes_per_cycle_sm = (
        arch.mem_bandwidth_gbs * 1e9 / (arch.clock_mhz * 1e6) / arch.num_sms
    )
    bandwidth_cycles = bytes_per_sm / bytes_per_cycle_sm

    active = max(occ.active_warps, 1)
    latency_cycles = warps_per_sm * prof.mem_latency / active

    cycles = max(compute_cycles, bandwidth_cycles, latency_cycles)
    bound = {
        compute_cycles: "compute",
        bandwidth_cycles: "bandwidth",
        latency_cycles: "latency",
    }[cycles]
    time_ms = launches * cycles / (arch.clock_mhz * 1e3)
    return KernelTiming(
        name=kernel.name,
        total_threads=total_threads,
        threads_per_block=tpb,
        occupancy=occ,
        compute_cycles=compute_cycles,
        bandwidth_cycles=bandwidth_cycles,
        latency_cycles=latency_cycles,
        time_ms=time_ms,
        bound=bound,
        profile=prof,
    )
