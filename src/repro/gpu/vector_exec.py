"""Vectorized SIMT execution engine: parallel loops as NumPy array axes.

The scalar interpreter (:mod:`repro.gpu.interpreter`) is the correctness
oracle, but it executes OpenACC-parallel loops one Python iteration at a
time.  This module executes whole loop nests as *batched* NumPy programs:
each parallel loop the planner (:mod:`repro.codegen.vector_lower`) proves
safe becomes a trailing array axis over its full iteration domain, every
expression is evaluated once as a broadcast operation over all lanes, and
``If`` branches become boolean lane masks with both sides evaluated under
their respective masks.

Bit-for-bit equality with the oracle is preserved by construction:

* lane axes are appended in nesting order, so C-order resolution of
  duplicate fancy-index writes equals the scalar iteration order;
* every value carries a *kind* (weak Python ``int``/``float`` or strong
  ``np.int32``/``np.int64``/``np.float32``/``np.float64``) so NEP 50
  promotion and the interpreter's flop-counting rule are replayed exactly;
* transcendental intrinsics go through ``math.*`` per element (NumPy's own
  ``sin``/``exp`` may differ from libm in the last ulp);
* anything that cannot be reproduced exactly — lane-dependent values where
  the interpreter would hold one Python scalar, Python-semantics errors
  like division by zero, arbitrary-precision integers — raises
  :class:`VectorUnsupported`, and :func:`execute_kernel` falls back to the
  scalar interpreter on *pristine* inputs (the vector attempt runs on array
  copies), reproducing even error-path partial mutation.

:class:`~repro.gpu.interpreter.ExecutionStats` counters are derived
analytically from active-lane counts (see the contract on that class), and
must match the scalar counters exactly — tests assert this.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..codegen.vector_lower import AXIS, KernelPlan, plan_kernel
from ..executors import Executor, parse_executor
from ..ir.expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
)
from ..ir.module import KernelFunction
from ..ir.stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from ..obs.tracer import span
from .interpreter import ExecutionStats, bind_arguments, run_kernel

logger = logging.getLogger(__name__)


class VectorUnsupported(Exception):
    """The vector engine cannot reproduce scalar semantics here; callers
    fall back to the interpreter (the message is the logged reason)."""


_fallback_local = threading.local()


@contextmanager
def fallback_listener(callback):
    """Install a thread-local degradation hook for the calling thread.

    ``callback(kernel_name, reason)`` fires every time a vector/auto
    execution inside the scope falls back to the scalar interpreter.  The
    serving broker uses this to count degradations (with their reasons)
    in its metrics registry without threading a callback through every
    execution call site.
    """
    previous = getattr(_fallback_local, "callback", None)
    _fallback_local.callback = callback
    try:
        yield
    finally:
        _fallback_local.callback = previous


def _notify_fallback(kernel: str, reason: str) -> None:
    callback = getattr(_fallback_local, "callback", None)
    if callback is not None:
        callback(kernel, reason)


# -- value kinds -------------------------------------------------------------
#
# NEP 50: Python scalars are "weak" (they adopt the other operand's dtype);
# NumPy scalars are "strong".  ``np.float64`` both subclasses Python
# ``float`` (it counts as a flop operand) and promotes strongly, so weak
# and strong float64 must stay distinguishable.

PYINT = "pyint"
PYFLOAT = "pyfloat"
I32 = "i32"
I64 = "i64"
F32 = "f32"
F64 = "f64"

_KIND_DTYPE = {
    PYINT: np.dtype(np.int64),
    PYFLOAT: np.dtype(np.float64),
    I32: np.dtype(np.int32),
    I64: np.dtype(np.int64),
    F32: np.dtype(np.float32),
    F64: np.dtype(np.float64),
}
_DTYPE_KIND = {
    np.dtype(np.int32): I32,
    np.dtype(np.int64): I64,
    np.dtype(np.float32): F32,
    np.dtype(np.float64): F64,
}
_WEAK = {PYINT, PYFLOAT}
_INT_KINDS = {PYINT, I32, I64}
#: Kinds whose values are Python ``float`` instances to the scalar
#: interpreter's flop rule (``np.float64`` subclasses ``float``).
_PYFLOAT_LIKE = {PYFLOAT, F64}

#: Magnitude bound on weak-integer operands: products of two such values
#: fit in int64, so int64 arithmetic matches Python's bignums.
_INT_GUARD = 2**31
#: Magnitude bound on float→int conversions (results stay well inside
#: int64, where ``astype`` truncation equals Python ``int()``).
_CAST_GUARD = 2**62


_CMP_UFUNC = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}


def _promote(lk: str, rk: str) -> str:
    if lk == rk:
        return lk
    if lk in _WEAK and rk in _WEAK:
        return PYFLOAT if PYFLOAT in (lk, rk) else PYINT
    if lk in _WEAK or rk in _WEAK:
        weak, strong = (lk, rk) if lk in _WEAK else (rk, lk)
        if weak == PYINT:
            return strong
        # weak float + strong float keeps the strong precision;
        # weak float + strong int goes to float64.
        return strong if strong in (F32, F64) else F64
    return _DTYPE_KIND[np.result_type(_KIND_DTYPE[lk], _KIND_DTYPE[rk])]


@dataclass(slots=True)
class VArray:
    """One lane-indexed value: an ndarray whose trailing dimensions map to
    the active axis stack (missing trailing axes broadcast), its kind, and
    which lanes actually hold a value (``True`` or a bool lane mask)."""

    data: np.ndarray
    kind: str
    defined: object = True  # True | np.ndarray[bool]


def _const_int(value: int) -> VArray:
    return VArray(np.asarray(value, dtype=np.int64), PYINT)


@dataclass(slots=True)
class ExecutionInfo:
    """What :func:`execute_kernel` actually did, for stats/observability."""

    requested: str
    used: str  # "codegen" | "vector" | "scalar"
    fallback_reason: str | None = None
    #: Lane-iterations executed through batched axis loops.
    elements: int = 0
    region_elements: dict[str, int] = field(default_factory=dict)
    #: Planner demotion reasons (parallel loops executed sequentially).
    demoted: list[str] = field(default_factory=list)
    #: Wall time spent obtaining the generated program (None when the
    #: codegen tier was never consulted; ~0 on a function-cache hit).
    codegen_ms: float | None = None

    def as_dict(self) -> dict:
        out: dict = {"requested": self.requested, "used": self.used}
        if self.fallback_reason is not None:
            out["fallback_reason"] = self.fallback_reason
        out["elements"] = self.elements
        if self.region_elements:
            out["region_elements"] = dict(self.region_elements)
        if self.demoted:
            out["demoted"] = list(self.demoted)
        if self.codegen_ms is not None:
            out["codegen_ms"] = round(self.codegen_ms, 6)
        return out


class VectorInterpreter:
    """Executes one kernel function with planned parallel loops as axes.

    Mutates the arrays it is given (callers pass copies and commit on
    success).  Raises :class:`VectorUnsupported` — or any error an
    expression evaluation produces — when exact scalar semantics cannot be
    guaranteed; nothing observable should be trusted after that.
    """

    def __init__(
        self,
        fn: KernelFunction,
        plan: KernelPlan,
        scalars: dict[str, object],
        arrays: dict[str, np.ndarray],
        lowers: dict[str, tuple[int, ...]],
    ):
        self._fn = fn
        self._plan = plan
        self._arrays = arrays
        self._lowers = lowers
        self._env: dict[str, VArray] = {}
        self._axes: list[str] = []
        self._shape: tuple[int, ...] = ()
        self._mask: np.ndarray | None = None  # None == all lanes active
        self._acount: int | None = None
        self.stats = ExecutionStats()
        self.elements = 0
        self.region_elements: dict[str, int] = {}
        for name, value in scalars.items():
            self._env[name] = self._bind_scalar(name, value)

    @staticmethod
    def _bind_scalar(name: str, value: object) -> VArray:
        if isinstance(value, np.generic):
            kind = _DTYPE_KIND.get(value.dtype)
            if kind is None:
                raise VectorUnsupported(
                    f"argument {name!r} has unsupported dtype {value.dtype}"
                )
            return VArray(np.asarray(value), kind)
        if isinstance(value, float):
            return VArray(np.asarray(value, dtype=np.float64), PYFLOAT)
        if isinstance(value, int):  # bool included — arithmetic treats it as int
            if abs(value) >= _CAST_GUARD:
                raise VectorUnsupported(f"argument {name!r} exceeds int64 range")
            return VArray(np.asarray(int(value), dtype=np.int64), PYINT)
        raise VectorUnsupported(
            f"argument {name!r} has unsupported type {type(value).__name__}"
        )

    # -- lane bookkeeping ---------------------------------------------------
    def _lift(self, data: np.ndarray) -> np.ndarray:
        n = len(self._axes)
        if data.ndim == n:
            return data
        return data.reshape(data.shape + (1,) * (n - data.ndim))

    def _active(self) -> int:
        if self._acount is None:
            if self._mask is None:
                self._acount = math.prod(self._shape)
            else:
                self._acount = int(
                    np.count_nonzero(np.broadcast_to(self._mask, self._shape))
                )
        return self._acount

    def _set_mask(self, mask: np.ndarray | None) -> None:
        self._mask = mask
        self._acount = None

    def _masked_any(self, cond: np.ndarray) -> bool:
        """Does ``cond`` hold on any *active* lane?"""
        cond = self._lift(np.asarray(cond))
        if self._mask is not None:
            cond = cond & self._mask
        return bool(np.broadcast_to(cond, self._shape).any())

    def _sanitize(self, data: np.ndarray, fill: object) -> np.ndarray:
        """Replace inactive-lane values (which may be arbitrary garbage)
        with a safe ``fill`` before an operation that could fault on them."""
        if self._mask is None:
            return data
        return np.where(self._mask, self._lift(data), fill)

    # -- scalar environment -------------------------------------------------
    def _env_get(self, name: str) -> VArray:
        va = self._env.get(name)
        if va is None:
            raise VectorUnsupported(f"read of unset scalar {name!r}")
        if va.defined is not True and self._masked_any(~va.defined):
            raise VectorUnsupported(f"scalar {name!r} undefined on active lanes")
        return va

    def _env_set(self, name: str, va: VArray) -> None:
        if self._mask is None:
            self._env[name] = va
            return
        old = self._env.get(name)
        m = self._mask
        if old is None:
            data = np.where(m, self._lift(va.data), _KIND_DTYPE[va.kind].type(0))
            defined = np.broadcast_to(m, data.shape).copy()
            self._env[name] = VArray(data, va.kind, defined)
            return
        if old.kind != va.kind:
            raise VectorUnsupported(
                f"scalar {name!r} holds mixed kinds across lanes "
                f"({old.kind} vs {va.kind})"
            )
        data = np.where(m, self._lift(va.data), self._lift(old.data))
        if old.defined is True:
            defined: object = True
        else:
            defined = np.broadcast_to(m | self._lift(old.defined), data.shape).copy()
        self._env[name] = VArray(data, va.kind, defined)

    # -- numeric guards -----------------------------------------------------
    def _guard_weak_int(self, va: VArray, what: str) -> None:
        if va.kind == PYINT and self._masked_any(np.abs(va.data) >= _INT_GUARD):
            raise VectorUnsupported(f"{what}: weak integer exceeds safe range")

    def _float_to_int(self, data: np.ndarray, what: str) -> np.ndarray:
        """Python ``int(float)`` truncation, guarded against lanes where
        int64 ``astype`` would diverge from Python (non-finite / huge)."""
        bad = ~np.isfinite(data) | (np.abs(data) >= _CAST_GUARD)
        if self._masked_any(bad):
            raise VectorUnsupported(f"{what}: float→int out of exact range")
        with np.errstate(invalid="ignore"):
            return self._sanitize(data, 0.0).astype(np.int64)

    # -- execution ----------------------------------------------------------
    def run(self) -> None:
        self._exec_stmts(self._fn.body)

    def _exec_stmts(self, stmts: list[Stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, VarRef):
                self._assign_scalar(stmt.target.sym, value)
            else:
                self._store_idx(
                    stmt.target, self._eval_indices(stmt.target), value
                )
        elif isinstance(stmt, LocalDecl):
            if stmt.init is not None:
                self._assign_scalar(stmt.sym, self._eval(stmt.init))
            else:
                self._decl_default(stmt.sym.name)
        elif isinstance(stmt, If):
            self._apply_if(
                self._eval(stmt.cond),
                lambda: self._exec_stmts(stmt.then_body),
                lambda: self._exec_stmts(stmt.else_body),
            )
        elif isinstance(stmt, Loop):
            self._run_loop(
                stmt,
                lambda: self._exec_stmts(stmt.body),
                self._plan.mode_of(stmt) == AXIS,
            )
        elif isinstance(stmt, Region):
            self._run_region(stmt.name_hint, lambda: self._exec_stmts(stmt.body))
        else:
            raise VectorUnsupported(f"unknown statement {type(stmt).__name__}")

    def _assign_scalar(self, sym, va: VArray) -> None:
        self._env_set(sym.name, self._coerce_scalar(sym, va))

    def _run_region(self, name_hint: str, body) -> None:
        before = self.elements
        body()
        self.region_elements[name_hint] = (
            self.region_elements.get(name_hint, 0) + self.elements - before
        )

    def _coerce_scalar(self, sym, va: VArray) -> VArray:
        """The interpreter's ``_coerce_scalar``: assignments to a scalar
        apply ``float()`` / ``int()`` per the symbol's declared type."""
        if sym.stype.is_float:
            return VArray(va.data.astype(np.float64), PYFLOAT)
        if va.kind in _INT_KINDS:
            return VArray(va.data.astype(np.int64), PYINT)
        return VArray(
            self._float_to_int(va.data.astype(np.float64), f"int({sym.name})"),
            PYINT,
        )

    def _decl_default(self, name: str) -> None:
        """``scalars.setdefault(name, 0)`` on the active lanes."""
        old = self._env.get(name)
        if old is None:
            self._env_set(name, _const_int(0))
            return
        if old.defined is True:
            return  # every lane already holds a value
        if old.kind != PYINT:
            raise VectorUnsupported(
                f"scalar {name!r} holds mixed kinds across lanes"
            )
        od = self._lift(old.defined)
        need = ~od if self._mask is None else (~od & self._mask)
        data = np.where(od, self._lift(old.data), np.int64(0))
        defined = np.broadcast_to(od | need, data.shape).copy()
        self._env[name] = VArray(data, PYINT, True if defined.all() else defined)

    def _apply_if(self, cond: VArray, then_body, else_body) -> None:
        """``If`` with a pre-evaluated condition and body thunks (shared
        with the generated-code tier, which passes nested functions)."""
        if not self._axes:
            if bool(cond.data):
                then_body()
            else:
                else_body()
            return
        truth = self._lift(cond.data) != 0
        base = self._mask
        m_then = truth if base is None else (base & truth)
        m_else = ~truth if base is None else (base & ~truth)
        if self._masked_count(m_then):
            self._set_mask(m_then)
            then_body()
        if self._masked_count(m_else):
            self._set_mask(m_else)
            else_body()
        self._set_mask(base)

    def _masked_count(self, mask: np.ndarray) -> int:
        return int(np.count_nonzero(np.broadcast_to(mask, self._shape)))

    # -- loops --------------------------------------------------------------
    def _run_loop(self, loop: Loop, body, axis: bool) -> None:
        """Dispatch one loop with its *planned* mode baked in (``axis``) and
        its body as a thunk.  The interpreter passes a recursive statement
        walk; the generated-code tier passes a nested function.  Axis-mode
        loops still demote dynamically to the ordinal walk when their
        concrete bounds turn out lane-varying."""
        lo_va = self._eval_loop_bound(loop.init)
        hi_va = self._eval_loop_bound(loop.bound)
        lo = self._uniform_int(lo_va)
        hi = self._uniform_int(hi_va)
        if lo is not None and hi is not None:
            vals = _range_of(loop, lo, hi)
            if len(vals) == 0:
                return
            if axis:
                self._exec_axis_loop(loop, vals, body)
            else:
                self._exec_seq_uniform(loop, vals, body)
            return
        self._exec_seq_varying(loop, lo_va, hi_va, body)

    def _eval_loop_bound(self, e: Expr) -> VArray:
        """Loop bounds mirror ``Loop.iter_values``'s restricted evaluator
        (``ir.stmt._eval_int`` over the integer scalar environment); any
        construct it would reject must fall back, not be 'helpfully'
        evaluated here."""
        if isinstance(e, IntConst):
            return _const_int(e.value)
        if isinstance(e, VarRef):
            va = self._env_get(e.sym.name)
            if va.kind not in _INT_KINDS:
                raise VectorUnsupported(
                    f"loop bound reads non-integer scalar {e.sym.name!r}"
                )
            return VArray(va.data.astype(np.int64), PYINT, va.defined)
        if isinstance(e, UnOp) and e.op == "-":
            va = self._eval_loop_bound(e.operand)
            return VArray(-va.data, PYINT, va.defined)
        if isinstance(e, BinOp) and e.op in ("+", "-", "*", "/", "%"):
            lhs = self._eval_loop_bound(e.left)
            rhs = self._eval_loop_bound(e.right)
            self._guard_weak_int(lhs, "loop bound")
            self._guard_weak_int(rhs, "loop bound")
            la, rb = self._lift(lhs.data), self._lift(rhs.data)
            if e.op == "+":
                data = la + rb
            elif e.op == "-":
                data = la - rb
            elif e.op == "*":
                data = la * rb
            else:  # '/' or '%': C truncation; 0 divisor → interpreter error
                if self._masked_any(rb == 0):
                    raise VectorUnsupported("loop bound divides by zero")
                rb = np.where(rb == 0, np.int64(1), rb)
                q = np.abs(la) // np.abs(rb)
                q = np.where((la >= 0) == (rb >= 0), q, -q)
                data = q if e.op == "/" else la - rb * q
            return VArray(data, PYINT)
        raise VectorUnsupported(
            f"loop bound uses {type(e).__name__} (not evaluable by iter_values)"
        )

    def _uniform_int(self, va: VArray) -> int | None:
        data = va.data
        if data.ndim == 0:
            return int(data)
        vals = np.broadcast_to(self._lift(data), self._shape)
        if self._mask is not None:
            vals = vals[np.broadcast_to(self._mask, self._shape)]
        else:
            vals = vals.reshape(-1)
        if vals.size == 0:
            return None
        first = vals[0]
        return int(first) if bool((vals == first).all()) else None

    def _exec_axis_loop(self, loop: Loop, vals: range, body) -> None:
        var = loop.var.name
        saved = self._env.get(var)
        saved_mask = self._mask
        n0 = len(self._axes)
        axis_vals = np.asarray(list(vals), dtype=np.int64)
        self._axes.append(var)
        self._shape = self._shape + (len(vals),)
        self._set_mask(None if saved_mask is None else saved_mask[..., None])
        self._env[var] = VArray(axis_vals.reshape((1,) * n0 + (len(vals),)), PYINT)
        active = self._active()
        self.stats.iterations += active
        self.elements += active
        body()
        # Pop the axis: anything written per-lane keeps its final-iteration
        # slice (the scalar interpreter leaks the last iteration's value;
        # the planner demoted the loop if a lane-varying final is *read*).
        n1 = n0 + 1
        for name, va in list(self._env.items()):
            data, defined, changed = va.data, va.defined, False
            if data.ndim == n1:
                data, changed = data[..., -1], True
            if isinstance(defined, np.ndarray) and defined.ndim == n1:
                defined, changed = defined[..., -1], True
            if changed:
                self._env[name] = VArray(data, va.kind, defined)
        self._axes.pop()
        self._shape = self._shape[:-1]
        self._set_mask(saved_mask)
        if saved is not None:
            self._env[var] = saved
        else:
            self._env.pop(var, None)
            self._env_set(var, _const_int(vals[-1]))

    def _exec_seq_uniform(self, loop: Loop, vals: range, body) -> None:
        var = loop.var.name
        saved = self._env.get(var)
        for v in vals:
            self._env_set(var, _const_int(v))
            self.stats.iterations += self._active()
            body()
        if saved is not None:
            self._env[var] = saved

    def _exec_seq_varying(
        self, loop: Loop, lo_va: VArray, hi_va: VArray, body
    ) -> None:
        """Sequential loop whose bounds differ per lane (e.g. a CSR row
        walk): advance every lane through its *own* range in lockstep —
        at ordinal step ``k`` each active lane executes its ``k``-th
        iteration (loop variable ``start ± k``), with a membership mask
        retiring lanes past their trip count.  The Python-loop cost is the
        longest per-lane trip count, not the span of the union of ranges
        (a CSR row walk's absolute ranges jointly cover all of ``nnz``).

        Reordering which (lane, iteration) pairs run simultaneously is
        invisible: the planner only admits lane-varying sequential loops
        whose array accesses are cross-lane disjoint for *all* iteration
        pairs, each lane's own iterations stay in order, and scalar
        privates merge per-lane through the masked environment."""
        if loop.step not in (1, -1):
            raise VectorUnsupported(
                f"lane-varying bounds with step {loop.step} on loop "
                f"'{loop.var.name}'"
            )
        adjust = {"<": 0, "<=": 1, ">": 0, ">=": -1}[loop.cond_op]
        start = np.broadcast_to(self._lift(lo_va.data), self._shape)
        stop = np.broadcast_to(self._lift(hi_va.data) + adjust, self._shape)
        base = self._mask
        trips = np.maximum(stop - start, 0) if loop.step == 1 else np.maximum(
            start - stop, 0
        )
        if base is not None:
            trips = np.where(np.broadcast_to(base, self._shape), trips, 0)
        max_trips = int(trips.max()) if trips.size else 0
        if max_trips == 0:
            return
        var = loop.var.name
        saved = self._env.get(var)
        for k in range(max_trips):
            m_k = trips > k
            count = self._masked_count(m_k)
            self._set_mask(m_k)
            values = start + k if loop.step == 1 else start - k
            self._env_set(var, VArray(values.astype(np.int64), PYINT))
            self.stats.iterations += count
            body()
        self._set_mask(base)
        if saved is not None:
            self._env[var] = saved
        else:
            # Per-lane leak of the final iteration value on lanes that ran.
            ran = (stop > start) if loop.step == 1 else (stop < start)
            m_ran = ran if base is None else (base & ran)
            if m_ran.any():
                last = stop - 1 if loop.step == 1 else stop + 1
                data = np.where(m_ran, last, np.int64(0))
                self._env[var] = VArray(data, PYINT, m_ran)
            else:
                self._env.pop(var, None)

    # -- memory -------------------------------------------------------------
    def _eval_indices(self, ref: ArrayRef) -> list[VArray]:
        return [self._eval(sub) for sub in ref.indices]

    def _index_from(
        self, ref: ArrayRef, vas: list[VArray]
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        name = ref.sym.name
        arr = self._arrays[name]
        lowers = self._lowers.get(name)
        idx: list[np.ndarray] = []
        for axis, va in enumerate(vas):
            if va.kind in _INT_KINDS:
                data = self._lift(va.data.astype(np.int64))
            else:
                data = self._lift(
                    self._float_to_int(
                        va.data.astype(np.float64), f"subscript of {name!r}"
                    )
                )
            if lowers is not None:
                data = data - lowers[axis]
            idx.append(data)
        pointer = ref.sym.array is not None and ref.sym.array.is_pointer
        if pointer:
            extents = [arr.size]
        else:
            extents = [arr.shape[axis] for axis in range(len(idx))]
        clipped = []
        for data, extent in zip(idx, extents):
            if self._masked_any((data < 0) | (data >= extent)):
                raise VectorUnsupported(f"out-of-bounds access on {name!r}")
            clipped.append(np.clip(data, 0, max(extent - 1, 0)))
        return arr, clipped

    def _load_idx(self, ref: ArrayRef, vas: list[VArray]) -> VArray:
        arr, idx = self._index_from(ref, vas)
        self.stats.loads += self._active()
        if ref.sym.array is not None and ref.sym.array.is_pointer:
            data = arr.reshape(-1)[idx[0]]
        else:
            data = arr[tuple(idx)]
        return VArray(data, _DTYPE_KIND[arr.dtype])

    def _store_idx(self, ref: ArrayRef, vas: list[VArray], value: VArray) -> None:
        arr, idx = self._index_from(ref, vas)
        if arr.dtype.kind in "iu":
            # Scalar element assignment raises on NaN/inf and on values
            # outside the target's range; array assignment wraps silently.
            vdata = value.data
            if value.kind not in _INT_KINDS and self._masked_any(
                ~np.isfinite(vdata)
            ):
                raise VectorUnsupported("non-finite value stored to int array")
            info = np.iinfo(arr.dtype)
            if self._masked_any((vdata < info.min) | (vdata > info.max)):
                raise VectorUnsupported("integer store out of range")
        self.stats.stores += self._active()
        target = (
            arr.reshape(-1)
            if ref.sym.array is not None and ref.sym.array.is_pointer
            else arr
        )
        # Broadcast indices and value to the full lane shape so duplicate
        # writes resolve in C order — the scalar iteration order.
        full_idx = tuple(np.broadcast_to(i, self._shape) for i in idx)
        val = np.broadcast_to(self._lift(value.data), self._shape)
        with np.errstate(invalid="ignore", over="ignore"):
            if self._mask is None:
                if len(full_idx) == 1 and target.ndim == 1:
                    target[full_idx[0]] = val
                else:
                    target[full_idx] = val
            else:
                m = np.broadcast_to(self._mask, self._shape)
                sel = tuple(i[m] for i in full_idx)
                if len(sel) == 1 and target.ndim == 1:
                    target[sel[0]] = val[m]
                else:
                    target[sel] = val[m]

    # -- expressions --------------------------------------------------------
    def _eval(self, e: Expr) -> VArray:
        if isinstance(e, IntConst):
            return _const_int(e.value)
        if isinstance(e, FloatConst):
            return VArray(np.asarray(e.value, dtype=np.float64), PYFLOAT)
        if isinstance(e, VarRef):
            return self._env_get(e.sym.name)
        if isinstance(e, ArrayRef):
            return self._load_idx(e, self._eval_indices(e))
        if isinstance(e, UnOp):
            return self._apply_unop(e.op, self._eval(e.operand))
        if isinstance(e, BinOp):
            if e.op in ("&&", "||"):
                return self._apply_logic(
                    e.op, self._eval(e.left), lambda: self._eval(e.right)
                )
            return self._apply_binop(e.op, self._eval(e.left), self._eval(e.right))
        if isinstance(e, Select):
            return self._apply_select(
                self._eval(e.cond),
                lambda: self._eval(e.then),
                lambda: self._eval(e.otherwise),
            )
        if isinstance(e, Cast):
            return self._apply_cast(e.to_type, self._eval(e.operand))
        if isinstance(e, Call):
            return self._apply_call(e.func, [self._eval(a) for a in e.args])
        raise VectorUnsupported(f"unknown expression {type(e).__name__}")

    def _apply_unop(self, op: str, va: VArray) -> VArray:
        if op == "-":
            return VArray(-va.data, va.kind)
        if op == "!":
            return VArray((va.data == 0).astype(np.int64), PYINT)
        raise VectorUnsupported(f"unknown unary {op!r}")

    def _apply_select(self, cond: VArray, then_thunk, else_thunk) -> VArray:
        """Ternary with a pre-evaluated condition and arm thunks; each arm
        is evaluated only under the lanes that take it (shared with the
        generated-code tier)."""
        if not self._axes:
            return then_thunk() if bool(cond.data) else else_thunk()
        truth = self._lift(cond.data) != 0
        base = self._mask
        m_then = truth if base is None else (base & truth)
        m_else = ~truth if base is None else (base & ~truth)
        then_va = else_va = None
        if self._masked_count(m_then):
            self._set_mask(m_then)
            then_va = then_thunk()
        if self._masked_count(m_else):
            self._set_mask(m_else)
            else_va = else_thunk()
        self._set_mask(base)
        if then_va is None:
            return else_va  # type: ignore[return-value]
        if else_va is None:
            return then_va
        if then_va.kind != else_va.kind:
            raise VectorUnsupported(
                "ternary arms yield different kinds per lane"
            )
        data = np.where(truth, self._lift(then_va.data), self._lift(else_va.data))
        return VArray(data, then_va.kind)

    def _apply_cast(self, to_type, va: VArray) -> VArray:
        if to_type.is_float:
            if to_type.bits == 32:
                # float(np.float32(v)): round to f32, widen back to Python float
                data = va.data.astype(np.float32).astype(np.float64)
            else:
                data = va.data.astype(np.float64)
            return VArray(data, PYFLOAT)
        if va.kind in _INT_KINDS:
            return VArray(va.data.astype(np.int64), PYINT)
        return VArray(
            self._float_to_int(va.data.astype(np.float64), "int cast"), PYINT
        )

    def _truthy(self, va: VArray) -> np.ndarray:
        return self._lift(va.data) != 0

    def _apply_binop(self, op: str, lhs: VArray, rhs: VArray) -> VArray:
        kind = _promote(lhs.kind, rhs.kind)
        dtype = _KIND_DTYPE[kind]
        la = self._lift(lhs.data).astype(dtype, copy=False)
        rb = self._lift(rhs.data).astype(dtype, copy=False)
        if dtype.kind == "f":
            # Python compares int/float exactly; float64 rounds ints above
            # 2**53.  The weak-int guard keeps us far inside the exact range.
            self._guard_weak_int(lhs, f"operator {op!r}")
            self._guard_weak_int(rhs, f"operator {op!r}")
        if op in _CMP_UFUNC:
            return VArray(_CMP_UFUNC[op](la, rb).astype(np.int64), PYINT)
        self._guard_weak_int(lhs, f"operator {op!r}")
        self._guard_weak_int(rhs, f"operator {op!r}")
        both_int = lhs.kind in _INT_KINDS and rhs.kind in _INT_KINDS
        with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
            if op == "+":
                result = la + rb
            elif op == "-":
                result = la - rb
            elif op == "*":
                result = la * rb
            elif op == "/":
                result = self._divide(la, rb, lhs, rhs, both_int)
            elif op == "%":
                if not both_int:
                    raise VectorUnsupported("modulo requires integers")
                result = self._int_divmod(la, rb)[1]
            else:
                raise VectorUnsupported(f"unknown operator {op!r}")
        if (
            lhs.kind in _PYFLOAT_LIKE
            or rhs.kind in _PYFLOAT_LIKE
            or kind in _PYFLOAT_LIKE
        ):
            self.stats.flops += self._active()
        return VArray(result, kind)

    def _divide(
        self,
        la: np.ndarray,
        rb: np.ndarray,
        lhs: VArray,
        rhs: VArray,
        both_int: bool,
    ) -> np.ndarray:
        if both_int:
            if self._masked_any(rb == 0):
                raise VectorUnsupported("integer division by zero")
            return self._int_divmod(la, rb)[0]
        if lhs.kind in _WEAK and rhs.kind in _WEAK:
            # Pure Python operands: float division by zero raises.  (With a
            # strong NumPy operand it yields inf/nan, exactly as the array
            # division below does.)
            if self._masked_any(rb == 0):
                raise VectorUnsupported("float division by zero (Python semantics)")
        return la / rb

    @staticmethod
    def _int_divmod(la: np.ndarray, rb: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """C-truncation quotient and remainder (divisor pre-checked)."""
        rb = np.where(rb == 0, np.asarray(1, dtype=rb.dtype), rb)
        q = np.abs(la) // np.abs(rb)
        q = np.where((la >= 0) == (rb >= 0), q, -q).astype(la.dtype, copy=False)
        return q, (la - rb * q).astype(la.dtype, copy=False)

    def _apply_logic(self, op: str, lhs: VArray, rhs_thunk) -> VArray:
        """Short-circuit ``&&``/``||`` with the right operand as a thunk,
        evaluated only under the lanes that reach it."""
        if not self._axes:
            lv = bool(lhs.data)
            if op == "&&" and not lv:
                return _const_int(0)
            if op == "||" and lv:
                return _const_int(1)
            rv = bool(rhs_thunk().data)
            return _const_int(1 if rv else 0)
        lt = self._truthy(lhs)
        base = self._mask
        m_right = (lt if op == "&&" else ~lt)
        m_right = m_right if base is None else (base & m_right)
        if self._masked_count(m_right):
            self._set_mask(m_right)
            rt = self._truthy(rhs_thunk())
            self._set_mask(base)
        else:
            rt = np.zeros((1,) * len(self._axes), dtype=bool)
        combined = (lt & rt) if op == "&&" else (lt | rt)
        return VArray(combined.astype(np.int64), PYINT)

    # -- intrinsics ---------------------------------------------------------
    def _apply_call(self, func: str, args: list[VArray]) -> VArray:
        self.stats.flops += self._active()
        if func == "sqrt":
            data = args[0].data.astype(np.float64)
            if self._masked_any(data < 0):
                raise VectorUnsupported("sqrt of negative value")
            return VArray(np.sqrt(self._sanitize(data, 0.0)), PYFLOAT)
        if func in ("fabs", "abs"):
            return VArray(np.abs(args[0].data), args[0].kind)
        if func in ("exp", "log", "sin", "cos", "tan"):
            safe = 1.0 if func == "log" else 0.0
            data = self._sanitize(args[0].data.astype(np.float64), safe)
            ufunc = np.frompyfunc(getattr(math, func), 1, 1)
            out = ufunc(self._lift(data)).astype(np.float64)
            return VArray(out, PYFLOAT)
        if func == "pow":
            base = self._sanitize(args[0].data.astype(np.float64), 1.0)
            expo = self._sanitize(args[1].data.astype(np.float64), 1.0)
            out = np.frompyfunc(math.pow, 2, 1)(
                self._lift(base), self._lift(expo)
            ).astype(np.float64)
            return VArray(out, PYFLOAT)
        if func in ("min", "fmin", "max", "fmax"):
            kind = args[0].kind
            if any(a.kind != kind for a in args[1:]):
                raise VectorUnsupported(f"{func} over mixed kinds")
            pick = min if func in ("min", "fmin") else max
            ufunc = np.frompyfunc(pick, 2, 1)
            acc = self._lift(args[0].data)
            for a in args[1:]:
                acc = ufunc(acc, self._lift(a.data))
            return VArray(np.asarray(acc).astype(_KIND_DTYPE[kind]), kind)
        if func in ("floor", "ceil"):
            va = args[0]
            if va.kind in _INT_KINDS:
                return VArray(va.data.astype(np.int64), PYINT)
            rounded = getattr(np, func)(va.data.astype(np.float64))
            return VArray(self._float_to_int(rounded, func), PYINT)
        raise VectorUnsupported(f"unknown intrinsic {func!r}")


def _range_of(loop: Loop, lo: int, hi: int) -> range:
    """Exactly ``Loop.iter_values`` once the bounds are concrete."""
    if loop.cond_op == "<":
        return range(lo, hi, loop.step)
    if loop.cond_op == "<=":
        return range(lo, hi + 1, loop.step)
    if loop.cond_op == ">":
        return range(lo, hi, loop.step)
    return range(lo, hi - 1, loop.step)  # '>='


def execute_kernel(
    fn: KernelFunction,
    args: dict[str, object],
    *,
    executor: "str | Executor" = "auto",
    plan: KernelPlan | None = None,
    content_key: str | None = None,
    codegen_source: str | None = None,
    metrics=None,
) -> tuple[dict[str, np.ndarray], ExecutionStats, ExecutionInfo]:
    """Execute ``fn`` with ``args`` (arrays are mutated in place).

    ``executor`` selects the engine (see :mod:`repro.executors`):
    ``"scalar"`` always interprets, ``"vector"`` requires the interpreting
    vectorized engine, ``"codegen"`` requires the generated-NumPy tier
    (both raising :class:`VectorUnsupported` if impossible), and ``"auto"``
    — the default — walks the ladder codegen → vector → scalar, logging
    each fallback reason.  Vector/codegen attempts run on array copies and
    commit only on success, so a fallback re-runs the scalar path on
    pristine inputs and reproduces its behaviour exactly, including
    exceptions and the partial mutation preceding them.

    ``content_key`` (optional) keys the in-memory generated-function cache
    — callers that know a stable content hash for ``fn``'s source pass it
    so repeat launches skip planning and code generation entirely.
    ``codegen_source`` (optional) is persisted generated source from a
    warm disk-cache envelope; it is rebound instead of re-generated, and
    silently re-planned if stale.  ``metrics`` (optional,
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the codegen
    tier's cache and generation counters.
    """
    with span("execute", kernel=fn.name, requested=str(executor)) as sp:
        arrays, stats, info = _execute_kernel(
            fn, args, executor=executor, plan=plan, content_key=content_key,
            codegen_source=codegen_source, metrics=metrics,
        )
        sp.set(used=info.used, elements=info.elements)
        if info.fallback_reason is not None:
            sp.set(fallback_reason=info.fallback_reason)
    return arrays, stats, info


def _scalar_fallback(fn, args, requested, reason, demoted):
    logger.info("vector executor: %s falls back to scalar: %s", fn.name, reason)
    _notify_fallback(fn.name, reason)
    arrays, stats = run_kernel(fn, args)
    return arrays, stats, ExecutionInfo(
        requested=requested, used="scalar", fallback_reason=reason,
        demoted=demoted,
    )


def _execute_kernel(
    fn: KernelFunction,
    args: dict[str, object],
    *,
    executor: "str | Executor",
    plan: KernelPlan | None,
    content_key: str | None = None,
    codegen_source: str | None = None,
    metrics=None,
) -> tuple[dict[str, np.ndarray], ExecutionStats, ExecutionInfo]:
    ex = parse_executor(executor)
    requested = ex.value
    if ex is Executor.SCALAR:
        arrays, stats = run_kernel(fn, args)
        return arrays, stats, ExecutionInfo(requested="scalar", used="scalar")

    # Warm fast path: a cached generated function already bakes the axis
    # decisions, so repeat launches with a content_key skip the planner
    # entirely.  The generated program never consults the plan at runtime.
    if plan is None and content_key is not None and ex is not Executor.VECTOR:
        from ..codegen import numpy_source  # deferred: avoids import cycle

        cached = numpy_source.function_cache().get(
            content_key, metrics, record_miss=False
        )
        if cached is not None:
            codegen_t0 = time.perf_counter()
            scalars, arrays, lowers = bind_arguments(fn, args)
            copies = {name: arr.copy() for name, arr in arrays.items()}
            demoted = list(cached.demoted)
            try:
                interp = VectorInterpreter(fn, None, scalars, copies, lowers)
                cached.run(interp)
            except Exception as exc:  # noqa: BLE001 — runtime unsupported
                if ex is Executor.CODEGEN:
                    raise
                reason = (
                    f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
                )
                return _scalar_fallback(fn, args, requested, reason, demoted)
            for name, arr in arrays.items():
                arr[...] = copies[name]
            return arrays, interp.stats, ExecutionInfo(
                requested=requested,
                used="codegen",
                elements=interp.elements,
                region_elements=interp.region_elements,
                demoted=demoted,
                codegen_ms=(time.perf_counter() - codegen_t0) * 1000.0,
            )

    if plan is None:
        plan = plan_kernel(fn)
    demoted = plan.demotion_reasons
    if not plan.has_axes:
        reason = "no vectorizable parallel loops"
        if demoted:
            reason += f" ({demoted[0]})"
        if ex is not Executor.AUTO:
            raise VectorUnsupported(reason)
        return _scalar_fallback(fn, args, requested, reason, demoted)
    scalars, arrays, lowers = bind_arguments(fn, args)
    copies = {name: arr.copy() for name, arr in arrays.items()}

    # Codegen tier: generate (or fetch) the straight-line program, run it
    # through the same runtime primitives the interpreting engine uses.
    if ex in (Executor.AUTO, Executor.CODEGEN):
        from ..codegen import numpy_source  # deferred: avoids import cycle

        compiled = None
        codegen_t0 = time.perf_counter()
        try:
            compiled = numpy_source.get_or_compile(
                fn, plan, content_key=content_key,
                source=codegen_source, metrics=metrics,
            )
        except Exception as exc:  # noqa: BLE001 — generation failed
            if ex is Executor.CODEGEN:
                raise
            reason = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
            logger.info(
                "codegen executor: %s falls back to vector: %s", fn.name, reason
            )
        if compiled is not None:
            try:
                interp = VectorInterpreter(fn, plan, scalars, copies, lowers)
                compiled.run(interp)
            except Exception as exc:  # noqa: BLE001 — runtime unsupported
                if ex is Executor.CODEGEN:
                    raise
                # The generated program executes the exact primitive
                # sequence the interpreting engine would — a runtime
                # failure here would recur there, so skip straight to the
                # scalar oracle on the pristine inputs.
                reason = (
                    f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
                )
                return _scalar_fallback(fn, args, requested, reason, demoted)
            for name, arr in arrays.items():
                arr[...] = copies[name]
            return arrays, interp.stats, ExecutionInfo(
                requested=requested,
                used="codegen",
                elements=interp.elements,
                region_elements=interp.region_elements,
                demoted=demoted,
                codegen_ms=(time.perf_counter() - codegen_t0) * 1000.0,
            )

    # Interpreting vectorized engine ("vector", or "auto" when generation
    # itself failed).
    try:
        interp = VectorInterpreter(fn, plan, scalars, copies, lowers)
        interp.run()
    except Exception as exc:  # noqa: BLE001 — any failure means "fall back"
        if ex is Executor.VECTOR:
            raise
        reason = f"{type(exc).__name__}: {exc}" if str(exc) else type(exc).__name__
        return _scalar_fallback(fn, args, requested, reason, demoted)
    for name, arr in arrays.items():
        arr[...] = copies[name]
    return arrays, interp.stats, ExecutionInfo(
        requested=requested,
        used="vector",
        elements=interp.elements,
        region_elements=interp.region_elements,
        demoted=demoted,
    )
