"""Mid-level IR: typed loop nests with OpenACC region/loop directives.

The IR plays the role of OpenUH's WHIRL in the paper's pipeline: analyses
(:mod:`repro.analysis`) and transformations (:mod:`repro.transforms`)
operate here, and the code generator (:mod:`repro.codegen`) lowers offload
regions to the PTX-like virtual ISA.
"""

from .builder import build_kernel, build_module
from .expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
    array_refs,
    expr_type,
    fold_constants,
    intern_expr,
    intern_stats,
    intern_table_size,
    rewrite,
    scalar_reads,
    substitute,
)
from .module import KernelFunction, Module
from .printer import format_expr, format_function, format_stmts
from .stmt import (
    Assign,
    If,
    LocalDecl,
    Loop,
    Region,
    Stmt,
    clone_region,
    clone_stmt,
    loops_in,
    regions_in,
    stmt_exprs,
    walk_stmts,
)
from .symbols import ArrayInfo, Dim, Symbol, SymbolKind, SymbolTable
from .types import BOOL, F32, F64, I32, I64, ScalarType, promote, type_from_name

__all__ = [
    "ArrayInfo",
    "ArrayRef",
    "Assign",
    "BOOL",
    "BinOp",
    "Call",
    "Cast",
    "Dim",
    "Expr",
    "F32",
    "F64",
    "FloatConst",
    "I32",
    "I64",
    "If",
    "IntConst",
    "KernelFunction",
    "LocalDecl",
    "Loop",
    "Module",
    "Region",
    "ScalarType",
    "Select",
    "Stmt",
    "Symbol",
    "SymbolKind",
    "SymbolTable",
    "UnOp",
    "VarRef",
    "array_refs",
    "build_kernel",
    "build_module",
    "expr_type",
    "fold_constants",
    "intern_expr",
    "intern_stats",
    "intern_table_size",
    "clone_region",
    "clone_stmt",
    "format_expr",
    "format_function",
    "format_stmts",
    "loops_in",
    "promote",
    "regions_in",
    "rewrite",
    "scalar_reads",
    "stmt_exprs",
    "substitute",
    "type_from_name",
    "walk_stmts",
]
