"""Lowering from the MiniACC AST to the IR.

Responsibilities:

* name resolution and no-redeclaration checking against a per-kernel
  :class:`~repro.ir.symbols.SymbolTable`;
* type derivation for parameters (including array dope information:
  per-dimension lower bound / extent as static ints or scalar symbols);
* normalisation of compound assignments (``a[i] += x`` becomes
  ``a[i] = a[i] + x`` so both the read and the write reference are explicit
  for reuse analysis);
* validation of array reference ranks and of ``dim``/``small`` clause
  arguments against the declared parameters (Section IV notes the compiler
  may verify clause correctness — we verify what is statically checkable).
"""

from __future__ import annotations

from ..lang import ast_nodes as ast
from ..lang.directives import ComputeDirective, DimGroup
from ..lang.errors import SemanticError
from .expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
    expr_type,
    intern_expr,
)
from .module import KernelFunction, Module
from .stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from .symbols import ArrayInfo, Dim, Symbol, SymbolKind, SymbolTable
from .types import F32, F64, I32, ScalarType, type_from_name


def build_module(program: ast.Program) -> Module:
    """Lower a parsed program into an IR module."""
    return Module(functions=[_FunctionBuilder(k).build() for k in program.kernels])


def build_kernel(program: ast.Program, name: str) -> KernelFunction:
    """Lower a single kernel by name."""
    return _FunctionBuilder(program.kernel(name)).build()


class _FunctionBuilder:
    def __init__(self, decl: ast.KernelDecl):
        self._decl = decl
        self._symtab = SymbolTable()
        self._loop_vars: list[str] = []
        # Lexical scopes: name -> Symbol.  The symbol table itself stores
        # uniquified names (shadowed/sibling locals get numeric suffixes),
        # but resolution follows the source scoping.
        self._scopes: list[dict[str, Symbol]] = [{}]

    # -- scoping -----------------------------------------------------------
    def _push_scope(self) -> None:
        self._scopes.append({})

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _lookup(self, name: str) -> Symbol | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _declare_scoped(self, sym: Symbol, loc) -> Symbol:
        scope = self._scopes[-1]
        if sym.name in scope:
            raise SemanticError(f"symbol {sym.name!r} already declared", loc)
        source_name = sym.name
        if self._symtab.lookup(sym.name) is not None:
            suffix = 2
            while f"{source_name}_{suffix}" in self._symtab:
                suffix += 1
            sym.name = f"{source_name}_{suffix}"
        self._symtab.declare(sym)
        scope[source_name] = sym
        return sym

    # -- entry ----------------------------------------------------------------
    def build(self) -> KernelFunction:
        params = [self._build_param(p) for p in self._decl.params]
        # Resolve symbolic array bounds now that every parameter exists.
        for p, sym in zip(self._decl.params, params):
            if p.dims:
                assert sym.array is not None
                dims = tuple(self._build_dim(d) for d in p.dims)
                sym.array = ArrayInfo(elem=sym.array.elem, dims=dims, is_pointer=False)
        body = self._build_stmts(self._decl.body)
        return KernelFunction(
            name=self._decl.name, params=params, symtab=self._symtab, body=body
        )

    # -- declarations -----------------------------------------------------
    def _build_param(self, p: ast.ParamDecl) -> Symbol:
        elem = type_from_name(p.type_name)
        array: ArrayInfo | None = None
        if p.is_pointer:
            array = ArrayInfo(elem=elem, dims=(), is_pointer=True)
        elif p.dims:
            # Dims resolved in a second pass (may reference later params).
            array = ArrayInfo(elem=elem, dims=(), is_pointer=False)
        sym = Symbol(
            name=p.name,
            stype=elem,
            kind=SymbolKind.PARAM,
            array=array,
            is_const=p.is_const,
            is_restrict=p.is_restrict,
        )
        try:
            self._symtab.declare(sym)
        except KeyError as exc:
            raise SemanticError(str(exc), p.loc) from exc
        self._scopes[0][p.name] = sym
        return sym

    def _build_dim(self, d: ast.DimDecl) -> Dim:
        extent = self._dim_value(d.extent)
        lower = 0 if d.lower is None else self._dim_value(d.lower)
        return Dim(extent=extent, lower=lower)

    def _dim_value(self, e: ast.Expr) -> int | Symbol:
        if isinstance(e, ast.IntLit):
            return e.value
        if isinstance(e, ast.Name):
            sym = self._lookup(e.ident)
            if sym is None:
                raise SemanticError(f"array bound {e.ident!r} is not a parameter", e.loc)
            if sym.is_array or sym.stype.is_float:
                raise SemanticError(f"array bound {e.ident!r} must be an integer scalar", e.loc)
            return sym
        raise SemanticError("array bounds must be integer literals or parameter names", getattr(e, "loc", None))

    # -- statements ------------------------------------------------------------
    def _build_stmts(self, stmts: list[ast.Stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for s in stmts:
            out.append(self._build_stmt(s))
        return out

    def _build_stmt(self, s: ast.Stmt) -> Stmt:
        if isinstance(s, ast.DeclStmt):
            return self._build_decl(s)
        if isinstance(s, ast.AssignStmt):
            return self._build_assign(s)
        if isinstance(s, ast.IfStmt):
            cond = intern_expr(self._build_expr(s.cond))
            self._push_scope()
            then_body = self._build_stmts(s.then_body)
            self._pop_scope()
            self._push_scope()
            else_body = self._build_stmts(s.else_body)
            self._pop_scope()
            return If(cond=cond, then_body=then_body, else_body=else_body)
        if isinstance(s, ast.ForStmt):
            return self._build_loop(s)
        if isinstance(s, ast.RegionStmt):
            return self._build_region(s)
        if isinstance(s, ast.ReturnStmt):
            raise SemanticError("return inside kernel body is not supported", s.loc)
        raise SemanticError(f"unsupported statement {type(s).__name__}", getattr(s, "loc", None))

    def _build_decl(self, s: ast.DeclStmt) -> LocalDecl:
        stype = type_from_name(s.type_name)
        sym = Symbol(
            name=s.name, stype=stype, kind=SymbolKind.LOCAL, is_const=s.is_const
        )
        init = intern_expr(self._build_expr(s.init)) if s.init is not None else None
        self._declare_scoped(sym, s.loc)
        return LocalDecl(sym=sym, init=init)

    def _build_assign(self, s: ast.AssignStmt) -> Assign:
        target = self._build_expr(s.target)
        if not isinstance(target, (VarRef, ArrayRef)):
            raise SemanticError("invalid assignment target", s.loc)
        if isinstance(target, VarRef) and target.sym.kind is SymbolKind.LOOPVAR:
            raise SemanticError(
                f"assignment to loop variable {target.sym.name!r}", s.loc
            )
        if isinstance(target, VarRef) and target.sym.is_const:
            raise SemanticError(f"assignment to const {target.sym.name!r}", s.loc)
        if isinstance(target, ArrayRef) and target.sym.is_const:
            raise SemanticError(
                f"store to const array {target.sym.name!r}", s.loc
            )
        value = self._build_expr(s.value)
        if s.op is not None:
            value = BinOp(s.op, target, value)
        return Assign(target=intern_expr(target), value=intern_expr(value))

    def _build_loop(self, s: ast.ForStmt) -> Loop:
        existing = self._lookup(s.var)
        if existing is None:
            var = self._declare_scoped(
                Symbol(name=s.var, stype=I32, kind=SymbolKind.LOOPVAR), s.loc
            )
        else:
            if existing.is_array:
                raise SemanticError(f"loop variable {s.var!r} is an array", s.loc)
            var = existing
        if s.var in self._loop_vars:
            raise SemanticError(f"loop variable {s.var!r} reused in enclosing loop", s.loc)
        init = intern_expr(self._build_expr(s.init))
        bound = intern_expr(self._build_expr(s.bound))
        step = self._const_int(s.step)
        if step is None or step == 0:
            raise SemanticError("loop step must be a non-zero integer constant", s.loc)
        self._loop_vars.append(s.var)
        self._push_scope()
        try:
            body = self._build_stmts(s.body)
        finally:
            self._pop_scope()
            self._loop_vars.pop()
        return Loop(
            var=var,
            init=init,
            cond_op=s.cond_op,
            bound=bound,
            step=step,
            body=body,
            directive=s.directive,
        )

    def _build_region(self, s: ast.RegionStmt) -> Region:
        self._validate_clauses(s.directive, s.loc)
        self._push_scope()
        try:
            body = self._build_stmts(s.body)
        finally:
            self._pop_scope()
        return Region(directive=s.directive, body=body)

    def _validate_clauses(self, directive: ComputeDirective, loc) -> None:
        for name in directive.small:
            sym = self._lookup(name)
            if sym is None or not sym.is_array:
                raise SemanticError(f"small clause names non-array {name!r}", loc)
        for group in directive.dim_groups:
            self._validate_dim_group(group, loc)

    def _validate_dim_group(self, group: DimGroup, loc) -> None:
        rank: int | None = len(group.dims) if group.dims else None
        for name in group.arrays:
            sym = self._lookup(name)
            if sym is None or not sym.is_array:
                raise SemanticError(f"dim clause names non-array {name!r}", loc)
            if sym.array.is_pointer:
                raise SemanticError(
                    f"dim clause cannot apply to pointer {name!r} "
                    "(no dimension information — see paper Section V-C)",
                    loc,
                )
            if rank is None:
                rank = len(sym.array.dims)
            elif len(sym.array.dims) != rank:
                raise SemanticError(
                    f"dim clause group mixes ranks ({name!r} has rank "
                    f"{len(sym.array.dims)}, expected {rank})",
                    loc,
                )

    # -- expressions -----------------------------------------------------------
    def _build_expr(self, e: ast.Expr) -> Expr:
        if isinstance(e, ast.IntLit):
            return IntConst(e.value)
        if isinstance(e, ast.FloatLit):
            return FloatConst(e.value, stype=F32 if e.is_single else F64)
        if isinstance(e, ast.Name):
            sym = self._lookup(e.ident)
            if sym is None:
                raise SemanticError(f"undeclared identifier {e.ident!r}", e.loc)
            if sym.is_array:
                raise SemanticError(f"array {e.ident!r} used without subscripts", e.loc)
            return VarRef(sym)
        if isinstance(e, ast.Index):
            return self._build_index(e)
        if isinstance(e, ast.Unary):
            return UnOp(e.op, self._build_expr(e.operand))
        if isinstance(e, ast.Binary):
            return BinOp(e.op, self._build_expr(e.left), self._build_expr(e.right))
        if isinstance(e, ast.Ternary):
            return Select(
                cond=self._build_expr(e.cond),
                then=self._build_expr(e.then),
                otherwise=self._build_expr(e.otherwise),
            )
        if isinstance(e, ast.CallExpr):
            if e.func.startswith("cast_"):
                to = type_from_name(e.func.removeprefix("cast_"))
                (arg,) = e.args
                return Cast(to, self._build_expr(arg))
            return Call(e.func, tuple(self._build_expr(a) for a in e.args))
        raise SemanticError(f"unsupported expression {type(e).__name__}", getattr(e, "loc", None))

    def _build_index(self, e: ast.Index) -> ArrayRef:
        if not isinstance(e.base, ast.Name):
            raise SemanticError("only direct array subscripting is supported", e.loc)
        sym = self._lookup(e.base.ident)
        if sym is None:
            raise SemanticError(f"undeclared identifier {e.base.ident!r}", e.loc)
        if not sym.is_array:
            raise SemanticError(f"subscripting non-array {e.base.ident!r}", e.loc)
        indices = tuple(self._build_expr(i) for i in e.indices)
        assert sym.array is not None
        expected = 1 if sym.array.is_pointer else len(sym.array.dims)
        if len(indices) != expected:
            raise SemanticError(
                f"array {sym.name!r} has rank {expected}, got {len(indices)} subscripts",
                e.loc,
            )
        for idx in indices:
            if expr_type(idx).is_float:
                raise SemanticError(
                    f"non-integer subscript on array {sym.name!r}", e.loc
                )
        return ArrayRef(sym=sym, indices=indices)

    @staticmethod
    def _const_int(e: ast.Expr) -> int | None:
        if isinstance(e, ast.IntLit):
            return e.value
        if isinstance(e, ast.Unary) and e.op == "-" and isinstance(e.operand, ast.IntLit):
            return -e.operand.value
        return None
