"""IR expression trees.

Expressions are immutable, structurally hashable dataclasses — the scalar
replacement machinery relies on structural equality of array subscripts
("same reference") and on pure-functional rewriting (``map_children``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from .symbols import Symbol
from .types import BOOL, F64, I32, ScalarType, promote

#: Arithmetic / relational / logical operators carried by BinOp.
ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
REL_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
LOGIC_OPS = frozenset({"&&", "||"})


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class of all IR expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def map_children(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Return a copy with ``fn`` applied to each direct child."""
        return self

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True)
class IntConst(Expr):
    value: int
    stype: ScalarType = I32


@dataclass(frozen=True, slots=True)
class FloatConst(Expr):
    value: float
    stype: ScalarType = F64


@dataclass(frozen=True, slots=True)
class VarRef(Expr):
    """A read of a scalar variable."""

    sym: Symbol


@dataclass(frozen=True, slots=True)
class ArrayRef(Expr):
    """An array element access ``sym[indices...]``.

    For raw pointer symbols there is exactly one (already linearised)
    index expression.
    """

    sym: Symbol
    indices: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.indices

    def map_children(self, fn: Callable[[Expr], Expr]) -> "ArrayRef":
        return replace(self, indices=tuple(fn(i) for i in self.indices))


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "BinOp":
        return replace(self, left=fn(self.left), right=fn(self.right))


@dataclass(frozen=True, slots=True)
class UnOp(Expr):
    op: str  # '-' | '!'
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "UnOp":
        return replace(self, operand=fn(self.operand))


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """Math intrinsic call (sqrt, exp, pow, min, max, ...)."""

    func: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def map_children(self, fn: Callable[[Expr], Expr]) -> "Call":
        return replace(self, args=tuple(fn(a) for a in self.args))


@dataclass(frozen=True, slots=True)
class Cast(Expr):
    to_type: ScalarType
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "Cast":
        return replace(self, operand=fn(self.operand))


@dataclass(frozen=True, slots=True)
class Select(Expr):
    """Ternary ``cond ? a : b`` (both arms evaluated type-wise)."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "Select":
        return replace(
            self, cond=fn(self.cond), then=fn(self.then), otherwise=fn(self.otherwise)
        )


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------


def expr_type(e: Expr) -> ScalarType:
    """Compute the result type of an IR expression."""
    if isinstance(e, (IntConst, FloatConst)):
        return e.stype
    if isinstance(e, VarRef):
        return e.sym.stype
    if isinstance(e, ArrayRef):
        assert e.sym.array is not None
        return e.sym.array.elem
    if isinstance(e, BinOp):
        if e.op in REL_OPS or e.op in LOGIC_OPS:
            return BOOL
        return promote(expr_type(e.left), expr_type(e.right))
    if isinstance(e, UnOp):
        return BOOL if e.op == "!" else expr_type(e.operand)
    if isinstance(e, Cast):
        return e.to_type
    if isinstance(e, Select):
        return promote(expr_type(e.then), expr_type(e.otherwise))
    if isinstance(e, Call):
        if not e.args:
            return F64
        arg_t = expr_type(e.args[0])
        for a in e.args[1:]:
            arg_t = promote(arg_t, expr_type(a))
        # Transcendental intrinsics promote integers to double.
        if e.func not in ("min", "max", "abs") and not arg_t.is_float:
            return F64
        return arg_t
    raise TypeError(f"unknown expression node {type(e).__name__}")


# ---------------------------------------------------------------------------
# Rewriting helpers
# ---------------------------------------------------------------------------


def rewrite(e: Expr, rule: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewriting: apply ``rule`` to each node after its children.

    ``rule`` returns a replacement node or ``None`` to keep the node.
    """
    e = e.map_children(lambda c: rewrite(c, rule))
    out = rule(e)
    return e if out is None else out


def substitute(e: Expr, mapping: dict[Expr, Expr]) -> Expr:
    """Replace whole sub-expressions by structural lookup (bottom-up).

    Used by scalar replacement to swap array references for temporaries.
    """

    def rule(node: Expr) -> Expr | None:
        return mapping.get(node)

    return rewrite(e, rule)


def fold_constants(e: Expr) -> Expr:
    """Bottom-up integer constant folding (+, -, * and unary minus).

    Used to tidy compiler-generated subscripts (preheader preloads of the
    rotating-register transformation) so the output matches the paper's
    listings; float arithmetic is never folded (rounding must match the
    target exactly).
    """

    def rule(node: Expr) -> Expr | None:
        if isinstance(node, UnOp) and node.op == "-" and isinstance(node.operand, IntConst):
            return IntConst(-node.operand.value, node.operand.stype)
        if isinstance(node, BinOp):
            lhs, rhs = node.left, node.right
            if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
                if node.op == "+":
                    return IntConst(lhs.value + rhs.value)
                if node.op == "-":
                    return IntConst(lhs.value - rhs.value)
                if node.op == "*":
                    return IntConst(lhs.value * rhs.value)
            if isinstance(rhs, IntConst) and rhs.value == 0 and node.op in ("+", "-"):
                return lhs
            if isinstance(lhs, IntConst) and lhs.value == 0 and node.op == "+":
                return rhs
            # Reassociate (x ± c1) ± c2 into x ± (c1 ± c2).
            if (
                node.op in ("+", "-")
                and isinstance(rhs, IntConst)
                and isinstance(lhs, BinOp)
                and lhs.op in ("+", "-")
                and isinstance(lhs.right, IntConst)
            ):
                c1 = lhs.right.value if lhs.op == "+" else -lhs.right.value
                c2 = rhs.value if node.op == "+" else -rhs.value
                total = c1 + c2
                if total == 0:
                    return lhs.left
                if total > 0:
                    return BinOp("+", lhs.left, IntConst(total))
                return BinOp("-", lhs.left, IntConst(-total))
        return None

    return rewrite(e, rule)


def array_refs(e: Expr) -> list[ArrayRef]:
    """All array references inside ``e`` (pre-order)."""
    return [n for n in e.walk() if isinstance(n, ArrayRef)]


def scalar_reads(e: Expr) -> list[VarRef]:
    """All scalar reads inside ``e`` (pre-order)."""
    return [n for n in e.walk() if isinstance(n, VarRef)]
