"""IR expression trees.

Expressions are immutable, structurally hashable dataclasses — the scalar
replacement machinery relies on structural equality of array subscripts
("same reference") and on pure-functional rewriting (``map_children``).

Nodes are **hash-consed**: every node lazily caches its structural hash
(recomputed after unpickling, where symbol identities change), equality
starts with an identity/hash fast path, and :func:`intern_expr` deduplicates
structurally equal trees through a global intern table so that equality
checks in the pass pipeline and cache keying degrade to pointer compares
for IR built by the front end.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from .symbols import Symbol
from .types import BOOL, F64, I32, ScalarType, promote

#: Arithmetic / relational / logical operators carried by BinOp.
ARITH_OPS = frozenset({"+", "-", "*", "/", "%"})
REL_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
LOGIC_OPS = frozenset({"&&", "||"})


class Expr:
    """Base class of all IR expressions.

    Subclasses are frozen slots dataclasses with ``eq=False``: equality and
    hashing are implemented here once, with an identity fast path (interned
    nodes compare by pointer) and a lazily cached structural hash.  The
    cache slot ``_hash`` is deliberately *not* a dataclass field, so it is
    excluded from ``__init__``/``repr`` and from pickled state — unpickled
    nodes recompute their hash on first use (``Symbol`` hashes by identity
    and is not stable across processes).
    """

    __slots__ = ("_hash",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", -1)

    def _key(self) -> tuple:
        """Field tuple used for structural equality and hashing."""
        return ()

    def __eq__(self, other: object):
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        if hash(self) != hash(other):
            return False
        return self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        try:
            h = self._hash
        except AttributeError:  # unpickled or bare Expr(): slot never set
            h = -1
        if h == -1:
            h = hash((self.__class__.__name__, self._key()))
            if h == -1:
                h = -2
            object.__setattr__(self, "_hash", h)
        return h

    def children(self) -> tuple["Expr", ...]:
        return ()

    def map_children(self, fn: Callable[["Expr"], "Expr"]) -> "Expr":
        """Return a copy with ``fn`` applied to each direct child."""
        return self

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of this expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True, slots=True, eq=False)
class IntConst(Expr):
    value: int
    stype: ScalarType = I32

    def _key(self) -> tuple:
        return (self.value, self.stype)


@dataclass(frozen=True, slots=True, eq=False)
class FloatConst(Expr):
    value: float
    stype: ScalarType = F64

    def _key(self) -> tuple:
        return (self.value, self.stype)


@dataclass(frozen=True, slots=True, eq=False)
class VarRef(Expr):
    """A read of a scalar variable."""

    sym: Symbol

    def _key(self) -> tuple:
        return (self.sym,)


@dataclass(frozen=True, slots=True, eq=False)
class ArrayRef(Expr):
    """An array element access ``sym[indices...]``.

    For raw pointer symbols there is exactly one (already linearised)
    index expression.
    """

    sym: Symbol
    indices: tuple[Expr, ...]

    def _key(self) -> tuple:
        return (self.sym, self.indices)

    def children(self) -> tuple[Expr, ...]:
        return self.indices

    def map_children(self, fn: Callable[[Expr], Expr]) -> "ArrayRef":
        return replace(self, indices=tuple(fn(i) for i in self.indices))


@dataclass(frozen=True, slots=True, eq=False)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def _key(self) -> tuple:
        return (self.op, self.left, self.right)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "BinOp":
        return replace(self, left=fn(self.left), right=fn(self.right))


@dataclass(frozen=True, slots=True, eq=False)
class UnOp(Expr):
    op: str  # '-' | '!'
    operand: Expr

    def _key(self) -> tuple:
        return (self.op, self.operand)

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "UnOp":
        return replace(self, operand=fn(self.operand))


@dataclass(frozen=True, slots=True, eq=False)
class Call(Expr):
    """Math intrinsic call (sqrt, exp, pow, min, max, ...)."""

    func: str
    args: tuple[Expr, ...]

    def _key(self) -> tuple:
        return (self.func, self.args)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def map_children(self, fn: Callable[[Expr], Expr]) -> "Call":
        return replace(self, args=tuple(fn(a) for a in self.args))


@dataclass(frozen=True, slots=True, eq=False)
class Cast(Expr):
    to_type: ScalarType
    operand: Expr

    def _key(self) -> tuple:
        return (self.to_type, self.operand)

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "Cast":
        return replace(self, operand=fn(self.operand))


@dataclass(frozen=True, slots=True, eq=False)
class Select(Expr):
    """Ternary ``cond ? a : b`` (both arms evaluated type-wise)."""

    cond: Expr
    then: Expr
    otherwise: Expr

    def _key(self) -> tuple:
        return (self.cond, self.then, self.otherwise)

    def children(self) -> tuple[Expr, ...]:
        return (self.cond, self.then, self.otherwise)

    def map_children(self, fn: Callable[[Expr], Expr]) -> "Select":
        return replace(
            self, cond=fn(self.cond), then=fn(self.then), otherwise=fn(self.otherwise)
        )


# ---------------------------------------------------------------------------
# Hash-consing (structural interning)
# ---------------------------------------------------------------------------

#: Structural intern table.  Bounded: cleared wholesale when full — already
#: interned nodes stay valid (they just stop being canonical for new trees).
_INTERN: dict[Expr, Expr] = {}
_INTERN_MAX = 1 << 16

#: Lifetime table statistics.  Process-wide monotonic totals; sessions
#: snapshot them and publish deltas as the ``ir.intern.*`` counters so
#: ``repro stats`` shows the table's behavior (a high eviction count
#: means the bound is thrashing and hash-consing has stopped paying).
_INTERN_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def intern_expr(e: Expr) -> Expr:
    """Return the canonical instance of ``e`` (deduplicated bottom-up).

    After interning, structurally equal trees built through the front end
    are the *same object*, so ``==`` hits the identity fast path and dict
    lookups hit the cached hash.  Safe for any Expr: nodes are immutable
    and Symbols compare by identity, so two trees only unify when they
    reference the very same symbols.
    """
    e = e.map_children(intern_expr)
    cached = _INTERN.get(e)
    if cached is not None:
        _INTERN_STATS["hits"] += 1
        return cached
    _INTERN_STATS["misses"] += 1
    if len(_INTERN) >= _INTERN_MAX:
        _INTERN_STATS["evictions"] += len(_INTERN)
        _INTERN.clear()
    _INTERN[e] = e
    return e


def intern_table_size() -> int:
    """Current number of canonical nodes (observability / tests)."""
    return len(_INTERN)


def intern_stats() -> dict[str, int]:
    """Lifetime hit/miss/eviction totals of the intern table (a copy)."""
    return dict(_INTERN_STATS)


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------


def expr_type(e: Expr) -> ScalarType:
    """Compute the result type of an IR expression."""
    if isinstance(e, (IntConst, FloatConst)):
        return e.stype
    if isinstance(e, VarRef):
        return e.sym.stype
    if isinstance(e, ArrayRef):
        assert e.sym.array is not None
        return e.sym.array.elem
    if isinstance(e, BinOp):
        if e.op in REL_OPS or e.op in LOGIC_OPS:
            return BOOL
        return promote(expr_type(e.left), expr_type(e.right))
    if isinstance(e, UnOp):
        return BOOL if e.op == "!" else expr_type(e.operand)
    if isinstance(e, Cast):
        return e.to_type
    if isinstance(e, Select):
        return promote(expr_type(e.then), expr_type(e.otherwise))
    if isinstance(e, Call):
        if not e.args:
            return F64
        arg_t = expr_type(e.args[0])
        for a in e.args[1:]:
            arg_t = promote(arg_t, expr_type(a))
        # Transcendental intrinsics promote integers to double.
        if e.func not in ("min", "max", "abs") and not arg_t.is_float:
            return F64
        return arg_t
    raise TypeError(f"unknown expression node {type(e).__name__}")


# ---------------------------------------------------------------------------
# Rewriting helpers
# ---------------------------------------------------------------------------


def rewrite(e: Expr, rule: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewriting: apply ``rule`` to each node after its children.

    ``rule`` returns a replacement node or ``None`` to keep the node.
    """
    e = e.map_children(lambda c: rewrite(c, rule))
    out = rule(e)
    return e if out is None else out


def substitute(e: Expr, mapping: dict[Expr, Expr]) -> Expr:
    """Replace whole sub-expressions by structural lookup (bottom-up).

    Used by scalar replacement to swap array references for temporaries.
    """

    def rule(node: Expr) -> Expr | None:
        return mapping.get(node)

    return rewrite(e, rule)


def fold_constants(e: Expr) -> Expr:
    """Bottom-up integer constant folding (+, -, * and unary minus).

    Used to tidy compiler-generated subscripts (preheader preloads of the
    rotating-register transformation) so the output matches the paper's
    listings; float arithmetic is never folded (rounding must match the
    target exactly).
    """

    def rule(node: Expr) -> Expr | None:
        if isinstance(node, UnOp) and node.op == "-" and isinstance(node.operand, IntConst):
            return IntConst(-node.operand.value, node.operand.stype)
        if isinstance(node, BinOp):
            lhs, rhs = node.left, node.right
            if isinstance(lhs, IntConst) and isinstance(rhs, IntConst):
                if node.op == "+":
                    return IntConst(lhs.value + rhs.value)
                if node.op == "-":
                    return IntConst(lhs.value - rhs.value)
                if node.op == "*":
                    return IntConst(lhs.value * rhs.value)
            if isinstance(rhs, IntConst) and rhs.value == 0 and node.op in ("+", "-"):
                return lhs
            if isinstance(lhs, IntConst) and lhs.value == 0 and node.op == "+":
                return rhs
            # Reassociate (x ± c1) ± c2 into x ± (c1 ± c2).
            if (
                node.op in ("+", "-")
                and isinstance(rhs, IntConst)
                and isinstance(lhs, BinOp)
                and lhs.op in ("+", "-")
                and isinstance(lhs.right, IntConst)
            ):
                c1 = lhs.right.value if lhs.op == "+" else -lhs.right.value
                c2 = rhs.value if node.op == "+" else -rhs.value
                total = c1 + c2
                if total == 0:
                    return lhs.left
                if total > 0:
                    return BinOp("+", lhs.left, IntConst(total))
                return BinOp("-", lhs.left, IntConst(-total))
        return None

    return rewrite(e, rule)


def array_refs(e: Expr) -> list[ArrayRef]:
    """All array references inside ``e`` (pre-order)."""
    return [n for n in e.walk() if isinstance(n, ArrayRef)]


def scalar_reads(e: Expr) -> list[VarRef]:
    """All scalar reads inside ``e`` (pre-order)."""
    return [n for n in e.walk() if isinstance(n, VarRef)]
