"""Top-level IR containers: kernel functions and modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from .stmt import Region, Stmt, regions_in
from .symbols import Symbol, SymbolTable


@dataclass(slots=True)
class KernelFunction:
    """The IR of one MiniACC ``kernel`` declaration.

    A kernel function is host code containing zero or more OpenACC offload
    :class:`~repro.ir.stmt.Region` nodes; each region becomes one GPU
    kernel.
    """

    name: str
    params: list[Symbol]
    symtab: SymbolTable
    body: list[Stmt] = field(default_factory=list)

    def regions(self) -> list[Region]:
        """All offload regions, in source order."""
        return regions_in(self.body)

    def array_params(self) -> list[Symbol]:
        return [p for p in self.params if p.is_array]

    def scalar_params(self) -> list[Symbol]:
        return [p for p in self.params if not p.is_array]


@dataclass(slots=True)
class Module:
    """A compiled MiniACC translation unit."""

    functions: list[KernelFunction] = field(default_factory=list)

    def function(self, name: str) -> KernelFunction:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
