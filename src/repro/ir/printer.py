"""Pretty-printer: IR back to MiniACC-like source text.

Used by the examples and tests to show transformation results the way the
paper shows its before/after listings (Figures 3–6).  The output is valid
MiniACC except that compiler-generated temporaries keep their uniqued
names.
"""

from __future__ import annotations

from .expr import (
    ArrayRef,
    BinOp,
    Call,
    Cast,
    Expr,
    FloatConst,
    IntConst,
    Select,
    UnOp,
    VarRef,
)
from .module import KernelFunction
from .stmt import Assign, If, LocalDecl, Loop, Region, Stmt
from .symbols import Symbol

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def format_expr(e: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(e, IntConst):
        return str(e.value)
    if isinstance(e, FloatConst):
        text = repr(e.value)
        if e.stype.bits == 32:
            text += "f"
        return text
    if isinstance(e, VarRef):
        return e.sym.name
    if isinstance(e, ArrayRef):
        return e.sym.name + "".join(f"[{format_expr(i)}]" for i in e.indices)
    if isinstance(e, UnOp):
        return f"{e.op}{format_expr(e.operand, 7)}"
    if isinstance(e, BinOp):
        prec = _PRECEDENCE[e.op]
        text = (
            f"{format_expr(e.left, prec)} {e.op} {format_expr(e.right, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, Call):
        return f"{e.func}({', '.join(format_expr(a) for a in e.args)})"
    if isinstance(e, Cast):
        return f"({e.to_type}){format_expr(e.operand, 7)}"
    if isinstance(e, Select):
        text = (
            f"{format_expr(e.cond, 1)} ? {format_expr(e.then)} : "
            f"{format_expr(e.otherwise)}"
        )
        return f"({text})" if parent_prec > 0 else text
    raise TypeError(f"unknown expression {type(e).__name__}")


def _format_directive_loop(stmt: Loop) -> str | None:
    d = stmt.directive
    if d is None:
        return None
    parts = ["#pragma acc loop"]
    for clause in ("gang", "worker", "vector"):
        val = getattr(d, clause)
        if val is True:
            parts.append(clause)
        elif val is not None:
            parts.append(f"{clause}({val})")
    if d.seq:
        parts.append("seq")
    if d.independent:
        parts.append("independent")
    if d.collapse > 1:
        parts.append(f"collapse({d.collapse})")
    for red in d.reductions:
        parts.append(f"reduction({red.op}:{red.var})")
    if d.private:
        parts.append(f"private({', '.join(d.private)})")
    return " ".join(parts)


def _format_region_directive(region: Region) -> str:
    d = region.directive
    parts = [f"#pragma acc {d.construct}"]
    for name, arrays in d.data.items():
        parts.append(f"{name}({', '.join(arrays)})")
    if d.num_gangs is not None:
        parts.append(f"num_gangs({d.num_gangs})")
    if d.vector_length is not None:
        parts.append(f"vector_length({d.vector_length})")
    for group in d.dim_groups:
        dims = "".join(f"[{s.extent}]" for s in group.dims)
        parts.append(f"dim({dims}({', '.join(group.arrays)}))")
    if d.small:
        parts.append(f"small({', '.join(d.small)})")
    return " ".join(parts)


class Printer:
    def __init__(self) -> None:
        self._lines: list[str] = []
        self._indent = 0

    def _emit(self, text: str) -> None:
        self._lines.append("  " * self._indent + text)

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, LocalDecl):
            init = f" = {format_expr(stmt.init)}" if stmt.init is not None else ""
            self._emit(f"{stmt.sym.stype} {stmt.sym.name}{init};")
        elif isinstance(stmt, Assign):
            self._emit(f"{format_expr(stmt.target)} = {format_expr(stmt.value)};")
        elif isinstance(stmt, If):
            self._emit(f"if ({format_expr(stmt.cond)}) {{")
            self._indent += 1
            for s in stmt.then_body:
                self._stmt(s)
            self._indent -= 1
            if stmt.else_body:
                self._emit("} else {")
                self._indent += 1
                for s in stmt.else_body:
                    self._stmt(s)
                self._indent -= 1
            self._emit("}")
        elif isinstance(stmt, Loop):
            pragma = _format_directive_loop(stmt)
            if pragma:
                self._emit(pragma)
            step = stmt.step
            if step == 1:
                inc = f"{stmt.var.name}++"
            elif step == -1:
                inc = f"{stmt.var.name}--"
            elif step > 0:
                inc = f"{stmt.var.name} += {step}"
            else:
                inc = f"{stmt.var.name} -= {-step}"
            self._emit(
                f"for ({stmt.var.name} = {format_expr(stmt.init)}; "
                f"{stmt.var.name} {stmt.cond_op} {format_expr(stmt.bound)}; {inc}) {{"
            )
            self._indent += 1
            for s in stmt.body:
                self._stmt(s)
            self._indent -= 1
            self._emit("}")
        elif isinstance(stmt, Region):
            self._emit(_format_region_directive(stmt))
            self._emit("{")
            self._indent += 1
            for s in stmt.body:
                self._stmt(s)
            self._indent -= 1
            self._emit("}")
        else:
            raise TypeError(f"unknown statement {type(stmt).__name__}")

    def print_function(self, fn: KernelFunction) -> str:
        params = ", ".join(_format_param(p) for p in fn.params)
        self._emit(f"kernel {fn.name}({params}) {{")
        self._indent += 1
        for s in fn.body:
            self._stmt(s)
        self._indent -= 1
        self._emit("}")
        return "\n".join(self._lines)

    def print_stmts(self, stmts: list[Stmt]) -> str:
        for s in stmts:
            self._stmt(s)
        return "\n".join(self._lines)


def _format_param(p: Symbol) -> str:
    const = "const " if p.is_const else ""
    if p.array is None:
        return f"{const}{p.stype} {p.name}"
    if p.array.is_pointer:
        restrict = " restrict" if p.is_restrict else ""
        return f"{const}{p.array.elem} *{restrict} {p.name}"
    dims = []
    for d in p.array.dims:
        extent = d.extent.name if isinstance(d.extent, Symbol) else str(d.extent)
        lower = d.lower.name if isinstance(d.lower, Symbol) else str(d.lower)
        dims.append(f"[{extent}]" if lower == "0" else f"[{lower}:{extent}]")
    return f"{const}{p.array.elem} {p.name}{''.join(dims)}"


def format_function(fn: KernelFunction) -> str:
    """Render a whole kernel function as MiniACC-like source."""
    return Printer().print_function(fn)


def format_stmts(stmts) -> str:
    """Render a statement list (e.g. a transformed loop body)."""
    return Printer().print_stmts(list(stmts))
