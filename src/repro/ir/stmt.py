"""IR statements: assignments, conditionals, loops and offload regions.

Statements are *mutable* (transformations edit bodies in place), in contrast
to the immutable expression trees.  A :class:`Loop` keeps its OpenACC
``loop`` directive; a :class:`Region` keeps the ``kernels``/``parallel``
directive including the proposed ``dim``/``small`` clauses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator

from ..lang.directives import ComputeDirective, LoopDirective
from .expr import ArrayRef, Expr, IntConst, VarRef
from .symbols import Symbol

_loop_ids = itertools.count(1)
_region_ids = itertools.count(1)


@dataclass(slots=True)
class Stmt:
    """Base class of IR statements."""


@dataclass(slots=True)
class LocalDecl(Stmt):
    """Declaration of a kernel-local scalar, optionally initialised."""

    sym: Symbol
    init: Expr | None = None


@dataclass(slots=True)
class Assign(Stmt):
    """``target = value``.  Compound assignments are normalised by the
    builder into a plain store whose RHS re-reads the target, so reuse
    analysis sees both the read and the write reference."""

    target: VarRef | ArrayRef
    value: Expr


@dataclass(slots=True)
class If(Stmt):
    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class Loop(Stmt):
    """A counted loop ``for (var = init; var <cond_op> bound; var += step)``.

    ``step`` is a compile-time integer (negative for downward loops).
    ``directive`` is the attached ``acc loop`` directive, if any; the
    OpenACC mapping rules (gang → blocks, vector → threads, seq →
    per-thread execution) are applied by the code generator.
    """

    var: Symbol
    init: Expr
    cond_op: str  # '<' | '<=' | '>' | '>='
    bound: Expr
    step: int
    body: list[Stmt] = field(default_factory=list)
    directive: LoopDirective | None = None
    loop_id: int = field(default_factory=lambda: next(_loop_ids))
    #: Set by transformations that introduce loop-carried dependences into a
    #: previously parallel loop (the Carr-Kennedy hazard of Section III-A.1).
    sequentialized: bool = False

    @property
    def is_parallel(self) -> bool:
        """Is this loop mapped onto the GPU thread topology?"""
        if self.sequentialized:
            return False
        return self.directive is not None and self.directive.is_parallel

    @property
    def is_seq(self) -> bool:
        return not self.is_parallel

    def trip_count(self, env: dict[str, int] | None = None) -> int | None:
        """Concrete trip count when bounds are known (else ``None``).

        ``env`` maps symbol names to values for symbolic bounds.
        """
        lo = _eval_int(self.init, env)
        hi = _eval_int(self.bound, env)
        if lo is None or hi is None or self.step == 0:
            return None
        if self.cond_op == "<":
            n = hi - lo
        elif self.cond_op == "<=":
            n = hi - lo + 1
        elif self.cond_op == ">":
            n = lo - hi
        else:  # '>='
            n = lo - hi + 1
        if n <= 0:
            return 0
        return (n + abs(self.step) - 1) // abs(self.step)

    def iter_values(self, env: dict[str, int]) -> range:
        """The concrete iteration space as a Python range (for the
        interpreter)."""
        lo = _eval_int(self.init, env)
        hi = _eval_int(self.bound, env)
        if lo is None or hi is None:
            raise ValueError(f"loop bounds of {self.var.name} not evaluable")
        if self.cond_op == "<":
            return range(lo, hi, self.step)
        if self.cond_op == "<=":
            return range(lo, hi + 1, self.step)
        if self.cond_op == ">":
            return range(lo, hi, self.step)
        return range(lo, hi - 1, self.step)  # '>='


@dataclass(slots=True)
class Region(Stmt):
    """An OpenACC offload region (``kernels`` or ``parallel`` construct).

    One Region lowers to one GPU kernel launch in the paper's compiler
    (nested parallel loops define the launch topology).
    """

    directive: ComputeDirective
    body: list[Stmt] = field(default_factory=list)
    region_id: int = field(default_factory=lambda: next(_region_ids))

    @property
    def name_hint(self) -> str:
        return f"region{self.region_id}"


def _eval_int(e: Expr, env: dict[str, int] | None) -> int | None:
    """Best-effort constant evaluation of an integer expression."""
    from .expr import BinOp, UnOp  # local import to avoid cycle noise

    if isinstance(e, IntConst):
        return e.value
    if isinstance(e, VarRef):
        if env is not None and e.sym.name in env:
            return env[e.sym.name]
        return None
    if isinstance(e, UnOp) and e.op == "-":
        v = _eval_int(e.operand, env)
        return None if v is None else -v
    if isinstance(e, BinOp):
        lhs = _eval_int(e.left, env)
        rhs = _eval_int(e.right, env)
        if lhs is None or rhs is None:
            return None
        if e.op == "+":
            return lhs + rhs
        if e.op == "-":
            return lhs - rhs
        if e.op == "*":
            return lhs * rhs
        if e.op == "/":
            if rhs == 0:
                return None
            q = abs(lhs) // abs(rhs)
            return q if (lhs >= 0) == (rhs >= 0) else -q  # C truncation
        if e.op == "%":
            if rhs == 0:
                return None
            return lhs - rhs * (_eval_int(BinOp("/", e.left, e.right), env) or 0)
    return None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_stmts(stmts: list[Stmt]) -> Iterator[Stmt]:
    """Pre-order traversal of a statement list (descending into bodies)."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, Loop):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, Region):
            yield from walk_stmts(stmt.body)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The expressions directly owned by one statement (no recursion into
    child statements)."""
    if isinstance(stmt, Assign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, LocalDecl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, Loop):
        return [stmt.init, stmt.bound]
    return []


def clone_stmt(stmt: Stmt) -> Stmt:
    """Structural copy of one statement tree.

    Expressions and :class:`~repro.ir.symbols.Symbol` objects are *shared*
    (exprs are immutable and hash-consed; symbols compare by identity and
    must stay the same objects the symbol table holds) — only the mutable
    statement skeleton is copied, so transformations on the clone cannot
    reach the original.  Directives are copied too (they are mutable
    dataclasses that passes may rewrite), keeping ``loop_id``/``region_id``
    so traces and launch caches line up between the two copies.
    """
    if isinstance(stmt, Assign):
        return Assign(target=stmt.target, value=stmt.value)
    if isinstance(stmt, LocalDecl):
        return LocalDecl(sym=stmt.sym, init=stmt.init)
    if isinstance(stmt, If):
        return If(
            cond=stmt.cond,
            then_body=[clone_stmt(s) for s in stmt.then_body],
            else_body=[clone_stmt(s) for s in stmt.else_body],
        )
    if isinstance(stmt, Loop):
        return Loop(
            var=stmt.var,
            init=stmt.init,
            cond_op=stmt.cond_op,
            bound=stmt.bound,
            step=stmt.step,
            body=[clone_stmt(s) for s in stmt.body],
            directive=_clone_loop_directive(stmt.directive),
            loop_id=stmt.loop_id,
            sequentialized=stmt.sequentialized,
        )
    if isinstance(stmt, Region):
        return clone_region(stmt)
    raise TypeError(f"cannot clone statement {type(stmt).__name__}")


def _clone_loop_directive(d: LoopDirective | None) -> LoopDirective | None:
    if d is None:
        return None
    return replace(d)


def clone_region(region: Region) -> Region:
    """Independent copy of an offload region (same ``region_id``): compile
    the copy down one configuration path while keeping the original intact
    for another — the register-pressure guard compiles a region both with
    and without equality saturation and keeps the better kernel."""
    directive = replace(
        region.directive,
        combined_loop=_clone_loop_directive(region.directive.combined_loop),
    )
    return Region(
        directive=directive,
        body=[clone_stmt(s) for s in region.body],
        region_id=region.region_id,
    )


def loops_in(stmts: list[Stmt]) -> list[Loop]:
    return [s for s in walk_stmts(stmts) if isinstance(s, Loop)]


def regions_in(stmts: list[Stmt]) -> list[Region]:
    return [s for s in walk_stmts(stmts) if isinstance(s, Region)]
