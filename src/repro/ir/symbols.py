"""Symbols and symbol tables for the MiniACC IR.

Array symbols carry their *dope vector* information — per-dimension lower
bound and extent, each either a compile-time integer or another (scalar)
symbol.  This mirrors the Fortran allocatable / C VLA distinction that the
paper's ``dim`` clause targets: when extents are symbols, the flattened
offset computation needs compiler-generated temporaries at run time
(Section IV-A), and those temporaries are what ``dim`` eliminates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .types import ScalarType


class SymbolKind(enum.Enum):
    PARAM = "param"
    LOCAL = "local"
    LOOPVAR = "loopvar"
    TEMP = "temp"  # compiler-generated (e.g. scalar-replacement temporaries)


@dataclass(frozen=True, slots=True)
class Dim:
    """One array dimension: extent and lower bound.

    ``extent``/``lower`` are ``int`` when statically known, otherwise the
    scalar :class:`Symbol` holding the run-time value.
    """

    extent: "int | Symbol"
    lower: "int | Symbol" = 0

    @property
    def is_static(self) -> bool:
        return isinstance(self.extent, int) and isinstance(self.lower, int)


@dataclass(frozen=True, slots=True)
class ArrayInfo:
    """Shape/layout info attached to array and pointer symbols.

    * ``dims`` is empty for raw pointers (C benchmarks, where the paper
      notes the ``dim`` clause cannot be used).
    * Layout is row-major (C order); Fortran benchmarks are modelled with
      their subscripts already permuted to row-major, which preserves the
      coalescing structure the paper discusses.
    """

    elem: ScalarType
    dims: tuple[Dim, ...] = ()
    is_pointer: bool = False

    @property
    def ndim(self) -> int:
        return len(self.dims) if self.dims else 1

    @property
    def is_vla(self) -> bool:
        """True when any bound is a run-time value (dope vector needed)."""
        return any(not d.is_static for d in self.dims)

    def static_elem_count(self) -> int | None:
        """Total element count if all extents are static, else ``None``."""
        if not self.dims:
            return None
        count = 1
        for d in self.dims:
            if not isinstance(d.extent, int):
                return None
            count *= d.extent
        return count

    def static_size_bytes(self) -> int | None:
        count = self.static_elem_count()
        if count is None:
            return None
        return count * (self.elem.bits // 8)


@dataclass(eq=False, slots=True)
class Symbol:
    """A named program object.  Identity (not name) equality."""

    name: str
    stype: ScalarType
    kind: SymbolKind = SymbolKind.LOCAL
    array: ArrayInfo | None = None
    is_const: bool = False
    is_restrict: bool = False

    @property
    def is_array(self) -> bool:
        return self.array is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.array is not None:
            dims = "".join(
                f"[{d.lower if d.lower != 0 else ''}{':' if d.lower != 0 else ''}"
                f"{d.extent.name if isinstance(d.extent, Symbol) else d.extent}]"
                for d in self.array.dims
            )
            star = "*" if self.array.is_pointer else ""
            return f"<{self.array.elem}{star} {self.name}{dims}>"
        return f"<{self.stype} {self.name}>"


class SymbolTable:
    """Flat per-kernel symbol table with unique-name generation.

    MiniACC scoping is simple enough (no shadowing across nested loops)
    that one flat table per kernel function suffices; the IR builder
    enforces no-redeclaration.
    """

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}
        self._counter = 0

    def declare(self, sym: Symbol) -> Symbol:
        if sym.name in self._symbols:
            raise KeyError(f"symbol {sym.name!r} already declared")
        self._symbols[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Symbol | None:
        return self._symbols.get(name)

    def require(self, name: str) -> Symbol:
        sym = self._symbols.get(name)
        if sym is None:
            raise KeyError(f"undeclared symbol {name!r}")
        return sym

    def fresh(
        self,
        base: str,
        stype: ScalarType,
        kind: SymbolKind = SymbolKind.TEMP,
    ) -> Symbol:
        """Create and declare a compiler temporary with a unique name."""
        while True:
            self._counter += 1
            name = f"{base}_{self._counter}"
            if name not in self._symbols:
                break
        return self.declare(Symbol(name=name, stype=stype, kind=kind))

    def __iter__(self):
        return iter(self._symbols.values())

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def arrays(self) -> list[Symbol]:
        return [s for s in self if s.is_array]

    def scalars(self) -> list[Symbol]:
        return [s for s in self if not s.is_array]
