"""Scalar type system for the MiniACC IR.

The type lattice is tiny on purpose — the paper's transformations only care
about (a) float vs integer, (b) 32-bit vs 64-bit width, because a 64-bit
value occupies **two** 32-bit GPU registers (Section IV-B: the motivation
for the ``small`` clause).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ScalarType:
    """A primitive machine type."""

    name: str
    bits: int
    is_float: bool

    @property
    def registers(self) -> int:
        """Number of 32-bit GPU registers needed to hold one value.

        Kepler general-purpose registers are 32 bits wide; 64-bit values
        occupy a consecutive pair (paper Section IV-B).
        """
        return max(1, self.bits // 32)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


F32 = ScalarType("float", 32, True)
F64 = ScalarType("double", 64, True)
I32 = ScalarType("int", 32, False)
I64 = ScalarType("long", 64, False)
BOOL = ScalarType("bool", 32, False)

#: MiniACC surface type names to IR types.
NAMED_TYPES: dict[str, ScalarType] = {
    "float": F32,
    "double": F64,
    "int": I32,
    "long": I64,
}


def promote(a: ScalarType, b: ScalarType) -> ScalarType:
    """Usual arithmetic conversions, reduced to this four-type lattice."""
    if a.is_float or b.is_float:
        if (a.is_float and a.bits == 64) or (b.is_float and b.bits == 64):
            return F64
        return F32
    if a.bits == 64 or b.bits == 64:
        return I64
    return I32


def type_from_name(name: str) -> ScalarType:
    """Resolve a surface type name (raises ``KeyError`` on bad names)."""
    return NAMED_TYPES[name]
