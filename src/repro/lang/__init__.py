"""MiniACC front end: lexer, parser, AST and OpenACC directive handling.

MiniACC is a small C-like kernel language standing in for the C/Fortran
front ends of the OpenUH compiler.  It supports multi-dimensional array
parameters with symbolic extents and optional lower bounds (modelling
Fortran allocatable arrays and C VLAs), affine loop nests, and the OpenACC
directive subset the paper uses — extended with the proposed ``dim`` and
``small`` clauses.
"""

from .ast_nodes import (
    AssignStmt,
    Binary,
    CallExpr,
    DeclStmt,
    DimDecl,
    Expr,
    FloatLit,
    ForStmt,
    IfStmt,
    Index,
    IntLit,
    KernelDecl,
    Name,
    ParamDecl,
    Program,
    RegionStmt,
    ReturnStmt,
    Stmt,
    Ternary,
    Unary,
)
from .directives import (
    AccDirective,
    ComputeDirective,
    DimGroup,
    DimSpec,
    LoopDirective,
    Reduction,
    parse_directive,
)
from .errors import (
    DirectiveError,
    LexError,
    MiniAccError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from .lexer import Lexer, tokenize
from .parser import parse_program

__all__ = [
    "AccDirective",
    "AssignStmt",
    "Binary",
    "CallExpr",
    "ComputeDirective",
    "DeclStmt",
    "DimDecl",
    "DimGroup",
    "DimSpec",
    "DirectiveError",
    "Expr",
    "FloatLit",
    "ForStmt",
    "IfStmt",
    "Index",
    "IntLit",
    "KernelDecl",
    "LexError",
    "Lexer",
    "LoopDirective",
    "MiniAccError",
    "Name",
    "ParamDecl",
    "ParseError",
    "Program",
    "Reduction",
    "RegionStmt",
    "ReturnStmt",
    "SemanticError",
    "SourceLocation",
    "Stmt",
    "Ternary",
    "Unary",
    "parse_directive",
    "parse_program",
    "tokenize",
]
