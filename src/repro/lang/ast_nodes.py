"""Source-level AST for MiniACC.

The AST is deliberately close to the concrete syntax; the IR builder
(:mod:`repro.ir.builder`) performs name resolution, type checking and loop
normalisation.  Nodes are plain dataclasses with source locations so the
whole front end is easy to test structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .directives import AccDirective, ComputeDirective, LoopDirective
from .errors import SourceLocation

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class for source-level expressions."""


@dataclass(frozen=True, slots=True)
class IntLit(Expr):
    value: int
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class FloatLit(Expr):
    value: float
    is_single: bool = False  # 'f' suffix
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class Name(Expr):
    ident: str
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class Index(Expr):
    """``base[i0][i1]...`` — array subscripting (possibly partial)."""

    base: Expr
    indices: tuple[Expr, ...]
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class Unary(Expr):
    op: str  # '-', '!', '+'
    operand: Expr
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class Binary(Expr):
    op: str  # '+', '-', '*', '/', '%', '<', '<=', '>', '>=', '==', '!=', '&&', '||'
    left: Expr
    right: Expr
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(frozen=True, slots=True)
class CallExpr(Expr):
    """Intrinsic math call: sqrt, fabs, exp, log, sin, cos, pow, min, max."""

    func: str
    args: tuple[Expr, ...]
    loc: SourceLocation = field(default_factory=SourceLocation)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt:
    """Base class for source-level statements."""


@dataclass(slots=True)
class DeclStmt(Stmt):
    """Local scalar declaration, e.g. ``double t = 0.0;``."""

    type_name: str
    name: str
    init: Expr | None
    is_const: bool = False
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(slots=True)
class AssignStmt(Stmt):
    """``lhs = rhs;`` or compound ``lhs op= rhs;`` (op in +,-,*,/)."""

    target: Expr  # Name or Index
    value: Expr
    op: str | None = None  # None for '=', else '+', '-', '*', '/'
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(slots=True)
class IfStmt(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(slots=True)
class ForStmt(Stmt):
    """``for (var = lo; var < hi; var += step) body``.

    The parser normalises the three header clauses into ``var``, bounds and
    a step; ``directive`` is the ``loop`` pragma attached immediately above
    (if any).
    """

    var: str
    init: Expr
    cond_op: str  # '<', '<=', '>', '>='
    bound: Expr
    step: Expr  # positive or negative integer expression
    body: list[Stmt] = field(default_factory=list)
    directive: LoopDirective | None = None
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(slots=True)
class RegionStmt(Stmt):
    """An OpenACC compute region: a ``kernels``/``parallel`` pragma applied
    to the following loop or block."""

    directive: ComputeDirective
    body: list[Stmt] = field(default_factory=list)
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(slots=True)
class ReturnStmt(Stmt):
    loc: SourceLocation = field(default_factory=SourceLocation)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DimDecl:
    """One declared array dimension: extent plus optional lower bound.

    ``extent`` is an :class:`Expr` (an ``IntLit`` for static arrays, a
    ``Name`` for VLA/allocatable arrays).  A non-zero ``lower`` models
    Fortran allocatable arrays, whose dope vectors store lower bound and
    length per dimension (Section IV-A of the paper).
    """

    extent: Expr
    lower: Expr | None = None


@dataclass(frozen=True, slots=True)
class ParamDecl:
    """A kernel parameter.

    Forms accepted::

        double x                  -- scalar
        const double a[nx][ny]    -- VLA-style array (dope vector)
        double b[1:nx][1:ny]      -- allocatable-style with lower bounds
        double * restrict p       -- raw pointer (C benchmarks; no dim info)
    """

    type_name: str
    name: str
    dims: tuple[DimDecl, ...] = ()
    is_pointer: bool = False
    is_const: bool = False
    is_restrict: bool = False
    loc: SourceLocation = field(default_factory=SourceLocation)

    @property
    def is_array(self) -> bool:
        return bool(self.dims) or self.is_pointer


@dataclass(slots=True)
class KernelDecl:
    """A top-level ``kernel name(params) { body }`` declaration.

    This models a host function containing one or more OpenACC offload
    regions — the unit the OpenUH compiler translates.
    """

    name: str
    params: tuple[ParamDecl, ...]
    body: list[Stmt]
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass(slots=True)
class Program:
    """A parsed MiniACC translation unit."""

    kernels: list[KernelDecl]

    def kernel(self, name: str) -> KernelDecl:
        """Look up a kernel by name (raises ``KeyError`` if missing)."""
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)


__all__ = [
    "AccDirective",
    "AssignStmt",
    "Binary",
    "CallExpr",
    "DeclStmt",
    "DimDecl",
    "Expr",
    "FloatLit",
    "ForStmt",
    "IfStmt",
    "Index",
    "IntLit",
    "KernelDecl",
    "Name",
    "ParamDecl",
    "Program",
    "RegionStmt",
    "ReturnStmt",
    "Stmt",
    "Ternary",
    "Unary",
]
