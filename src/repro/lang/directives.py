"""Parsing and representation of ``#pragma acc`` directives.

This module implements the OpenACC subset the paper relies on, plus the two
clauses the paper *proposes*:

* compute constructs: ``kernels`` and ``parallel`` (optionally combined with
  ``loop``), with data clauses (``copy``/``copyin``/``copyout``/``create``/
  ``present``), ``num_gangs``/``vector_length``;
* the ``loop`` construct with ``gang``/``worker``/``vector`` (each optionally
  sized), ``seq``, ``independent``, ``collapse(n)``, ``reduction(op:var)``
  and ``private(...)``;
* the proposed ``dim([d1][d2](A,B),...)`` clause (Section IV-A) declaring
  arrays that share identical dimensions — both the C ``[len]...`` and the
  Fortran ``(lb:len, ...)`` spellings are accepted;
* the proposed ``small(A,B,...)`` clause (Section IV-B) declaring arrays
  whose flattened offsets fit in a 32-bit integer.

The grammar is parsed from the raw text of a :attr:`TokenKind.PRAGMA` token
using the main lexer, so locations remain accurate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import DirectiveError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind

#: Reduction operators OpenACC defines that MiniACC supports.
REDUCTION_OPS = frozenset({"+", "*", "max", "min"})

#: Data-movement clause names we record (semantics handled by the runtime
#: model; for register optimization they only matter for read-only analysis).
DATA_CLAUSES = frozenset({"copy", "copyin", "copyout", "create", "present"})


@dataclass(frozen=True, slots=True)
class DimSpec:
    """One dimension inside a ``dim`` clause: optional lower bound + extent.

    ``lower``/``extent`` are either ``int`` literals or identifier strings
    naming kernel parameters; the IR builder resolves them against the
    symbol table.
    """

    extent: int | str
    lower: int | str | None = None


@dataclass(frozen=True, slots=True)
class DimGroup:
    """A group of arrays declared to share the same dimensions.

    ``dims`` may be empty, meaning the user gave only the array list
    (``dim((a, b, c))``); the compiler then takes dimension data from the
    first array's dope vector (Section IV-A).
    """

    arrays: tuple[str, ...]
    dims: tuple[DimSpec, ...] = ()


@dataclass(frozen=True, slots=True)
class Reduction:
    """A ``reduction(op:var)`` clause instance."""

    op: str
    var: str


@dataclass(slots=True)
class LoopDirective:
    """Parsed ``loop`` construct clauses.

    ``gang``/``worker``/``vector`` are ``None`` when absent, ``True`` when
    present without a size, or the size expression (int or identifier text).
    """

    gang: bool | int | str | None = None
    worker: bool | int | str | None = None
    vector: bool | int | str | None = None
    seq: bool = False
    independent: bool = False
    collapse: int = 1
    reductions: tuple[Reduction, ...] = ()
    private: tuple[str, ...] = ()
    loc: SourceLocation = field(default_factory=SourceLocation)

    @property
    def is_parallel(self) -> bool:
        """True when the loop's iterations are distributed across threads."""
        return not self.seq and (
            self.gang is not None
            or self.worker is not None
            or self.vector is not None
            or self.independent
        )


@dataclass(slots=True)
class ComputeDirective:
    """Parsed ``kernels`` or ``parallel`` construct clauses."""

    construct: str  # "kernels" | "parallel"
    data: dict[str, tuple[str, ...]] = field(default_factory=dict)
    num_gangs: int | str | None = None
    vector_length: int | str | None = None
    dim_groups: tuple[DimGroup, ...] = ()
    small: tuple[str, ...] = ()
    combined_loop: LoopDirective | None = None
    loc: SourceLocation = field(default_factory=SourceLocation)


AccDirective = ComputeDirective | LoopDirective


class _DirectiveParser:
    """Recursive-descent parser over the tokens of one pragma line."""

    def __init__(self, text: str, loc: SourceLocation):
        self._tokens = tokenize(text, loc.filename)
        self._idx = 0
        self._loc = loc

    # -- cursor helpers ------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._idx]

    def _next(self) -> Token:
        tok = self._tokens[self._idx]
        if tok.kind is not TokenKind.EOF:
            self._idx += 1
        return tok

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _expect(self, kind: TokenKind, what: str) -> Token:
        tok = self._next()
        if tok.kind is not kind:
            raise DirectiveError(
                f"expected {what}, found {tok.value!r}", self._loc
            )
        return tok

    def _accept(self, kind: TokenKind) -> bool:
        if self._peek().kind is kind:
            self._next()
            return True
        return False

    def _word(self) -> str | None:
        tok = self._peek()
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            self._next()
            return tok.value
        return None

    def _int_or_ident(self, what: str) -> int | str:
        tok = self._next()
        if tok.kind is TokenKind.INT_LIT:
            return int(tok.value.rstrip("L"))
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            return tok.value
        raise DirectiveError(f"expected {what}, found {tok.value!r}", self._loc)

    def _name_list(self) -> tuple[str, ...]:
        """Parse ``(a, b, c)`` (trailing comma tolerated, as in the paper)."""
        self._expect(TokenKind.LPAREN, "'('")
        names: list[str] = []
        while not self._accept(TokenKind.RPAREN):
            name = self._word()
            if name is None:
                raise DirectiveError(
                    f"expected array name, found {self._peek().value!r}",
                    self._loc,
                )
            # Tolerate sub-array bounds in data clauses: a[0:n].
            while self._accept(TokenKind.LBRACKET):
                depth = 1
                while depth:
                    tok = self._next()
                    if tok.kind is TokenKind.EOF:
                        raise DirectiveError("unterminated '['", self._loc)
                    if tok.kind is TokenKind.LBRACKET:
                        depth += 1
                    elif tok.kind is TokenKind.RBRACKET:
                        depth -= 1
            names.append(name)
            if not self._accept(TokenKind.COMMA) and self._peek().kind is not TokenKind.RPAREN:
                raise DirectiveError(
                    f"expected ',' or ')', found {self._peek().value!r}",
                    self._loc,
                )
        return tuple(names)

    # -- clause parsers --------------------------------------------------
    def _parse_dim_clause(self) -> tuple[DimGroup, ...]:
        """Parse ``dim( group , group , ... )``.

        group := ``[e]...[e] (names)``       (C spelling)
               | ``( lb:len, ... ) (names)`` (Fortran spelling)
               | ``(names)``                 (dimensions taken from dope)
        """
        self._expect(TokenKind.LPAREN, "'(' after dim")
        groups: list[DimGroup] = []
        while not self._accept(TokenKind.RPAREN):
            dims: list[DimSpec] = []
            if self._peek().kind is TokenKind.LBRACKET:
                while self._accept(TokenKind.LBRACKET):
                    extent = self._int_or_ident("dimension length")
                    self._expect(TokenKind.RBRACKET, "']'")
                    dims.append(DimSpec(extent=extent, lower=0))
                arrays = self._name_list()
            else:
                # '(' — either a bounds tuple followed by names, or names.
                is_bounds = self._looks_like_bounds()
                if is_bounds:
                    self._expect(TokenKind.LPAREN, "'('")
                    while True:
                        first = self._int_or_ident("bound")
                        if self._accept(TokenKind.COLON):
                            extent = self._int_or_ident("dimension length")
                            dims.append(DimSpec(extent=extent, lower=first))
                        else:
                            dims.append(DimSpec(extent=first, lower=0))
                        if not self._accept(TokenKind.COMMA):
                            break
                    self._expect(TokenKind.RPAREN, "')'")
                arrays = self._name_list()
            if not arrays:
                raise DirectiveError("dim group has no arrays", self._loc)
            groups.append(DimGroup(arrays=arrays, dims=tuple(dims)))
            self._accept(TokenKind.COMMA)
        if not groups:
            raise DirectiveError("dim clause is empty", self._loc)
        return tuple(groups)

    def _looks_like_bounds(self) -> bool:
        """Lookahead: does the upcoming parenthesised list contain ':'?"""
        depth = 0
        idx = self._idx
        while idx < len(self._tokens):
            kind = self._tokens[idx].kind
            if kind is TokenKind.LPAREN:
                depth += 1
            elif kind is TokenKind.RPAREN:
                depth -= 1
                if depth == 0:
                    return False
            elif kind is TokenKind.COLON and depth == 1:
                return True
            elif kind is TokenKind.EOF:
                return False
            idx += 1
        return False

    def _parse_loop_clauses(
        self, loop: LoopDirective, compute: "ComputeDirective | None" = None
    ) -> None:
        """Parse loop clauses; in a combined construct (``kernels loop``),
        compute-construct clauses (data, ``dim``, ``small``…) may be mixed in
        and are routed to ``compute``."""
        while not self._at_end():
            name = self._word()
            if name is None:
                raise DirectiveError(
                    f"unexpected token {self._peek().value!r} in loop clauses",
                    self._loc,
                )
            if compute is not None and self._parse_compute_clause(compute, name):
                continue
            if name in ("gang", "worker", "vector"):
                value: bool | int | str = True
                if self._accept(TokenKind.LPAREN):
                    value = self._parse_size_expr()
                    self._expect(TokenKind.RPAREN, "')'")
                setattr(loop, name, value)
            elif name == "seq":
                loop.seq = True
            elif name == "independent":
                loop.independent = True
            elif name == "collapse":
                self._expect(TokenKind.LPAREN, "'('")
                n = self._int_or_ident("collapse factor")
                if not isinstance(n, int) or n < 1:
                    raise DirectiveError("collapse factor must be a positive integer", self._loc)
                loop.collapse = n
                self._expect(TokenKind.RPAREN, "')'")
            elif name == "reduction":
                self._expect(TokenKind.LPAREN, "'('")
                op_tok = self._next()
                op = op_tok.value
                if op not in REDUCTION_OPS:
                    raise DirectiveError(f"unknown reduction operator {op!r}", self._loc)
                self._expect(TokenKind.COLON, "':'")
                varname = self._word()
                if varname is None:
                    raise DirectiveError("expected reduction variable", self._loc)
                loop.reductions = loop.reductions + (Reduction(op, varname),)
                self._expect(TokenKind.RPAREN, "')'")
            elif name == "private":
                loop.private = loop.private + self._name_list()
            else:
                raise DirectiveError(f"unknown loop clause {name!r}", self._loc)

    def _parse_size_expr(self) -> int | str:
        """Parse a gang/vector size.

        Real OpenACC allows arbitrary expressions like ``(NX-1+63)/64``; we
        fold constant arithmetic and otherwise keep the raw text (the launch
        configuration model treats non-constant sizes as runtime values).
        """
        parts: list[str] = []
        depth = 0
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                raise DirectiveError("unterminated size expression", self._loc)
            if tok.kind is TokenKind.LPAREN:
                depth += 1
            elif tok.kind is TokenKind.RPAREN:
                if depth == 0:
                    break
                depth -= 1
            parts.append(tok.value)
            self._next()
        text = " ".join(parts)
        try:
            # C semantics: '/' between integers is integer division.
            value = eval(
                compile(text.replace("/", "//"), "<size>", "eval"),
                {"__builtins__": {}},
                {},
            )
        except Exception:
            return text
        if isinstance(value, int):
            return value
        return text

    def _parse_compute_clause(self, directive: "ComputeDirective", name: str) -> bool:
        """Try to parse one compute-construct clause; return False if ``name``
        is not a compute clause (the caller then tries loop clauses)."""
        if name in DATA_CLAUSES:
            directive.data[name] = directive.data.get(name, ()) + self._name_list()
        elif name == "num_gangs":
            self._expect(TokenKind.LPAREN, "'('")
            directive.num_gangs = self._parse_size_expr()
            self._expect(TokenKind.RPAREN, "')'")
        elif name == "vector_length":
            self._expect(TokenKind.LPAREN, "'('")
            directive.vector_length = self._parse_size_expr()
            self._expect(TokenKind.RPAREN, "')'")
        elif name == "dim":
            directive.dim_groups = directive.dim_groups + self._parse_dim_clause()
        elif name == "small":
            directive.small = directive.small + self._name_list()
        else:
            return False
        return True

    # -- entry point -------------------------------------------------------
    def parse(self) -> AccDirective | None:
        """Parse one pragma.  Returns ``None`` for non-acc pragmas."""
        first = self._word()
        if first != "pragma":
            return None
        if self._word() != "acc":
            return None  # Not ours (e.g. '#pragma omp'); caller ignores it.
        construct = self._word()
        if construct in ("kernels", "parallel"):
            directive = ComputeDirective(construct=construct, loc=self._loc)
            # Combined construct: 'kernels loop ...'.
            while not self._at_end():
                name = self._word()
                if name == "loop":
                    loop = LoopDirective(loc=self._loc)
                    self._parse_loop_clauses(loop, compute=directive)
                    directive.combined_loop = loop
                    break
                if name is None or not self._parse_compute_clause(directive, name):
                    raise DirectiveError(
                        f"unknown {construct} clause {name!r}", self._loc
                    )
            return directive
        if construct == "loop":
            loop = LoopDirective(loc=self._loc)
            self._parse_loop_clauses(loop)
            return loop
        raise DirectiveError(f"unknown acc construct {construct!r}", self._loc)


def parse_directive(text: str, loc: SourceLocation | None = None) -> AccDirective | None:
    """Parse the body of a ``#pragma`` token.

    Returns a :class:`ComputeDirective` or :class:`LoopDirective`, or
    ``None`` when the pragma is not an ``acc`` directive (such pragmas are
    ignored, matching C compiler behaviour).
    """
    return _DirectiveParser(text, loc or SourceLocation()).parse()
