"""Diagnostics for the MiniACC front end.

All front-end failures raise a subclass of :class:`MiniAccError` carrying a
:class:`SourceLocation` so callers (and tests) can point at the offending
token.  The compiler driver converts these into user-facing diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in a MiniACC source buffer (1-based line / column)."""

    line: int = 0
    column: int = 0
    filename: str = "<string>"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.column}"


class MiniAccError(ReproError):
    """Base class for every error produced by the MiniACC front end.

    Part of the unified :class:`~repro.errors.ReproError` hierarchy; the
    serve protocol maps it onto the ``parse_error`` wire code.
    """

    def __init__(self, message: str, loc: SourceLocation | None = None):
        self.loc = loc or SourceLocation()
        self.message = message
        super().__init__(f"{self.loc}: {message}")


class LexError(MiniAccError):
    """An unrecognised character or malformed literal."""


class ParseError(MiniAccError):
    """A syntax error in declarations, statements or expressions."""


class DirectiveError(MiniAccError):
    """A malformed or misplaced ``#pragma acc`` directive."""


class SemanticError(MiniAccError):
    """A name/type error found while lowering the AST to IR."""
