"""Hand-written lexer for MiniACC.

Design notes
------------
* ``#pragma`` lines become a single :attr:`TokenKind.PRAGMA` token carrying
  the raw text after ``#``; the directive sub-grammar is handled by
  :mod:`repro.lang.directives`.  Directive continuation lines ending in a
  backslash are joined, mirroring the C preprocessor.
* ``//`` and ``/* ... */`` comments are skipped; the latter may span lines.
* Numeric literals support decimal integers, floats with exponents, and the
  ``f``/``F`` suffix (recorded in the literal text so the parser can pick
  ``float`` vs ``double`` constants).
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, MULTI_CHAR_OPS, SINGLE_CHAR_OPS, Token, TokenKind


class Lexer:
    """Converts MiniACC source text into a list of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<string>"):
        self._src = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    # -- low-level helpers -------------------------------------------------
    def _loc(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        idx = self._pos + offset
        return self._src[idx] if idx < len(self._src) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._src):
                return
            if self._src[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    # -- token scanners ----------------------------------------------------
    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (but stop before ``#``)."""
        while self._pos < len(self._src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self._pos < len(self._src) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._pos >= len(self._src):
                    raise LexError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    def _scan_pragma(self) -> Token:
        loc = self._loc()
        self._advance()  # consume '#'
        parts: list[str] = []
        while True:
            start = self._pos
            while self._pos < len(self._src) and self._peek() != "\n":
                self._advance()
            line = self._src[start : self._pos].rstrip()
            if line.endswith("\\"):
                parts.append(line[:-1])
                self._advance()  # newline
                continue
            parts.append(line)
            break
        text = " ".join(p.strip() for p in parts).strip()
        return Token(TokenKind.PRAGMA, text, loc)

    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self._pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == "." and not self._peek(1).isalpha():
            is_float = True
            self._advance()
        if self._peek() and self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) and self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._src[start : self._pos]
        nxt = self._peek()
        if nxt and nxt in "fF":
            is_float = True
            self._advance()
            text += "f"
        elif nxt and nxt in "lL":
            self._advance()
            text += "L"
        kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
        return Token(kind, text, loc)

    def _scan_word(self) -> Token:
        loc = self._loc()
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._src[start : self._pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    # -- public API ----------------------------------------------------------
    def tokens(self) -> list[Token]:
        """Lex the whole buffer, returning tokens ending with ``EOF``."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self._pos >= len(self._src):
                out.append(Token(TokenKind.EOF, "", self._loc()))
                return out
            ch = self._peek()
            if ch == "#":
                out.append(self._scan_pragma())
            elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                out.append(self._scan_number())
            elif ch.isalpha() or ch == "_":
                out.append(self._scan_word())
            else:
                loc = self._loc()
                for spelling, kind in MULTI_CHAR_OPS:
                    if self._src.startswith(spelling, self._pos):
                        self._advance(len(spelling))
                        out.append(Token(kind, spelling, loc))
                        break
                else:
                    kind = SINGLE_CHAR_OPS.get(ch)
                    if kind is None:
                        raise LexError(f"unexpected character {ch!r}", loc)
                    self._advance()
                    out.append(Token(kind, ch, loc))


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokens()
