"""Recursive-descent parser for MiniACC.

Produces the source-level AST of :mod:`repro.lang.ast_nodes`.  OpenACC
pragmas are attached during parsing: a ``kernels``/``parallel`` pragma wraps
the following statement in a :class:`RegionStmt`; a ``loop`` pragma is
attached to the following ``for`` statement.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .directives import ComputeDirective, LoopDirective, parse_directive
from .errors import ParseError, SourceLocation
from .lexer import tokenize
from .tokens import Token, TokenKind
from ..obs.tracer import span

#: Math intrinsics callable from kernel code.
INTRINSICS = frozenset(
    {
        "sqrt",
        "fabs",
        "abs",
        "exp",
        "log",
        "sin",
        "cos",
        "tan",
        "pow",
        "min",
        "max",
        "fmin",
        "fmax",
        "floor",
        "ceil",
    }
)

_TYPE_NAMES = frozenset({"float", "double", "int", "long"})

_ASSIGN_OPS = {
    TokenKind.ASSIGN: None,
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token]):
        self._toks = tokens
        self._idx = 0

    # -- cursor --------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._idx + offset, len(self._toks) - 1)
        return self._toks[idx]

    def _next(self) -> Token:
        tok = self._toks[self._idx]
        if tok.kind is not TokenKind.EOF:
            self._idx += 1
        return tok

    def _check(self, kind: TokenKind, value: str | None = None) -> bool:
        tok = self._peek()
        return tok.kind is kind and (value is None or tok.value == value)

    def _accept(self, kind: TokenKind, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._next()
        return None

    def _expect(self, kind: TokenKind, what: str) -> Token:
        tok = self._next()
        if tok.kind is not kind:
            raise ParseError(f"expected {what}, found {tok.value!r}", tok.loc)
        return tok

    def _expect_kw(self, word: str) -> Token:
        tok = self._next()
        if tok.kind is not TokenKind.KEYWORD or tok.value != word:
            raise ParseError(f"expected {word!r}, found {tok.value!r}", tok.loc)
        return tok

    # -- program / declarations ----------------------------------------------
    def parse_program(self) -> ast.Program:
        kernels: list[ast.KernelDecl] = []
        while not self._check(TokenKind.EOF):
            if self._check(TokenKind.PRAGMA):
                # Stray top-level pragma (ignored, like a non-acc pragma).
                self._next()
                continue
            kernels.append(self._parse_kernel())
        return ast.Program(kernels)

    def _parse_kernel(self) -> ast.KernelDecl:
        kw = self._expect_kw("kernel")
        name = self._expect(TokenKind.IDENT, "kernel name").value
        self._expect(TokenKind.LPAREN, "'('")
        params: list[ast.ParamDecl] = []
        if not self._accept(TokenKind.RPAREN):
            while True:
                params.append(self._parse_param())
                if self._accept(TokenKind.RPAREN):
                    break
                self._expect(TokenKind.COMMA, "',' between parameters")
        body = self._parse_block()
        return ast.KernelDecl(name=name, params=tuple(params), body=body, loc=kw.loc)

    def _parse_param(self) -> ast.ParamDecl:
        loc = self._peek().loc
        is_const = bool(self._accept(TokenKind.KEYWORD, "const"))
        type_tok = self._next()
        if type_tok.kind is not TokenKind.KEYWORD or type_tok.value not in _TYPE_NAMES:
            raise ParseError(f"expected type name, found {type_tok.value!r}", type_tok.loc)
        if not is_const:
            is_const = bool(self._accept(TokenKind.KEYWORD, "const"))
        is_pointer = bool(self._accept(TokenKind.STAR))
        is_restrict = bool(self._accept(TokenKind.KEYWORD, "restrict"))
        if not is_const:
            is_const = bool(self._accept(TokenKind.KEYWORD, "const"))
        name = self._expect(TokenKind.IDENT, "parameter name").value
        dims: list[ast.DimDecl] = []
        while self._accept(TokenKind.LBRACKET):
            first = self._parse_expr()
            lower: ast.Expr | None = None
            if self._accept(TokenKind.COLON):
                lower = first
                extent = self._parse_expr()
            else:
                extent = first
            self._expect(TokenKind.RBRACKET, "']'")
            dims.append(ast.DimDecl(extent=extent, lower=lower))
        if is_pointer and dims:
            raise ParseError("parameter cannot be both pointer and array", loc)
        return ast.ParamDecl(
            type_name=type_tok.value,
            name=name,
            dims=tuple(dims),
            is_pointer=is_pointer,
            is_const=is_const,
            is_restrict=is_restrict,
            loc=loc,
        )

    # -- statements ------------------------------------------------------------
    def _parse_block(self) -> list[ast.Stmt]:
        self._expect(TokenKind.LBRACE, "'{'")
        stmts: list[ast.Stmt] = []
        while not self._accept(TokenKind.RBRACE):
            if self._check(TokenKind.EOF):
                raise ParseError("unterminated block", self._peek().loc)
            stmt = self._parse_stmt()
            if stmt is not None:
                stmts.append(stmt)
        return stmts

    def _parse_body(self) -> list[ast.Stmt]:
        """Loop/if body: either a braced block or a single statement."""
        if self._check(TokenKind.LBRACE):
            return self._parse_block()
        stmt = self._parse_stmt()
        return [stmt] if stmt is not None else []

    def _parse_stmt(self) -> ast.Stmt | None:
        tok = self._peek()
        if tok.kind is TokenKind.PRAGMA:
            return self._parse_pragma_stmt()
        if tok.kind is TokenKind.KEYWORD:
            if tok.value == "for":
                return self._parse_for(None)
            if tok.value == "if":
                return self._parse_if()
            if tok.value == "return":
                self._next()
                self._expect(TokenKind.SEMI, "';'")
                return ast.ReturnStmt(loc=tok.loc)
            if tok.value in _TYPE_NAMES or tok.value == "const":
                return self._parse_decl()
        if tok.kind is TokenKind.LBRACE:
            # Anonymous block: flatten by returning an if(1)-style wrapper is
            # overkill; MiniACC treats it as an error to keep scoping simple.
            raise ParseError("naked blocks are not supported; use a loop or if", tok.loc)
        return self._parse_assign()

    def _parse_pragma_stmt(self) -> ast.Stmt | None:
        tok = self._next()
        directive = parse_directive(tok.value, tok.loc)
        if directive is None:
            return None  # non-acc pragma: skip.
        if isinstance(directive, ComputeDirective):
            if directive.combined_loop is not None:
                if not self._check(TokenKind.KEYWORD, "for"):
                    raise ParseError(
                        "combined 'acc kernels/parallel loop' must precede a for loop",
                        tok.loc,
                    )
                loop = self._parse_for(directive.combined_loop)
                return ast.RegionStmt(directive=directive, body=[loop], loc=tok.loc)
            body = self._parse_body()
            if not body:
                raise ParseError("empty acc compute region", tok.loc)
            return ast.RegionStmt(directive=directive, body=body, loc=tok.loc)
        assert isinstance(directive, LoopDirective)
        if not self._check(TokenKind.KEYWORD, "for"):
            raise ParseError("'acc loop' directive must precede a for loop", tok.loc)
        return self._parse_for(directive)

    def _parse_for(self, directive: LoopDirective | None) -> ast.ForStmt:
        kw = self._expect_kw("for")
        self._expect(TokenKind.LPAREN, "'('")
        # Optional inline loop-variable declaration: 'for (int i = ...'.
        self._accept(TokenKind.KEYWORD, "int") or self._accept(TokenKind.KEYWORD, "long")
        var = self._expect(TokenKind.IDENT, "loop variable").value
        self._expect(TokenKind.ASSIGN, "'='")
        init = self._parse_expr()
        self._expect(TokenKind.SEMI, "';'")
        cond_var = self._expect(TokenKind.IDENT, "loop variable in condition").value
        if cond_var != var:
            raise ParseError(
                f"loop condition tests {cond_var!r} but loop variable is {var!r}",
                kw.loc,
            )
        op_tok = self._next()
        if op_tok.kind not in (TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE):
            raise ParseError(f"expected relational operator, found {op_tok.value!r}", op_tok.loc)
        bound = self._parse_expr()
        self._expect(TokenKind.SEMI, "';'")
        step = self._parse_for_increment(var, kw.loc)
        self._expect(TokenKind.RPAREN, "')'")
        body = self._parse_body()
        return ast.ForStmt(
            var=var,
            init=init,
            cond_op=op_tok.value,
            bound=bound,
            step=step,
            body=body,
            directive=directive,
            loc=kw.loc,
        )

    def _parse_for_increment(self, var: str, loc: SourceLocation) -> ast.Expr:
        name = self._expect(TokenKind.IDENT, "loop variable in increment")
        if name.value != var:
            raise ParseError(
                f"loop increment updates {name.value!r} but loop variable is {var!r}", loc
            )
        if self._accept(TokenKind.PLUS_PLUS):
            return ast.IntLit(1, loc=loc)
        if self._accept(TokenKind.MINUS_MINUS):
            return ast.IntLit(-1, loc=loc)
        if self._accept(TokenKind.PLUS_ASSIGN):
            return self._parse_expr()
        if self._accept(TokenKind.MINUS_ASSIGN):
            return ast.Unary("-", self._parse_expr(), loc=loc)
        if self._accept(TokenKind.ASSIGN):
            # 'i = i + c' / 'i = i - c'
            base = self._expect(TokenKind.IDENT, "loop variable")
            if base.value != var:
                raise ParseError("loop increment must update the loop variable", loc)
            if self._accept(TokenKind.PLUS):
                return self._parse_expr()
            if self._accept(TokenKind.MINUS):
                return ast.Unary("-", self._parse_expr(), loc=loc)
            raise ParseError("unsupported loop increment form", loc)
        raise ParseError("unsupported loop increment form", loc)

    def _parse_if(self) -> ast.IfStmt:
        kw = self._expect_kw("if")
        self._expect(TokenKind.LPAREN, "'('")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "')'")
        then_body = self._parse_body()
        else_body: list[ast.Stmt] = []
        if self._accept(TokenKind.KEYWORD, "else"):
            if self._check(TokenKind.KEYWORD, "if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body()
        return ast.IfStmt(cond=cond, then_body=then_body, else_body=else_body, loc=kw.loc)

    def _parse_decl(self) -> ast.Stmt:
        loc = self._peek().loc
        is_const = bool(self._accept(TokenKind.KEYWORD, "const"))
        type_tok = self._next()
        if type_tok.kind is not TokenKind.KEYWORD or type_tok.value not in _TYPE_NAMES:
            raise ParseError(f"expected type name, found {type_tok.value!r}", type_tok.loc)
        decls: list[ast.DeclStmt] = []
        while True:
            name = self._expect(TokenKind.IDENT, "variable name").value
            init: ast.Expr | None = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_expr()
            decls.append(
                ast.DeclStmt(
                    type_name=type_tok.value,
                    name=name,
                    init=init,
                    is_const=is_const,
                    loc=loc,
                )
            )
            if self._accept(TokenKind.SEMI):
                break
            self._expect(TokenKind.COMMA, "',' or ';'")
        if len(decls) == 1:
            return decls[0]
        # Multi-declarator statement: wrap in an if-free sequence by chaining
        # through a synthetic container understood by the IR builder.
        return _DeclGroup(decls, loc)

    def _parse_assign(self) -> ast.Stmt:
        loc = self._peek().loc
        target = self._parse_postfix()
        if not isinstance(target, (ast.Name, ast.Index)):
            raise ParseError("assignment target must be a variable or array element", loc)
        tok = self._next()
        if tok.kind is TokenKind.PLUS_PLUS:
            self._expect(TokenKind.SEMI, "';'")
            return ast.AssignStmt(target=target, value=ast.IntLit(1, loc=loc), op="+", loc=loc)
        if tok.kind is TokenKind.MINUS_MINUS:
            self._expect(TokenKind.SEMI, "';'")
            return ast.AssignStmt(target=target, value=ast.IntLit(1, loc=loc), op="-", loc=loc)
        if tok.kind not in _ASSIGN_OPS:
            raise ParseError(f"expected assignment operator, found {tok.value!r}", tok.loc)
        value = self._parse_expr()
        self._expect(TokenKind.SEMI, "';'")
        return ast.AssignStmt(target=target, value=value, op=_ASSIGN_OPS[tok.kind], loc=loc)

    # -- expressions -----------------------------------------------------------
    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_or()
        if self._accept(TokenKind.QUESTION):
            then = self._parse_expr()
            self._expect(TokenKind.COLON, "':'")
            otherwise = self._parse_ternary()
            return ast.Ternary(cond, then, otherwise)
        return cond

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._check(TokenKind.OR_OR):
            tok = self._next()
            left = ast.Binary("||", left, self._parse_and(), loc=tok.loc)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._check(TokenKind.AND_AND):
            tok = self._next()
            left = ast.Binary("&&", left, self._parse_equality(), loc=tok.loc)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._peek().kind in (TokenKind.EQ, TokenKind.NE):
            tok = self._next()
            left = ast.Binary(tok.value, left, self._parse_relational(), loc=tok.loc)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in (TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE):
            tok = self._next()
            left = ast.Binary(tok.value, left, self._parse_additive(), loc=tok.loc)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            tok = self._next()
            left = ast.Binary(tok.value, left, self._parse_multiplicative(), loc=tok.loc)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT):
            tok = self._next()
            left = ast.Binary(tok.value, left, self._parse_unary(), loc=tok.loc)
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.MINUS:
            self._next()
            return ast.Unary("-", self._parse_unary(), loc=tok.loc)
        if tok.kind is TokenKind.PLUS:
            self._next()
            return self._parse_unary()
        if tok.kind is TokenKind.NOT:
            self._next()
            return ast.Unary("!", self._parse_unary(), loc=tok.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        indices: list[ast.Expr] = []
        loc = self._peek().loc
        while self._accept(TokenKind.LBRACKET):
            indices.append(self._parse_expr())
            self._expect(TokenKind.RBRACKET, "']'")
        if indices:
            return ast.Index(base=expr, indices=tuple(indices), loc=loc)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind is TokenKind.INT_LIT:
            return ast.IntLit(int(tok.value.rstrip("L")), loc=tok.loc)
        if tok.kind is TokenKind.FLOAT_LIT:
            text = tok.value
            is_single = text.endswith("f")
            return ast.FloatLit(float(text.rstrip("f")), is_single=is_single, loc=tok.loc)
        if tok.kind is TokenKind.IDENT:
            if tok.value in INTRINSICS and self._check(TokenKind.LPAREN):
                self._next()
                args: list[ast.Expr] = []
                if not self._accept(TokenKind.RPAREN):
                    while True:
                        args.append(self._parse_expr())
                        if self._accept(TokenKind.RPAREN):
                            break
                        self._expect(TokenKind.COMMA, "','")
                return ast.CallExpr(func=tok.value, args=tuple(args), loc=tok.loc)
            return ast.Name(tok.value, loc=tok.loc)
        if tok.kind is TokenKind.LPAREN:
            # Parenthesised expression or a C-style cast '(double)expr'.
            if (
                self._peek().kind is TokenKind.KEYWORD
                and self._peek().value in _TYPE_NAMES
                and self._peek(1).kind is TokenKind.RPAREN
            ):
                type_tok = self._next()
                self._next()  # ')'
                operand = self._parse_unary()
                return ast.CallExpr(func=f"cast_{type_tok.value}", args=(operand,), loc=tok.loc)
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return expr
        raise ParseError(f"unexpected token {tok.value!r} in expression", tok.loc)


class _DeclGroup(ast.Stmt):
    """Internal: a multi-declarator statement (``double a, b, c;``).

    Flattened into individual :class:`DeclStmt` by :func:`_flatten_decls`
    before the program is returned, so external consumers never see it.
    """

    def __init__(self, decls: list[ast.DeclStmt], loc: SourceLocation):
        self.decls = decls
        self.loc = loc


def _flatten_decls(stmts: list[ast.Stmt]) -> list[ast.Stmt]:
    out: list[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, _DeclGroup):
            out.extend(stmt.decls)
            continue
        if isinstance(stmt, ast.ForStmt):
            stmt.body = _flatten_decls(stmt.body)
        elif isinstance(stmt, ast.IfStmt):
            stmt.then_body = _flatten_decls(stmt.then_body)
            stmt.else_body = _flatten_decls(stmt.else_body)
        elif isinstance(stmt, ast.RegionStmt):
            stmt.body = _flatten_decls(stmt.body)
        out.append(stmt)
    return out


def parse_program(source: str, filename: str = "<string>") -> ast.Program:
    """Parse MiniACC ``source`` into a :class:`Program`."""
    with span("parse", filename=filename, bytes=len(source)) as sp:
        with span("lex", filename=filename):
            tokens = tokenize(source, filename)
        program = Parser(tokens).parse_program()
        for kernel in program.kernels:
            kernel.body = _flatten_decls(kernel.body)
        sp.set(kernels=len(program.kernels))
    return program
