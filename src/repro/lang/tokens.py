"""Token definitions for the MiniACC lexer.

MiniACC is the small C-like kernel language this reproduction uses in place
of the paper's C/Fortran front ends.  The token set covers everything the
SPEC/NAS-style benchmark kernels need: numeric literals, identifiers, the
usual C operator zoo, and a dedicated ``PRAGMA`` token whose value is the
raw directive text (parsed separately by :mod:`repro.lang.directives`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`repro.lang.lexer.Lexer`."""

    IDENT = "ident"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    KEYWORD = "keyword"
    PRAGMA = "pragma"

    # Punctuation / operators.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    COLON = ":"
    QUESTION = "?"

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND_AND = "&&"
    OR_OR = "||"
    NOT = "!"
    AMP = "&"

    EOF = "<eof>"


#: Reserved words.  ``kernel`` introduces a device-visible function (our
#: stand-in for a translation unit handed to the OpenACC compiler).
KEYWORDS = frozenset(
    {
        "kernel",
        "void",
        "float",
        "double",
        "int",
        "long",
        "const",
        "restrict",
        "for",
        "if",
        "else",
        "return",
    }
)

#: Multi-character operators, longest first so maximal munch works.
MULTI_CHAR_OPS: tuple[tuple[str, TokenKind], ...] = (
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
)

SINGLE_CHAR_OPS: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ":": TokenKind.COLON,
    "?": TokenKind.QUESTION,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
    "&": TokenKind.AMP,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexeme with its source location.

    ``value`` holds the identifier/keyword spelling, the literal text for
    numbers, or the raw directive body for :attr:`TokenKind.PRAGMA`.
    """

    kind: TokenKind
    value: str
    loc: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.name}, {self.value!r}, {self.loc})"
