"""Open-loop load generation and SLO reporting for the serving tier.

The point of an *open-loop* generator is that arrivals follow a schedule
fixed **before** the run — a Poisson process or a fixed-rate pulse at
``rate_rps`` — and a slow server does not slow the schedule down.  The
classic alternative (send, wait, send again — a closed loop) suffers
*coordinated omission*: every stall in the server also pauses the load,
so exactly the latencies that matter never get measured.  Here:

* the full arrival schedule (time offset + concrete request) is built up
  front from a seeded RNG — deterministic per ``(profile, registry)``;
* each request's latency is measured from its **scheduled** arrival
  time, not from the moment the sender managed to write it — if the
  sender falls behind, the backlog is charged to the requests that
  suffered it;
* latencies land in :class:`~repro.obs.hist.LogHistogram` (per op and
  overall), so the report's p50/p99/p999 are quantile-exact.

Workloads mix ``compile`` / ``run`` / ``tune`` ops over the benchmark
suite (:mod:`repro.bench`) at test scale.  Targets are either a live
in-process :class:`~repro.serve.broker.Broker` (anything with a
``submit(request) -> Future`` method works) or a unix-socket daemon
(``repro serve --socket``) via :mod:`repro.serve.client`.

``repro loadgen`` drives this from the CLI and writes the SLO report
JSON; ``benchmarks/regress.py`` gates the ``slo`` ledger row on it.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from random import Random

from .obs.hist import LogHistogram

#: Ops a profile mix may name, with their default weights.
DEFAULT_MIX = {"compile": 0.5, "run": 0.5}


@dataclass(frozen=True, slots=True)
class LoadProfile:
    """One load experiment: arrival process, rate, mix, duration."""

    #: Offered arrival rate (requests per second).
    rate_rps: float = 50.0
    #: Experiment length in seconds — ``floor(rate·duration)`` arrivals.
    duration_s: float = 2.0
    #: ``"poisson"`` (exponential gaps) or ``"fixed"`` (uniform gaps).
    arrival: str = "poisson"
    #: Op mix, weights normalised internally (``compile``/``run``/``tune``).
    mix: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Benchmark names to draw from (``None`` → every suite benchmark
    #: usable for the op; see :func:`workload_specs`).
    benchmarks: tuple[str, ...] | None = None
    #: Per-request deadline passed through to the broker (``None`` →
    #: broker default).
    deadline_ms: float | None = None
    #: Compile every distinct source once before the clock starts, so
    #: the measured run exercises the warm path (the SLO of a serving
    #: tier is a warm-cache property; cold compiles are a separate row).
    prewarm: bool = True
    #: Tune budget when the mix includes ``tune`` (kept tiny: tuning is
    #: minutes at default budgets).
    tune_budget: int = 2
    #: ``tenant`` protocol field stamped on every request (``None`` →
    #: anonymous) — lets a run exercise the cluster router's per-tenant
    #: admission quotas.
    tenant: str | None = None
    #: Schedule RNG seed — same seed, same arrivals, same request bodies.
    seed: int = 0

    def as_dict(self) -> dict:
        return {
            "rate_rps": self.rate_rps,
            "duration_s": self.duration_s,
            "arrival": self.arrival,
            "mix": dict(self.mix),
            "benchmarks": list(self.benchmarks) if self.benchmarks else None,
            "deadline_ms": self.deadline_ms,
            "prewarm": self.prewarm,
            "tune_budget": self.tune_budget,
            "tenant": self.tenant,
            "seed": self.seed,
        }


def quick_profile(**overrides) -> LoadProfile:
    """The CI smoke profile: short, fixed-rate, compile/run mix over two
    small benchmarks — finishes in seconds on a cold container."""
    defaults = dict(
        rate_rps=40.0,
        duration_s=1.5,
        arrival="fixed",
        benchmarks=("303.ostencil", "355.seismic"),
        seed=0,
    )
    defaults.update(overrides)
    return LoadProfile(**defaults)


# -- workload construction ---------------------------------------------------


def workload_specs(profile: LoadProfile):
    """The benchmark specs this profile draws requests from.

    ``run``/``tune`` requests execute the kernel functionally with
    generic random arrays, so specs that need hand-built arguments
    (index arrays) are compile-only; pointer-parameter specs are fine —
    their ``__len_*`` sizes are derived from the spec's length
    expressions in :func:`_request_for`.
    """
    from .bench import NAS, SPEC, load_all

    load_all()
    specs = list(SPEC.all()) + list(NAS.all())
    if profile.benchmarks is not None:
        wanted = set(profile.benchmarks)
        specs = [s for s in specs if s.name in wanted]
        missing = wanted - {s.name for s in specs}
        if missing:
            raise ValueError(f"unknown benchmarks: {sorted(missing)}")
    if not specs:
        raise ValueError("profile selects no benchmarks")
    runnable = [s for s in specs if s.make_test_args is None]
    return specs, runnable


def _request_for(op: str, spec, profile: LoadProfile) -> dict:
    env = {k: int(v) for k, v in spec.interpreter_args().items()}
    if op in ("run", "tune") and spec.pointer_lens:
        sizes = {k: int(v) for k, v in spec.interpreter_args().items()
                 if v == int(v)}
        env.update(
            {f"__len_{k}": v for k, v in spec.pointer_sizes(sizes).items()}
        )
    request: dict = {"op": op, "source": spec.source, "env": env}
    if profile.deadline_ms is not None:
        request["deadline_ms"] = profile.deadline_ms
    if op == "tune":
        request["budget"] = profile.tune_budget
        request["strategy"] = "beam"
    if profile.tenant is not None:
        request["tenant"] = profile.tenant
    request["_benchmark"] = spec.qualified_name  # stripped before sending
    return request


def build_schedule(profile: LoadProfile) -> list[tuple[float, dict]]:
    """The deterministic arrival schedule: ``(offset_s, request)`` pairs,
    sorted by offset.  Everything random — gaps, op choice, benchmark
    choice — comes from one ``Random(profile.seed)``."""
    if profile.arrival not in ("poisson", "fixed"):
        raise ValueError(
            f"arrival must be 'poisson' or 'fixed', got {profile.arrival!r}"
        )
    if profile.rate_rps <= 0 or profile.duration_s <= 0:
        raise ValueError("rate_rps and duration_s must be positive")
    ops = sorted(profile.mix)
    weights = [profile.mix[op] for op in ops]
    if not ops or min(weights) < 0 or sum(weights) <= 0:
        raise ValueError("mix must contain non-negative weights summing > 0")
    specs, runnable = workload_specs(profile)
    if not runnable and any(op != "compile" for op in ops):
        raise ValueError(
            "mix includes run/tune but no selected benchmark is "
            "functionally runnable (they all need hand-built arguments)"
        )
    rng = Random(profile.seed)
    n = int(profile.rate_rps * profile.duration_s)
    schedule: list[tuple[float, dict]] = []
    t = 0.0
    for i in range(n):
        if profile.arrival == "fixed":
            offset = i / profile.rate_rps
        else:
            t += rng.expovariate(profile.rate_rps)
            offset = t
        op = rng.choices(ops, weights=weights)[0]
        spec = rng.choice(specs if op == "compile" else runnable)
        request = _request_for(op, spec, profile)
        request["id"] = i
        schedule.append((offset, request))
    return schedule


# -- recording ---------------------------------------------------------------


class _Recorder:
    """Thread-safe accumulation of one run's outcomes."""

    def __init__(self, ops):
        self.overall = LogHistogram("loadgen.latency_ms")
        self.per_op = {op: LogHistogram(f"loadgen.latency_ms.{op}") for op in ops}
        self.errors_by_code: dict[str, int] = {}
        self.completed = 0
        self.ok = 0
        self.degraded = 0
        self.warm_hits = 0
        self.compile_ok = 0
        #: Shard index → answered requests, when the target annotates
        #: responses with ``shard`` (the cluster router does; a plain
        #: broker leaves the map empty).
        self.per_shard: dict[int, int] = {}
        self._lock = threading.Lock()

    def record(self, op: str, latency_ms: float, response: dict) -> None:
        with self._lock:
            self.completed += 1
            self.overall.observe(latency_ms)
            hist = self.per_op.get(op)
            if hist is not None:
                hist.observe(latency_ms)
            shard = response.get("shard")
            if isinstance(shard, int):
                self.per_shard[shard] = self.per_shard.get(shard, 0) + 1
            if response.get("ok"):
                self.ok += 1
                result = response.get("result") or {}
                executor = result.get("executor") or {}
                if executor.get("degraded") or executor.get("fallback_reason"):
                    self.degraded += 1
                if op == "compile":
                    self.compile_ok += 1
                    if result.get("cached") in ("memory", "disk"):
                        self.warm_hits += 1
            else:
                code = (response.get("error") or {}).get("code", "unknown")
                self.errors_by_code[code] = self.errors_by_code.get(code, 0) + 1


# -- execution ---------------------------------------------------------------


def _prewarm(send, schedule) -> int:
    """Compile every distinct source once, synchronously; returns the
    number of distinct sources warmed."""
    seen: dict[str, dict] = {}
    for _, request in schedule:
        src = request["source"]
        if src not in seen:
            # Strip the run-only ``__len_*`` pointer sizes: the compile
            # cache key includes the env, and compile requests carry the
            # bare problem sizes.
            env = {
                k: v
                for k, v in request["env"].items()
                if not k.startswith("__len_")
            }
            seen[src] = {
                "id": f"prewarm-{len(seen)}",
                "op": "compile",
                "source": src,
                "env": env,
            }
            if "tenant" in request:
                seen[src]["tenant"] = request["tenant"]
    for request in seen.values():
        send(request)
    return len(seen)


def run_load(
    profile: LoadProfile,
    *,
    broker=None,
    socket_path: str | None = None,
    on_progress=None,
) -> dict:
    """Run ``profile`` against a target and return the SLO report dict.

    Exactly one of ``broker`` (an in-process
    :class:`~repro.serve.broker.Broker`, or any object with a
    compatible ``submit``) and ``socket_path`` (a ``repro serve
    --socket`` daemon) must be given.
    """
    if (broker is None) == (socket_path is None):
        raise ValueError("pass exactly one of broker= or socket_path=")
    schedule = build_schedule(profile)
    recorder = _Recorder(sorted(profile.mix))

    if broker is not None:
        report = _run_inprocess(profile, schedule, recorder, broker, on_progress)
    else:
        report = _run_socket(profile, schedule, recorder, socket_path, on_progress)
    return report


def _strip(request: dict) -> tuple[str, dict]:
    """(op, wire-ready request) — drops generator-internal fields."""
    wire = {k: v for k, v in request.items() if not k.startswith("_")}
    return request["op"], wire


def _shard_balance(per_shard: dict[int, int]) -> dict | None:
    """The per-shard balance stanza: fractions plus a single balance
    coefficient — the busiest shard's load relative to the uniform
    ``1/N`` share (1.0 = perfectly balanced, 2.0 = one shard carries
    double its share).  ``None`` when the target reported no shards."""
    if not per_shard:
        return None
    total = sum(per_shard.values())
    n = len(per_shard)
    counts = list(per_shard.values())
    return {
        "shards_seen": n,
        "fractions": {
            str(k): round(v / total, 4) for k, v in sorted(per_shard.items())
        },
        "balance_coefficient": round(max(counts) * n / total, 4),
        "max_abs_deviation": round(
            max(abs(v / total - 1.0 / n) for v in counts), 4
        ),
    }


def _report(
    profile: LoadProfile,
    schedule,
    recorder: _Recorder,
    wall_s: float,
    prewarmed: int,
) -> dict:
    scheduled = len(schedule)
    errors = sum(recorder.errors_by_code.values())
    queue_full = recorder.errors_by_code.get("queue_full", 0)
    report = {
        "profile": profile.as_dict(),
        "requests": {
            "scheduled": scheduled,
            "completed": recorder.completed,
            "ok": recorder.ok,
            "errors": errors,
        },
        "prewarmed_sources": prewarmed,
        "wall_s": round(wall_s, 4),
        "offered_rps": round(scheduled / profile.duration_s, 3),
        "throughput_rps": round(recorder.completed / wall_s, 3) if wall_s else 0.0,
        "latency_ms": {
            "overall": recorder.overall.as_dict(),
            "per_op": {
                op: hist.as_dict()
                for op, hist in recorder.per_op.items()
                if hist.count
            },
        },
        "errors_by_code": dict(sorted(recorder.errors_by_code.items())),
        "error_rate": round(errors / scheduled, 4) if scheduled else 0.0,
        "queue_full_rate": round(queue_full / scheduled, 4) if scheduled else 0.0,
        "degradation_rate": (
            round(recorder.degraded / recorder.completed, 4)
            if recorder.completed
            else 0.0
        ),
        #: Fraction of ok compile responses answered from a warm tier
        #: (memory or disk); ``None`` when the mix sent no compiles.
        "warm_hit_rate": (
            round(recorder.warm_hits / recorder.compile_ok, 4)
            if recorder.compile_ok
            else None
        ),
        #: Answered-request counts by shard index, and the balance
        #: stanza derived from them — populated when the target is a
        #: cluster router (responses carry ``shard``), absent counts /
        #: ``None`` against a single broker.
        "per_shard": {
            str(k): v for k, v in sorted(recorder.per_shard.items())
        },
        "shard_balance": _shard_balance(recorder.per_shard),
        "arrival": {
            "kind": profile.arrival,
            "latency_basis": "scheduled_arrival",
            "coordinated_omission_safe": True,
        },
    }
    return report


def _run_inprocess(profile, schedule, recorder, broker, on_progress) -> dict:
    prewarmed = 0
    if profile.prewarm:
        prewarmed = _prewarm(
            lambda request: broker.submit(request).result(), schedule
        )
    done = threading.Event()
    outstanding = [len(schedule)]
    lock = threading.Lock()
    t0 = time.monotonic()

    def finish(op: str, offset: float, future) -> None:
        latency_ms = ((time.monotonic() - t0) - offset) * 1000.0
        recorder.record(op, latency_ms, future.result())
        with lock:
            outstanding[0] -= 1
            remaining = outstanding[0]
        if on_progress is not None:
            on_progress(len(schedule) - remaining, len(schedule))
        if remaining == 0:
            done.set()

    for offset, request in schedule:
        op, wire = _strip(request)
        delay = offset - (time.monotonic() - t0)
        if delay > 0:
            time.sleep(delay)
        future = broker.submit(wire)
        future.add_done_callback(
            lambda f, op=op, offset=offset: finish(op, offset, f)
        )
    done.wait()
    return _report(profile, schedule, recorder, time.monotonic() - t0, prewarmed)


def _run_socket(profile, schedule, recorder, socket_path, on_progress) -> dict:
    from .serve.client import SocketClient

    client = SocketClient(socket_path, timeout=None)
    try:
        prewarmed = 0
        if profile.prewarm:
            prewarmed = _prewarm(client.request, schedule)
        by_id = {
            request["id"]: (request["op"], offset)
            for offset, request in schedule
        }
        t0 = time.monotonic()
        failure: list[BaseException] = []

        def reader() -> None:
            received = 0
            try:
                while received < len(schedule):
                    response = client.recv()
                    meta = by_id.get(response.get("id"))
                    if meta is None:
                        continue  # not ours (e.g. stray watch frame)
                    op, offset = meta
                    latency_ms = ((time.monotonic() - t0) - offset) * 1000.0
                    recorder.record(op, latency_ms, response)
                    received += 1
                    if on_progress is not None:
                        on_progress(received, len(schedule))
            except BaseException as exc:  # surfaced to the caller below
                failure.append(exc)

        thread = threading.Thread(target=reader, name="loadgen-reader")
        thread.start()
        for offset, request in schedule:
            _, wire = _strip(request)
            delay = offset - (time.monotonic() - t0)
            if delay > 0:
                time.sleep(delay)
            client.send(wire)
        thread.join()
        if failure:
            raise failure[0]
        return _report(
            profile, schedule, recorder, time.monotonic() - t0, prewarmed
        )
    finally:
        client.close()


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
