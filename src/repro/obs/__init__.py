"""``repro.obs`` — the unified observability layer.

Four pieces, threaded through every layer of the toolchain:

* :mod:`~repro.obs.tracer` — span-based tracing (lex → parse → passes →
  feedback iterations → cache lookups → vector planning → execution);
* :mod:`~repro.obs.chrome` — Chrome ``trace_event`` export of those
  spans, loadable in Perfetto / ``chrome://tracing``;
* :mod:`~repro.obs.metrics` — the counter/gauge/histogram registry
  backing ``SessionStats`` and ``CompileCache``;
* :mod:`~repro.obs.profiler` — per-kernel execution profiles (memory
  traffic by space and coalescing class, occupancy, register pressure,
  vector-planner decisions).

See ``docs/observability.md`` for the span model and file formats.
"""

from .chrome import chrome_trace, write_chrome_trace
from .metrics import (
    COUNT_BUCKETS,
    MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import NULL_SPAN, Span, Tracer, get_tracer, set_tracer, span, traced

#: Profiler names are loaded lazily: the profiler imports the analysis and
#: codegen layers, which themselves import ``repro.obs.tracer`` — an eager
#: import here would close that cycle during package initialisation.
_PROFILER_NAMES = {
    "KernelProfile",
    "LoopDecision",
    "ProgramProfile",
    "TrafficEntry",
    "profile_program",
    "profile_source",
}


def __getattr__(name: str):
    if name in _PROFILER_NAMES:
        from . import profiler

        return getattr(profiler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "COUNT_BUCKETS",
    "MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "KernelProfile",
    "LoopDecision",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProgramProfile",
    "Span",
    "Tracer",
    "TrafficEntry",
    "chrome_trace",
    "get_tracer",
    "profile_program",
    "profile_source",
    "set_tracer",
    "span",
    "traced",
    "write_chrome_trace",
]
