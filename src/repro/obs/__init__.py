"""``repro.obs`` — the unified observability layer.

Six pieces, threaded through every layer of the toolchain:

* :mod:`~repro.obs.tracer` — span-based tracing (lex → parse → passes →
  feedback iterations → cache lookups → vector planning → execution),
  plus request-scoped trace contexts (``trace_scope`` / ``trace_id``
  propagation for the serving tier);
* :mod:`~repro.obs.chrome` — Chrome ``trace_event`` export of those
  spans, loadable in Perfetto / ``chrome://tracing``;
* :mod:`~repro.obs.metrics` — the counter/gauge/histogram registry
  backing ``SessionStats`` and ``CompileCache``;
* :mod:`~repro.obs.hist` — log-spaced HDR-style histograms with exact
  p50/p99/p999 extraction (the SLO harness's latency type);
* :mod:`~repro.obs.flight` — the flight recorder retaining the span
  trees of the N slowest + all errored serve requests;
* :mod:`~repro.obs.profiler` — per-kernel execution profiles (memory
  traffic by space and coalescing class, occupancy, register pressure,
  vector-planner decisions).

See ``docs/observability.md`` for the span model and file formats.
"""

from .chrome import chrome_trace, write_chrome_trace
from .flight import FlightRecorder, RequestRecord
from .hist import LogHistogram
from .metrics import (
    COUNT_BUCKETS,
    MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    current_trace_id,
    get_tracer,
    request_collector,
    set_tracer,
    span,
    trace_scope,
    traced,
)

#: Profiler names are loaded lazily: the profiler imports the analysis and
#: codegen layers, which themselves import ``repro.obs.tracer`` — an eager
#: import here would close that cycle during package initialisation.
_PROFILER_NAMES = {
    "KernelProfile",
    "LoopDecision",
    "ProgramProfile",
    "TrafficEntry",
    "profile_program",
    "profile_source",
}


def __getattr__(name: str):
    if name in _PROFILER_NAMES:
        from . import profiler

        return getattr(profiler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "COUNT_BUCKETS",
    "MS_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KernelProfile",
    "LogHistogram",
    "LoopDecision",
    "MetricsRegistry",
    "NULL_SPAN",
    "ProgramProfile",
    "RequestRecord",
    "Span",
    "Tracer",
    "TrafficEntry",
    "chrome_trace",
    "current_trace_id",
    "get_tracer",
    "profile_program",
    "profile_source",
    "request_collector",
    "set_tracer",
    "span",
    "trace_scope",
    "traced",
    "write_chrome_trace",
]
