"""Chrome ``trace_event`` export for :class:`~repro.obs.tracer.Tracer`.

Emits the JSON Object Format of the Trace Event specification: a
``traceEvents`` list of *complete* events (``ph: "X"``) plus ``M``
metadata events naming the process and threads.  The output loads in
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing`` — nesting is
reconstructed from timestamp containment per thread, so a SAFARA run
renders as a ``compile`` bar containing ``pass:safara`` containing one
``ptxas`` bar per feedback iteration.

Timestamps and durations are microseconds (floats allowed by the spec);
``pid`` is fixed at 1 — there is only ever one process in a trace, and a
stable value keeps golden-schema tests and diffs deterministic.
"""

from __future__ import annotations

import json

from .tracer import Tracer

#: Fixed process id for every exported event (single-process traces).
PID = 1


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_events(tracer: Tracer, process_name: str = "repro") -> list[dict]:
    """The ``traceEvents`` list: metadata first, then complete events in
    (start, -duration) order so parents precede their children."""
    spans = tracer.spans
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in sorted({s.tid for s in spans}):
        label = "main" if tid == 0 else f"worker-{tid}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "ts": 0,
                "args": {"name": label},
            }
        )
    for s in sorted(spans, key=lambda s: (s.ts_us, -s.dur_us)):
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": round(s.ts_us, 3),
                "dur": round(s.dur_us, 3),
                "pid": PID,
                "tid": s.tid,
                "args": {k: _json_safe(v) for k, v in s.args.items()},
            }
        )
    return events


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> dict:
    """The full JSON-object-format document."""
    return {
        "traceEvents": chrome_events(tracer, process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(tracer.spans),
            "dropped": tracer.dropped,
        },
    }


def write_chrome_trace(
    path: str, tracer: Tracer, process_name: str = "repro"
) -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, process_name), f, indent=1)
        f.write("\n")
