"""Flight recorder: the traces of the requests worth explaining.

A serving tier cannot afford to export every request's span tree — but
the requests anyone ever asks about are the *slowest* ones and the ones
that *failed*.  :class:`FlightRecorder` is the bounded in-memory ring
the broker feeds one :class:`RequestRecord` per finished request:

* the **N slowest** requests are retained (a min-heap on duration, so a
  new record only displaces a faster one);
* **all errored** requests are retained up to their own bound (a FIFO
  ring — the newest failures win);
* each record carries the request's full span list (already bounded by
  the per-request collector's ``max_spans``), its ``trace_id``, and any
  degradation events attributed to it.

Memory is bounded by construction: ``max_slow + max_errors`` records of
at most ``max_spans`` spans each, regardless of traffic.

``snapshot()`` is the ``trace`` serve op's payload; :func:`to_chrome`
renders one record as a Perfetto-loadable Chrome ``trace_event``
document (``repro serve-trace --perfetto``), with the span tree
reconstructed the same way the viewer does — timestamp containment per
thread track.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field

from .tracer import Span


def span_dict(span: Span) -> dict:
    """One recorded span as JSON-ready data (argument values stringified
    when not JSON-safe, matching the Chrome exporter)."""
    return {
        "name": span.name,
        "cat": span.cat,
        "ts_us": round(span.ts_us, 3),
        "dur_us": round(span.dur_us, 3),
        "tid": span.tid,
        "args": {
            k: v if isinstance(v, (str, int, float, bool)) or v is None else str(v)
            for k, v in span.args.items()
        },
    }


@dataclass(slots=True)
class RequestRecord:
    """Everything the flight recorder keeps about one finished request."""

    trace_id: str
    op: str
    ok: bool
    duration_ms: float
    error_code: str | None = None
    #: Flat span list (dicts from :func:`span_dict`); the tree is implied
    #: by timestamp containment per tid, like a Chrome trace.
    spans: list[dict] = field(default_factory=list)
    #: Degradation events attributed to this request (reason dicts).
    degradations: list[dict] = field(default_factory=list)
    #: Spans the per-request collector dropped at its memory bound.
    dropped_spans: int = 0

    def span_names(self) -> list[str]:
        return [s["name"] for s in self.spans]

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "ok": self.ok,
            "duration_ms": round(self.duration_ms, 4),
            "error_code": self.error_code,
            "spans": list(self.spans),
            "span_tree": span_tree(self.spans),
            "degradations": list(self.degradations),
            "dropped_spans": self.dropped_spans,
        }


def span_tree(spans: list[dict]) -> list[dict]:
    """Nest a flat span list by timestamp containment per tid.

    Returns the roots; each node is ``{name, ts_us, dur_us, args,
    children}``.  This is exactly the reconstruction Perfetto performs on
    complete (``ph: "X"``) events, so what the ``trace`` op shows as a
    tree is what the viewer will draw.
    """
    roots: list[dict] = []
    stacks: dict[int, list[dict]] = {}
    ordered = sorted(spans, key=lambda s: (s["tid"], s["ts_us"], -s["dur_us"]))
    for s in ordered:
        node = {
            "name": s["name"],
            "ts_us": s["ts_us"],
            "dur_us": s["dur_us"],
            "args": s.get("args", {}),
            "children": [],
        }
        stack = stacks.setdefault(s["tid"], [])
        end = s["ts_us"] + s["dur_us"]
        while stack and end > stack[-1]["ts_us"] + stack[-1]["dur_us"]:
            stack.pop()
        if stack:
            stack[-1]["children"].append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def to_chrome(record: RequestRecord, process_name: str = "repro-serve") -> dict:
    """One request's spans as a Chrome ``trace_event`` JSON document."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "ts": 0,
            "args": {"name": f"{process_name} {record.trace_id}"},
        }
    ]
    for tid in sorted({s["tid"] for s in record.spans}):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "ts": 0,
                "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
            }
        )
    for s in sorted(record.spans, key=lambda s: (s["ts_us"], -s["dur_us"])):
        events.append(
            {
                "name": s["name"],
                "cat": s.get("cat", "repro"),
                "ph": "X",
                "ts": s["ts_us"],
                "dur": s["dur_us"],
                "pid": 1,
                "tid": s["tid"],
                "args": s.get("args", {}),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.flight",
            "trace_id": record.trace_id,
            "op": record.op,
            "ok": record.ok,
            "duration_ms": round(record.duration_ms, 4),
        },
    }


class FlightRecorder:
    """Bounded retention of the N slowest + all (recent) errored requests."""

    def __init__(self, *, max_slow: int = 32, max_errors: int = 64):
        if max_slow < 0 or max_errors < 0:
            raise ValueError("retention bounds must be >= 0")
        self.max_slow = max_slow
        self.max_errors = max_errors
        #: Min-heap of (duration_ms, seq, record): the root is the
        #: fastest retained record, displaced first.
        self._slow: list[tuple[float, int, RequestRecord]] = []
        self._errors: list[RequestRecord] = []
        self._seq = itertools.count()
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, record: RequestRecord) -> None:
        with self._lock:
            self._recorded += 1
            if not record.ok and self.max_errors:
                self._errors.append(record)
                if len(self._errors) > self.max_errors:
                    del self._errors[0]
            if self.max_slow:
                item = (record.duration_ms, next(self._seq), record)
                if len(self._slow) < self.max_slow:
                    heapq.heappush(self._slow, item)
                elif record.duration_ms > self._slow[0][0]:
                    heapq.heapreplace(self._slow, item)

    # -- reading -----------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total requests ever offered to the recorder."""
        with self._lock:
            return self._recorded

    def slowest(self) -> list[RequestRecord]:
        """Retained slow records, slowest first."""
        with self._lock:
            return [
                r for _, _, r in sorted(self._slow, key=lambda t: (-t[0], t[1]))
            ]

    def errors(self) -> list[RequestRecord]:
        """Retained errored records, newest first."""
        with self._lock:
            return list(reversed(self._errors))

    def get(self, trace_id: str) -> RequestRecord | None:
        """The retained record with this ``trace_id``, if any (errored
        records win over their slow-ring duplicates)."""
        with self._lock:
            for r in reversed(self._errors):
                if r.trace_id == trace_id:
                    return r
            for _, _, r in self._slow:
                if r.trace_id == trace_id:
                    return r
        return None

    def clear(self) -> None:
        with self._lock:
            self._slow.clear()
            self._errors.clear()
            self._recorded = 0

    def snapshot(self) -> dict:
        """The ``trace`` serve op payload."""
        return {
            "recorded": self.recorded,
            "retention": {
                "max_slow": self.max_slow,
                "max_errors": self.max_errors,
            },
            "slowest": [r.as_dict() for r in self.slowest()],
            "errors": [r.as_dict() for r in self.errors()],
        }
