"""Log-spaced latency histograms with exact quantile extraction.

The fixed-boundary :class:`~repro.obs.metrics.Histogram` is built for
cross-run comparability (the regression ledger diffs cumulative bucket
counts), but its ~14 coarse buckets cannot answer "what is p999?" — a
question the SLO harness (:mod:`repro.loadgen`) and the live-telemetry
``watch`` op ask constantly.  :class:`LogHistogram` is the HDR-histogram
answer: geometric buckets spanning ``[min_value, max_value]`` with a
fixed number of linear sub-buckets per octave, so every recorded value
lands in a bucket whose width is a bounded *relative* error (2.2% at the
default 32 sub-buckets/octave) while the whole structure stays a flat
integer array — O(1) ``observe``, O(buckets) quantiles, zero allocation
per sample, bounded memory forever.

Quantiles are "exact" in the HDR sense: ``quantile(q)`` returns the
upper edge of the bucket holding the q-th ranked sample, clamped into
``[min_seen, max_seen]`` — never more than one relative-error step from
the true order statistic, and exactly ``max_seen`` at q=1.

Thread-safe: ``observe`` and the readers take a per-histogram lock (the
serving broker records latencies from every worker thread).
"""

from __future__ import annotations

import math
import threading

#: Default value range, in milliseconds: 100 ns (a cache-hit compile
#: answers in microseconds) to ~28 hours.  Values outside clamp.
DEFAULT_MIN = 1e-4
DEFAULT_MAX = 1e8

#: Linear sub-buckets per octave (power of two).  32 bounds the relative
#: bucket width at 2^(1/32) - 1 ~= 2.2%.
DEFAULT_SUB_BUCKETS = 32


class LogHistogram:
    """Bounded-relative-error histogram over a positive value range."""

    __slots__ = (
        "name", "help", "min_value", "max_value", "sub_buckets",
        "_growth", "_inv_log_growth", "_nbuckets", "counts",
        "count", "total", "min_seen", "max_seen", "_lock",
    )
    kind = "loghistogram"

    def __init__(
        self,
        name: str = "",
        *,
        min_value: float = DEFAULT_MIN,
        max_value: float = DEFAULT_MAX,
        sub_buckets: int = DEFAULT_SUB_BUCKETS,
        help: str = "",
    ):
        if not (0 < min_value < max_value):
            raise ValueError("need 0 < min_value < max_value")
        if sub_buckets < 1:
            raise ValueError("sub_buckets must be >= 1")
        self.name = name
        self.help = help
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.sub_buckets = int(sub_buckets)
        self._growth = 2.0 ** (1.0 / self.sub_buckets)
        self._inv_log_growth = self.sub_buckets / math.log(2.0)
        self._nbuckets = (
            int(math.log(self.max_value / self.min_value) * self._inv_log_growth)
            + 2
        )
        self.counts = [0] * self._nbuckets
        self.count = 0
        self.total = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        if value >= self.max_value:
            return self._nbuckets - 1
        return int(math.log(value / self.min_value) * self._inv_log_growth) + 1

    def _edge(self, index: int) -> float:
        """Upper edge of bucket ``index`` (the quantile representative)."""
        if index <= 0:
            return self.min_value
        return min(
            self.max_value, self.min_value * self._growth ** index
        )

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[self._index(value)] += 1
            self.count += 1
            self.total += value
            if value < self.min_seen:
                self.min_seen = value
            if value > self.max_seen:
                self.max_seen = value

    def zero(self) -> None:
        with self._lock:
            self.counts = [0] * self._nbuckets
            self.count = 0
            self.total = 0.0
            self.min_seen = math.inf
            self.max_seen = -math.inf

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same geometry)."""
        if (
            other.min_value != self.min_value
            or other.max_value != self.max_value
            or other.sub_buckets != self.sub_buckets
        ):
            raise ValueError("cannot merge histograms with different geometry")
        with other._lock:
            counts = list(other.counts)
            count, total = other.count, other.total
            lo, hi = other.min_seen, other.max_seen
        with self._lock:
            for i, n in enumerate(counts):
                self.counts[i] += n
            self.count += count
            self.total += total
            self.min_seen = min(self.min_seen, lo)
            self.max_seen = max(self.max_seen, hi)

    # -- reading -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` (0 < q <= 1), within one relative
        bucket width of the true order statistic; 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self.count))
            running = 0
            for index, n in enumerate(self.counts):
                running += n
                if running >= rank:
                    edge = self._edge(index)
                    return min(max(edge, self.min_seen), self.max_seen)
            return self.max_seen  # unreachable: running == count by the end

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def quantiles(self) -> dict[str, float]:
        """The standard SLO quartet, rounded for reports."""
        return {
            "p50": round(self.p50, 6),
            "p90": round(self.p90, 6),
            "p99": round(self.p99, 6),
            "p999": round(self.p999, 6),
        }

    def as_dict(self) -> dict:
        with self._lock:
            count, total = self.count, self.total
            lo = self.min_seen if count else 0.0
            hi = self.max_seen if count else 0.0
        out = {
            "type": self.kind,
            "count": count,
            "sum": round(total, 4),
            "mean": round(total / count, 4) if count else 0.0,
            "min": round(lo, 6),
            "max": round(hi, 6),
        }
        out.update(self.quantiles() if count else
                   {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0})
        return out
