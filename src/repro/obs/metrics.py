"""Metrics registry: counters, gauges and fixed-bucket histograms.

Replaces the ad-hoc integer fields that used to live on ``SessionStats``
and ``CompileCache`` with named, typed, self-describing metrics that one
registry can render as text (``repro stats``) or JSON
(``CompilerSession.metrics``).  The old attributes survive as
compatibility properties over these counters.

Conventions:

* names are dotted paths (``session.compilations``, ``cache.hits``,
  ``pipeline.pass.safara.wall_ms``) — the text renderer sorts by name so
  related metrics group visually;
* histograms use *fixed* bucket boundaries chosen at creation: cumulative
  bucket counts stay comparable across runs and machines, which is what
  the benchmark-regression ledger needs;
* registration is get-or-create and type-checked, so two subsystems
  naming the same counter share it instead of shadowing each other.

Mutation takes a small per-metric lock: ``+=`` on an attribute is
read-modify-write across bytecodes, and the serving broker hammers the
same counters from every worker thread — a monitoring layer that loses
increments under exactly the load it exists to measure is worse than
none (the loss is asserted impossible in ``tests/obs/test_concurrency``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from .hist import LogHistogram

#: Default wall-time boundaries (milliseconds): compile and pass times
#: span ~0.005ms (a warm memory-tier hit answers in microseconds — warm
#: compile p50 is ~0.016 ms) to seconds (a full SAFARA sweep).  The
#: sub-millisecond boundaries were appended below the original 0.1
#: floor; every pre-existing bucket name (``le_0.1``…) is unchanged, so
#: ledgers and ``repro stats`` consumers keep their keys.
MS_BUCKETS = (0.005, 0.01, 0.025, 0.05,
              0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
              250.0, 500.0, 1000.0, 2500.0)

#: Default count boundaries (iterations, elements, backend compiles).
COUNT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 1000, 10_000, 100_000, 1_000_000)

#: The known metric families, in render order, with their ``repro
#: stats`` section titles.  A registered name whose first dotted
#: component is not listed here renders in the ``other`` catch-all —
#: new families appear automatically rather than vanishing.
METRIC_FAMILIES = (
    ("session", "session (compiles, executions, timing)"),
    ("cache", "cache (memory / disk / function-object tiers)"),
    ("ir", "ir (expression intern table)"),
    ("pipeline", "pipeline (per-pass instrumentation)"),
    ("esat", "esat (equality saturation / extraction)"),
    ("codegen", "codegen (generated-NumPy tier)"),
    ("tune", "tune (autotuner)"),
    ("serve", "serve (broker, placement, degradations, latency)"),
    ("cluster", "cluster (router, sharding, hedging, quotas)"),
    ("loadgen", "loadgen (open-loop load generator)"),
)


class Counter:
    """Monotonic (by convention) accumulator; float-valued so wall-time
    totals can ride the same type.  ``inc`` is lossless under concurrent
    callers (per-metric lock)."""

    __slots__ = ("name", "help", "value", "_lock")
    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def zero(self) -> None:
        with self._lock:
            self.value = 0

    def as_dict(self) -> dict:
        v = self.value
        return {"type": self.kind, "value": int(v) if v == int(v) else round(v, 4)}


class Gauge:
    """A value that goes up and down (cache entry count, queue depth)."""

    __slots__ = ("name", "help", "value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float = 1) -> None:
        """Lossless relative adjustment (concurrent ``set`` races would
        drop updates; queue-depth style gauges adjust instead)."""
        with self._lock:
            self.value += amount

    def zero(self) -> None:
        self.value = 0

    def as_dict(self) -> dict:
        v = self.value
        return {"type": self.kind, "value": int(v) if v == int(v) else round(v, 4)}


class Histogram:
    """Fixed-boundary histogram with cumulative rendering.

    ``boundaries`` are upper-inclusive bucket edges; one implicit
    ``+inf`` bucket catches the rest.  ``observe`` is O(log buckets).
    """

    __slots__ = ("name", "help", "boundaries", "counts", "count", "total",
                 "_lock")
    kind = "histogram"

    def __init__(self, name: str, boundaries=MS_BUCKETS, help: str = ""):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted and non-empty")
        self.name = name
        self.help = help
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value

    def zero(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.boundaries) + 1)
            self.count = 0
            self.total = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> dict[str, int]:
        """Cumulative counts keyed ``le_<boundary>`` (+ ``le_inf``)."""
        out: dict[str, int] = {}
        running = 0
        for boundary, n in zip(self.boundaries, self.counts):
            running += n
            key = f"le_{int(boundary)}" if boundary == int(boundary) else f"le_{boundary}"
            out[key] = running
        out["le_inf"] = running + self.counts[-1]
        return out

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": round(self.total, 4),
            "mean": round(self.mean, 4),
            "buckets": self.cumulative(),
        }


class MetricsRegistry:
    """Named metrics, shared across the subsystems of one session."""

    def __init__(self):
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, **kw):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {cls.__name__}"
                    )
                return existing
            metric = cls(name, help=help, **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, boundaries=MS_BUCKETS, help: str = ""
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, boundaries=boundaries)

    def log_histogram(self, name: str, help: str = "", **kw) -> LogHistogram:
        """A log-spaced quantile histogram (:mod:`repro.obs.hist`) —
        use for latencies where p99/p999 matter (``serve.latency_ms.*``);
        the fixed-bucket :meth:`histogram` stays the ledger's type."""
        return self._get_or_create(LogHistogram, name, help, **kw)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric (registrations are kept)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.zero()

    def as_dict(self) -> dict:
        """JSON-ready snapshot, sorted by metric name."""
        with self._lock:
            return {
                name: self._metrics[name].as_dict()
                for name in sorted(self._metrics)
            }

    def render_text(self) -> str:
        """Human-readable table (the ``repro stats`` default output).

        Metrics are grouped into sections by their first dotted component
        — the known families first, then an ``other`` catch-all, so **a
        dotted name registered by any subsystem is always rendered**
        (asserted by ``tests/obs/test_stats_render.py``: registering a
        metric can never silently hide it from ``repro stats``).
        """
        data = self.as_dict()
        sections: dict[str, list[str]] = {key: [] for key, _ in METRIC_FAMILIES}
        sections["other"] = []
        for name in data:
            family = name.split(".", 1)[0]
            sections.get(family, sections["other"]).append(name)
        lines: list[str] = []
        titles = dict(METRIC_FAMILIES)
        for family, names in sections.items():
            if not names:
                continue
            if lines:
                lines.append("")
            lines.append(f"# {titles.get(family, 'other (unclassified families)')}")
            for name in names:
                lines.extend(self._render_metric(name, data[name]))
        return "\n".join(lines)

    @staticmethod
    def _render_metric(name: str, data: dict) -> list[str]:
        lines: list[str] = []
        if data["type"] == "histogram":
            lines.append(
                f"{name:<44} histogram  count={data['count']} "
                f"sum={data['sum']} mean={data['mean']}"
            )
            # Only print buckets that add information (skip leading
            # empties; always show the +inf total).
            previous = 0
            for key, cum in data["buckets"].items():
                if cum > previous or key == "le_inf":
                    lines.append(f"    {key:<40} {cum}")
                    previous = cum
        elif data["type"] == "loghistogram":
            lines.append(
                f"{name:<44} loghist    count={data['count']} "
                f"mean={data['mean']} p50={data['p50']} "
                f"p99={data['p99']} p999={data['p999']}"
            )
        else:
            lines.append(f"{name:<44} {data['type']:<9} {data['value']}")
        return lines
