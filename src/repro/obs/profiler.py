"""Kernel execution profiler: per-kernel reports over compiled programs.

Ties together the analyses the compiler already runs — memory-space
classification (Section III-B.1), coalescing classification (Section
III-A.2), the ptxas-simulator's register report, the CUDA occupancy
rules, and the vectorized-execution planner — into one per-kernel view a
human can read (``repro profile <file>``) or a tool can consume
(:meth:`ProgramProfile.as_dict`).

The profile is taken over the *post-pipeline* IR (the function object a
:class:`~repro.compiler.driver.CompiledProgram` carries has been mutated
by the passes), so it reflects the code that was actually compiled:
SAFARA-replaced loads disappear from the global-memory rows, exactly the
effect the paper's feedback loop exists to create.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.coalescing import classify_access
from ..analysis.loopinfo import analyze_loops
from ..analysis.memspace import classify_memspaces
from ..codegen.vector_lower import AXIS, plan_kernel
from ..gpu.occupancy import compute_occupancy
from ..ir.expr import ArrayRef, array_refs
from ..ir.stmt import Assign, Region, loops_in, stmt_exprs, walk_stmts


@dataclass(slots=True)
class TrafficEntry:
    """Static reference counts for one (array, space, pattern) class."""

    array: str
    space: str  # "global" | "readonly"
    pattern: str  # "coalesced" | "uncoalesced" | "uniform" | "unknown"
    loads: int = 0
    stores: int = 0
    #: Element stride between adjacent threads (1 coalesced, 0 uniform,
    #: None unknown/symbolic).
    stride: int | None = None

    def as_dict(self) -> dict:
        return {
            "array": self.array,
            "space": self.space,
            "pattern": self.pattern,
            "loads": self.loads,
            "stores": self.stores,
            "stride": self.stride,
        }


@dataclass(slots=True)
class LoopDecision:
    """The vector planner's verdict for one loop of the region."""

    var: str
    parallel: bool
    mode: str  # "axis" | "seq"
    #: Demotion reason for parallel loops executed sequentially.
    reason: str | None = None

    def as_dict(self) -> dict:
        return {
            "var": self.var,
            "parallel": self.parallel,
            "mode": self.mode,
            "reason": self.reason,
        }


@dataclass(slots=True)
class KernelProfile:
    """Everything observable about one compiled kernel."""

    kernel: str
    registers: int
    raw_pressure: int
    spilled_values: int
    spill_bytes: int
    backend_compilations: int
    threads_per_block: int
    occupancy: float
    active_warps: int
    occupancy_limited_by: str
    safara: dict | None = None
    traffic: list[TrafficEntry] = field(default_factory=list)
    loops: list[LoopDecision] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "registers": self.registers,
            "raw_pressure": self.raw_pressure,
            "spilled_values": self.spilled_values,
            "spill_bytes": self.spill_bytes,
            "backend_compilations": self.backend_compilations,
            "threads_per_block": self.threads_per_block,
            "occupancy": round(self.occupancy, 4),
            "active_warps": self.active_warps,
            "occupancy_limited_by": self.occupancy_limited_by,
            "safara": self.safara,
            "traffic": [t.as_dict() for t in self.traffic],
            "loops": [l.as_dict() for l in self.loops],
        }


@dataclass(slots=True)
class ProgramProfile:
    """Per-kernel profiles for one compiled program."""

    function: str
    config: str
    kernels: list[KernelProfile] = field(default_factory=list)
    #: Optional dynamic-execution section attached by callers that ran the
    #: kernel (``repro profile --run``).
    execution: dict | None = None

    def as_dict(self) -> dict:
        out = {
            "function": self.function,
            "config": self.config,
            "kernels": [k.as_dict() for k in self.kernels],
        }
        if self.execution is not None:
            out["execution"] = self.execution
        return out

    def render(self) -> str:
        """The ``repro profile`` report text."""
        lines = [f"== profile: {self.function} (config {self.config}) =="]
        for k in self.kernels:
            spill = (
                f", {k.spill_bytes} spill bytes ({k.spilled_values} values)"
                if k.spill_bytes
                else ""
            )
            lines.append(
                f"kernel {k.kernel}: {k.registers} registers "
                f"(raw pressure {k.raw_pressure}{spill}), "
                f"{k.backend_compilations} backend compiles"
            )
            lines.append(
                f"  occupancy {k.occupancy:.2f} ({k.active_warps} warps, "
                f"limited by {k.occupancy_limited_by}), "
                f"{k.threads_per_block} threads/block"
            )
            if k.safara is not None:
                lines.append(
                    f"  safara: {k.safara['iterations']} iterations, "
                    f"{k.safara['groups_replaced']} groups replaced, "
                    f"converged: {k.safara['converged_reason']}"
                )
            lines.append("  memory traffic (static references):")
            for t in k.traffic:
                stride = f"stride {t.stride}" if t.stride is not None else "stride ?"
                lines.append(
                    f"    {t.array:<12} {t.space:<9} {t.pattern:<12} "
                    f"{t.loads:>3} loads {t.stores:>3} stores  ({stride})"
                )
            if not k.traffic:
                lines.append("    (no array references)")
            lines.append("  loops (vector planner):")
            for l in k.loops:
                kind = "parallel" if l.parallel else "seq-directive"
                verdict = l.mode
                if l.reason:
                    verdict += f" — {l.reason}"
                lines.append(f"    {l.var:<4} {kind:<14} {verdict}")
            if not k.loops:
                lines.append("    (no loops)")
        if self.execution is not None:
            e = self.execution
            lines.append(
                f"execution: executor={e['used']} loads={e['loads']} "
                f"stores={e['stores']} flops={e['flops']} "
                f"iterations={e['iterations']}"
            )
            if e.get("fallback_reason"):
                lines.append(f"  fallback: {e['fallback_reason']}")
        return "\n".join(lines)


def _collect_traffic(region: Region, has_readonly_cache: bool) -> list[TrafficEntry]:
    """Static load/store reference counts by (array, space, pattern)."""
    info = analyze_loops(region)
    vector_var = info.vector_var
    divergent = frozenset(info.divergent_symbols())
    spaces = classify_memspaces(region, has_readonly_cache=has_readonly_cache)

    buckets: dict[tuple, TrafficEntry] = {}

    def account(ref: ArrayRef, *, store: bool) -> None:
        access = classify_access(ref, vector_var, divergent)
        space = spaces.get(ref.sym)
        key = (
            ref.sym.name,
            space.value if space is not None else "global",
            access.pattern.value,
        )
        entry = buckets.get(key)
        if entry is None:
            entry = buckets[key] = TrafficEntry(
                array=key[0], space=key[1], pattern=key[2],
                stride=access.stride_elems,
            )
        if store:
            entry.stores += 1
        else:
            entry.loads += 1

    for stmt in walk_stmts(region.body):
        if isinstance(stmt, Assign) and isinstance(stmt.target, ArrayRef):
            account(stmt.target, store=True)
            # Subscripts of the store target are themselves loads.
            for index in stmt.target.indices:
                for ref in array_refs(index):
                    account(ref, store=False)
            for ref in array_refs(stmt.value):
                account(ref, store=False)
            continue
        for expr in stmt_exprs(stmt):
            for ref in array_refs(expr):
                account(ref, store=False)
    return sorted(
        buckets.values(), key=lambda t: (t.array, t.space, t.pattern)
    )


def profile_program(program) -> ProgramProfile:
    """Profile every kernel of a :class:`CompiledProgram`."""
    config = program.config
    options = config.codegen_options()
    has_ro = options.readonly_cache and config.arch.has_readonly_cache
    plan = plan_kernel(program.function)
    plans_by_region = {rp.region_id: rp for rp in plan.regions}

    profile = ProgramProfile(function=program.function.name, config=config.name)
    regions = {r.region_id: r for r in program.function.regions()}
    for ck in program.kernels:
        region = regions[ck.region_id]
        occ = compute_occupancy(
            ck.ptxas.registers,
            ck.vir.launch.threads_per_block,
            arch=config.arch,
        )
        safara = None
        if ck.safara is not None:
            safara = {
                "iterations": len(ck.safara.iterations),
                "groups_replaced": ck.safara.groups_replaced,
                "final_registers": ck.safara.final_registers,
                "register_limit": ck.safara.register_limit,
                "converged_reason": ck.safara.converged_reason,
            }
        kp = KernelProfile(
            kernel=ck.name,
            registers=ck.ptxas.registers,
            raw_pressure=ck.ptxas.raw_pressure,
            spilled_values=ck.ptxas.spilled_vregs,
            spill_bytes=ck.ptxas.spill_bytes,
            backend_compilations=ck.backend_compilations,
            threads_per_block=ck.vir.launch.threads_per_block,
            occupancy=occ.occupancy,
            active_warps=occ.active_warps,
            occupancy_limited_by=occ.limited_by,
            safara=safara,
            traffic=_collect_traffic(region, has_ro),
        )
        for loop in loops_in(region.body):
            lp = plan.by_loop_id.get(loop.loop_id)
            kp.loops.append(
                LoopDecision(
                    var=loop.var.name,
                    parallel=loop.is_parallel,
                    mode=lp.mode if lp is not None else "seq",
                    reason=lp.reason if lp is not None else None,
                )
            )
        profile.kernels.append(kp)
    return profile


def profile_source(source: str, config=None, *, session=None) -> ProgramProfile:
    """Compile ``source`` (through ``session`` or the default one) and
    profile the result."""
    from ..compiler.options import SMALL_DIM_SAFARA
    from ..compiler.session import default_session

    session = session if session is not None else default_session()
    config = config if config is not None else SMALL_DIM_SAFARA
    return profile_program(session.compile_source(source, config))
