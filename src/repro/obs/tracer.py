"""Span-based tracing: where a compile+execute run spends its time.

The paper's method is feedback-driven — SAFARA recompiles a region through
the backend repeatedly, reading register reports back — so a flat profile
is useless: the interesting structure is *nesting* (which pass, inside
which compile, issued which ptxas-simulator run).  :class:`Tracer` records
exactly that as a tree of :class:`Span` records, instrumenting lex →
parse → pipeline passes → feedback iterations → cache lookups → vector
planning → execution, and exports Chrome ``trace_event`` JSON loadable in
Perfetto / ``chrome://tracing`` (see :mod:`repro.obs.chrome`).

Design constraints:

* **zero dependencies** — stdlib only;
* **near-zero cost when disabled** — instrumentation sites call the
  module-level :func:`span` function, which returns a shared no-op
  context manager unless a tracer is active *and* enabled.  The
  acceptance bar is <5% overhead on the vectorized-execution benchmark
  with no sink attached;
* **thread-safe** — :meth:`CompilerSession.compile_many` drives compiles
  from worker threads; spans carry a stable small ``tid`` so each worker
  renders as its own track.

Instrumentation sites do not pass a tracer around: there is one *active*
tracer (:func:`get_tracer`), disabled by default, swapped in scoped
fashion with :meth:`Tracer.activate` (the CLI's ``--trace`` flag and the
benchmark harness use this).

**Request-scoped trace context.**  The serving broker gives every
protocol request a ``trace_id`` and needs the spans of *that request
only* — queue wait, placement, compile, feedback iterations, execution —
regardless of whether a process-wide tracer is active.  A worker thread
installs :func:`trace_scope` around request processing: while active,
every :func:`span` on that thread carries the request's ``trace_id`` as
an attribute and is *also* recorded into the scope's collector (a
private :class:`Tracer`), which the flight recorder
(:mod:`repro.obs.flight`) retains for the slowest and errored requests.
The collector shares the active tracer's epoch, so the same span object
can be recorded into both sinks with consistent timestamps.
"""

from __future__ import annotations

import contextlib
import functools
import threading
import time


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """No-op counterpart of :meth:`Span.set`."""


NULL_SPAN = _NullSpan()


class Span:
    """One timed, named, attributed interval.

    Use as a context manager; nesting is implied by wall-clock containment
    (children start after and end before their parent on the same thread),
    which is exactly how the Chrome trace viewer reconstructs the tree
    from complete (``ph: "X"``) events.
    """

    __slots__ = ("name", "cat", "ts_us", "dur_us", "tid", "args", "_tracer",
                 "_extra")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        args: dict,
        extra: "tuple[Tracer, ...]" = (),
    ):
        self._tracer = tracer
        #: Additional sinks recording this span on close (the request
        #: collector of an active :func:`trace_scope` rides here when a
        #: process-wide tracer is enabled at the same time).
        self._extra = extra
        self.name = name
        self.cat = cat
        self.args = args
        self.ts_us = 0.0
        self.dur_us = 0.0
        self.tid = 0

    def set(self, **args) -> None:
        """Attach (or overwrite) attributes mid-span — e.g. the register
        count a ptxas run reported, or whether a cache lookup hit."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.ts_us = self._tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_us = self._tracer._now_us() - self.ts_us
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        # Extra sinks first: the primary sink's tid assignment wins on the
        # shared span object (the request collector is always primary).
        for sink in self._extra:
            sink._record(self)
        self._tracer._record(self)
        return False


class Tracer:
    """Collects spans relative to its own epoch.

    ``enabled`` may be toggled at any time; a disabled tracer hands out
    :data:`NULL_SPAN` and records nothing.  ``max_spans`` bounds memory on
    runaway workloads (dropped spans are counted, never silently lost).
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        max_spans: int = 1_000_000,
        epoch_ns: int | None = None,
    ):
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        #: ``epoch_ns`` aligns this tracer's clock with another's (the
        #: per-request collectors share the active tracer's epoch so one
        #: span can be recorded into both with consistent timestamps).
        self._epoch_ns = epoch_ns if epoch_ns is not None else time.perf_counter_ns()
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        #: thread ident → stable small tid, in first-seen order.
        self._tids: dict[int, int] = {}

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1000.0

    def span(self, name: str, cat: str = "repro", **args):
        """A new span (or the shared null span while disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args)

    def _record(self, span: Span) -> None:
        ident = threading.get_ident()
        with self._lock:
            span.tid = self._tids.setdefault(ident, len(self._tids))
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    # -- introspection -----------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """A snapshot of the recorded spans (closed ones only)."""
        with self._lock:
            return list(self._spans)

    def span_names(self) -> list[str]:
        return [s.name for s in self.spans]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- scoped activation -------------------------------------------------

    @contextlib.contextmanager
    def activate(self):
        """Install this tracer as the process-wide active tracer for the
        duration of the ``with`` block (restoring the previous one after),
        enabling it on entry."""
        previous = get_tracer()
        self.enabled = True
        set_tracer(self)
        try:
            yield self
        finally:
            set_tracer(previous)


class TraceContext:
    """A request-scoped trace identity: the ``trace_id`` every span on
    the thread carries, plus an optional private collector recording the
    request's span tree for the flight recorder."""

    __slots__ = ("trace_id", "collector")

    def __init__(self, trace_id: str, collector: "Tracer | None" = None):
        self.trace_id = trace_id
        self.collector = collector


_trace_ctx = threading.local()


def current_trace() -> TraceContext | None:
    """The calling thread's active trace context, or ``None``."""
    return getattr(_trace_ctx, "current", None)


def current_trace_id() -> str | None:
    """The calling thread's active request ``trace_id``, or ``None`` —
    subsystems use this to tag events (degradations, execution records)
    with the request that caused them."""
    ctx = getattr(_trace_ctx, "current", None)
    return ctx.trace_id if ctx is not None else None


@contextlib.contextmanager
def trace_scope(trace_id: str, collector: "Tracer | None" = None):
    """Install a request trace context on the calling thread.

    While active, every :func:`span` opened on this thread carries
    ``trace_id`` as a span attribute and — when ``collector`` is given —
    is recorded into it *in addition to* the process-wide tracer (if that
    one is enabled).  Scopes nest; the inner context wins while active.
    """
    previous = getattr(_trace_ctx, "current", None)
    _trace_ctx.current = TraceContext(trace_id, collector)
    try:
        yield _trace_ctx.current
    finally:
        _trace_ctx.current = previous


def request_collector(max_spans: int = 512) -> "Tracer":
    """A per-request span collector aligned with the active tracer's
    epoch (so its spans can also be exported alongside globally traced
    ones without timestamp skew)."""
    return Tracer(enabled=True, max_spans=max_spans, epoch_ns=_active._epoch_ns)


#: The default (disabled) tracer instrumentation talks to out of the box.
_GLOBAL = Tracer()
_active: Tracer = _GLOBAL


def get_tracer() -> Tracer:
    """The currently active tracer (the disabled default unless someone
    activated their own)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the active tracer (``None`` restores the
    default).  Prefer the scoped :meth:`Tracer.activate`."""
    global _active
    _active = tracer if tracer is not None else _GLOBAL
    return _active


def span(name: str, cat: str = "repro", **args):
    """Open a span on the active tracer — the one-liner instrumentation
    sites use::

        with span("pass:safara", kernel=name) as sp:
            ...
            sp.set(registers=info.registers)

    Costs one attribute check when tracing is disabled (plus one
    thread-local read when no request trace context is installed).
    """
    t = _active
    ctx = getattr(_trace_ctx, "current", None)
    if ctx is None:
        if not t.enabled:
            return NULL_SPAN
        return Span(t, name, cat, args)
    args.setdefault("trace_id", ctx.trace_id)
    if ctx.collector is not None:
        extra = (t,) if t.enabled else ()
        return Span(ctx.collector, name, cat, args, extra=extra)
    if not t.enabled:
        return NULL_SPAN
    return Span(t, name, cat, args)


def traced(name: str | None = None, cat: str = "repro"):
    """Decorator form: trace every call of the wrapped function as one
    span named after it (or ``name``)."""

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*a, **kw):
            sp = span(label, cat)
            if sp is NULL_SPAN:
                return fn(*a, **kw)
            with sp:
                return fn(*a, **kw)

        return wrapper

    return decorate
