"""Compilation-service infrastructure: the instrumented pass pipeline and
the content-addressed compile cache.

* :mod:`repro.pipeline.passes` — ``Pass`` / ``PassManager`` and the five
  passes wrapping the paper's transformations;
* :mod:`repro.pipeline.cache` — the (source, config, env, arch)-keyed
  LRU compile cache with hit/miss/evict counters;
* :mod:`repro.pipeline.diskcache` — the persistent, sharded on-disk tier
  behind the in-memory cache (warm starts survive process restarts);
* :mod:`repro.pipeline.trace` — structured per-pass instrumentation
  (wall time, IR-size delta, register delta) and session statistics.

The :class:`~repro.compiler.session.CompilerSession` ties all three
together; see ``docs/pipeline.md``.
"""

from .cache import CompileCache, cache_key, config_token
from .diskcache import DiskCache
from .passes import (
    AutoParallelizePass,
    CarrKennedyPass,
    DEFAULT_PASS_ORDER,
    EsatPass,
    LicmPass,
    Pass,
    PassContext,
    PassManager,
    SafaraPass,
    UnrollPass,
    default_passes,
    ir_size,
    run_safara,
)
from .registry import (
    PASSES,
    PassRegistry,
    get_pass,
    list_passes,
    register_pass,
)
from .trace import CompileTrace, PassTrace, RegionTrace, SessionStats

__all__ = [
    "AutoParallelizePass",
    "CarrKennedyPass",
    "CompileCache",
    "CompileTrace",
    "DEFAULT_PASS_ORDER",
    "DiskCache",
    "EsatPass",
    "LicmPass",
    "PASSES",
    "Pass",
    "PassContext",
    "PassManager",
    "PassRegistry",
    "PassTrace",
    "RegionTrace",
    "SafaraPass",
    "SessionStats",
    "UnrollPass",
    "cache_key",
    "config_token",
    "default_passes",
    "get_pass",
    "ir_size",
    "list_passes",
    "register_pass",
]
