"""Compilation-service infrastructure: the instrumented pass pipeline and
the content-addressed compile cache.

* :mod:`repro.pipeline.passes` — ``Pass`` / ``PassManager`` and the five
  passes wrapping the paper's transformations;
* :mod:`repro.pipeline.cache` — the (source, config, env, arch)-keyed
  LRU compile cache with hit/miss/evict counters;
* :mod:`repro.pipeline.diskcache` — the persistent, sharded on-disk tier
  behind the in-memory cache (warm starts survive process restarts);
* :mod:`repro.pipeline.trace` — structured per-pass instrumentation
  (wall time, IR-size delta, register delta) and session statistics.

The :class:`~repro.compiler.session.CompilerSession` ties all three
together; see ``docs/pipeline.md``.
"""

from .cache import CompileCache, cache_key, config_token
from .diskcache import DiskCache
from .passes import (
    AutoParallelizePass,
    CarrKennedyPass,
    LicmPass,
    Pass,
    PassContext,
    PassManager,
    SafaraPass,
    UnrollPass,
    default_passes,
    ir_size,
    run_safara,
)
from .trace import CompileTrace, PassTrace, RegionTrace, SessionStats

__all__ = [
    "AutoParallelizePass",
    "CarrKennedyPass",
    "CompileCache",
    "CompileTrace",
    "DiskCache",
    "LicmPass",
    "Pass",
    "PassContext",
    "PassManager",
    "PassTrace",
    "RegionTrace",
    "SafaraPass",
    "SessionStats",
    "UnrollPass",
    "cache_key",
    "config_token",
    "default_passes",
    "ir_size",
    "run_safara",
]
