"""Content-addressed compile cache.

The SAFARA loop is feedback-driven — every region is compiled through the
backend repeatedly — and the experiment harness multiplies that by
(configurations × benchmarks), recompiling identical (source, config, env,
arch) tuples constantly.  :class:`CompileCache` memoises compiled programs
under a content hash of exactly those inputs, with LRU eviction and
hit/miss/evict counters.

Keys are *content-addressed*: two configurations with equal field values
produce the same key regardless of object identity, and any changed field
(including the architecture or an env binding) produces a different key.
Compilation is deterministic (see ``tests/compiler/test_driver.py``), so a
hit is bit-identical to a recompile.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Mapping

from ..errors import CacheError
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import span


def config_token(config) -> str:
    """A deterministic serialisation of a :class:`CompilerConfig`.

    Frozen-dataclass ``repr`` covers every field, including the nested
    ``GpuArch`` and ``LatencyModel`` (both frozen dataclasses themselves),
    so value-equal configs serialise identically.
    """
    return repr(config)


def cache_key(
    source: str,
    config,
    *,
    env: Mapping[str, int] | None = None,
    kernel_name: str | None = None,
) -> str:
    """SHA-256 key over (source text, config, env bindings, arch).

    The arch rides inside the config token; it is still listed separately
    in the digest so a config subclass that externalised it would keep
    distinct keys.
    """
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(config_token(config).encode())
    h.update(b"\x00")
    h.update(repr(config.arch).encode())
    h.update(b"\x00")
    if env:
        h.update(repr(sorted(env.items())).encode())
    h.update(b"\x00")
    if kernel_name is not None:
        h.update(kernel_name.encode())
    return h.hexdigest()


class CompileCache:
    """Thread-safe LRU cache of compiled programs, keyed by content hash.

    Hit/miss/evict counters live in a :class:`MetricsRegistry` (pass the
    session's to share one namespace; a private registry is created
    otherwise).  ``cache.hits`` and friends remain available as
    compatibility properties.
    """

    def __init__(self, maxsize: int = 512, metrics: MetricsRegistry | None = None):
        if maxsize < 1:
            raise CacheError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits", "compile cache hits")
        self._misses = self.metrics.counter("cache.misses", "compile cache misses")
        self._evictions = self.metrics.counter(
            "cache.evictions", "LRU evictions past maxsize"
        )
        self._entries = self.metrics.gauge("cache.entries", "resident programs")
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()

    # -- compatibility properties over the named metrics -------------------

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.value = value

    def get(self, key: str) -> Any | None:
        """Look up ``key``; counts a hit or a miss.  ``None`` on miss."""
        with span("cache.lookup", cache_key=key) as sp:
            with self._lock:
                try:
                    value = self._data[key]
                except KeyError:
                    self._misses.inc()
                    sp.set(hit=False)
                    return None
                self._data.move_to_end(key)
                self._hits.inc()
            sp.set(hit=True)
            return value

    def peek(self, key: str) -> bool:
        """Membership test without touching the counters or LRU order."""
        with self._lock:
            return key in self._data

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            while len(self._data) >= self.maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()
            self._data[key] = value
            self._entries.set(len(self._data))

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset`)."""
        with self._lock:
            self._data.clear()
            self._entries.set(0)

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._data.clear()
            self._hits.zero()
            self._misses.zero()
            self._evictions.zero()
            self._entries.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "entries": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def summary(self) -> str:
        return (
            f"compile cache: {self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions "
            f"({self.hit_rate * 100.0:.1f}% hit rate, "
            f"{len(self)}/{self.maxsize} entries)"
        )
