"""Content-addressed compile cache.

The SAFARA loop is feedback-driven — every region is compiled through the
backend repeatedly — and the experiment harness multiplies that by
(configurations × benchmarks), recompiling identical (source, config, env,
arch) tuples constantly.  :class:`CompileCache` memoises compiled programs
under a content hash of exactly those inputs, with LRU eviction and
hit/miss/evict counters.

Keys are *content-addressed*: two configurations with equal field values
produce the same key regardless of object identity, and any changed field
(including the architecture or an env binding) produces a different key.
Compilation is deterministic (see ``tests/compiler/test_driver.py``), so a
hit is bit-identical to a recompile.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Mapping


def config_token(config) -> str:
    """A deterministic serialisation of a :class:`CompilerConfig`.

    Frozen-dataclass ``repr`` covers every field, including the nested
    ``GpuArch`` and ``LatencyModel`` (both frozen dataclasses themselves),
    so value-equal configs serialise identically.
    """
    return repr(config)


def cache_key(
    source: str,
    config,
    *,
    env: Mapping[str, int] | None = None,
    kernel_name: str | None = None,
) -> str:
    """SHA-256 key over (source text, config, env bindings, arch).

    The arch rides inside the config token; it is still listed separately
    in the digest so a config subclass that externalised it would keep
    distinct keys.
    """
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(config_token(config).encode())
    h.update(b"\x00")
    h.update(repr(config.arch).encode())
    h.update(b"\x00")
    if env:
        h.update(repr(sorted(env.items())).encode())
    h.update(b"\x00")
    if kernel_name is not None:
        h.update(kernel_name.encode())
    return h.hexdigest()


class CompileCache:
    """Thread-safe LRU cache of compiled programs, keyed by content hash."""

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Any | None:
        """Look up ``key``; counts a hit or a miss.  ``None`` on miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: str) -> bool:
        """Membership test without touching the counters or LRU order."""
        with self._lock:
            return key in self._data

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            while len(self._data) >= self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = value

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset`)."""
        with self._lock:
            self._data.clear()

    def reset(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "entries": len(self),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def summary(self) -> str:
        return (
            f"compile cache: {self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions "
            f"({self.hit_rate * 100.0:.1f}% hit rate, "
            f"{len(self)}/{self.maxsize} entries)"
        )
