"""Persistent, sharded, content-addressed on-disk compile cache.

The in-memory :class:`~repro.pipeline.cache.CompileCache` dies with the
process, so every `repro` invocation — and every worker of the serving
daemon after a restart — starts cold and re-runs the SAFARA feedback loop
from scratch.  :class:`DiskCache` persists compiled programs under the
*same* content hash (``cache_key(source, config, env, arch)``), so a warm
start serves a previously-compiled program without a single backend
(ptxas-simulator) invocation.

Layout (``docs/serving.md`` documents it for operators)::

    <root>/
      shards/<first 2 hex chars of key>/<full key>.pkl

Design points:

* **atomic writes** — entries are written to a ``.tmp-<pid>-<tid>`` file
  in the shard directory and ``os.replace``d into place, so readers never
  observe a torn entry and concurrent writers of the same key are
  last-writer-wins (both wrote identical bytes anyway: compilation is
  deterministic);
* **corruption tolerance** — any failure to read, unpickle, or validate
  an entry is a *miss*: the bad file is deleted, the ``corrupt`` counter
  incremented, and the caller recompiles.  A disk cache must never be
  able to take the service down;
* **size-bounded LRU** — ``max_bytes`` caps the total payload size;
  eviction removes oldest-``mtime`` entries first, and hits refresh the
  file's mtime (``os.utime``) so recently-served entries survive;
* **versioned envelope** — entries embed ``FORMAT_VERSION`` and their own
  key; a version bump or a key mismatch (e.g. a truncated copy of another
  entry) reads as a miss, not an error.

Metrics (registered in the shared :class:`~repro.obs.metrics.MetricsRegistry`
namespace): ``cache.disk.hits`` / ``.misses`` / ``.writes`` /
``.evictions`` / ``.corrupt``, plus the ``cache.disk.bytes`` gauge.
Lookups and stores emit ``cache.disk.lookup`` / ``cache.disk.store``
tracing spans.
"""

from __future__ import annotations

import os
import pickle
import threading
from pathlib import Path
from typing import Any

from ..errors import CacheError
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import span

#: Current envelope version.  v2 added the optional ``codegen`` field (the
#: generated NumPy source text persisted next to the compiled program).
#: v1 entries still load — they simply carry no codegen source and are
#: upgraded in place on their next write.  Anything newer than
#: ``FORMAT_VERSION`` (or older than ``MIN_FORMAT_VERSION``) is a miss.
FORMAT_VERSION = 2
MIN_FORMAT_VERSION = 1

#: Default size bound: generous for compiled-program pickles (a few KB
#: each) while keeping a shared cache directory from growing unbounded.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class DiskCache:
    """Thread-safe persistent cache of picklable values keyed by content hash.

    The lock serialises eviction bookkeeping; the filesystem operations
    themselves are safe against concurrent *processes* too (atomic
    replace, tolerant reads), so many daemons may share one directory.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        metrics: MetricsRegistry | None = None,
    ):
        if max_bytes < 1:
            raise CacheError("max_bytes must be >= 1")
        self.root = Path(root)
        self.shards = self.root / "shards"
        self.shards.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.disk.hits", "disk cache hits")
        self._misses = self.metrics.counter(
            "cache.disk.misses", "disk cache misses"
        )
        self._writes = self.metrics.counter(
            "cache.disk.writes", "entries persisted"
        )
        self._evictions = self.metrics.counter(
            "cache.disk.evictions", "entries evicted past max_bytes"
        )
        self._corrupt = self.metrics.counter(
            "cache.disk.corrupt", "unreadable entries discarded on load"
        )
        self._bytes = self.metrics.gauge(
            "cache.disk.bytes", "total payload bytes on disk"
        )
        self._lock = threading.Lock()
        self._bytes.set(self.total_bytes())

    # -- paths -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise CacheError(f"not a content-hash key: {key!r}")
        return self.shards / key[:2] / f"{key}.pkl"

    def _entries(self) -> list[Path]:
        return [
            p
            for shard in self.shards.iterdir()
            if shard.is_dir()
            for p in shard.glob("*.pkl")
        ]

    # -- core API ----------------------------------------------------------

    def get(self, key: str) -> Any | None:
        """Load the value stored under ``key``; ``None`` on miss.

        Unreadable or invalid entries (truncated file, pickle error,
        format-version or key mismatch) are deleted, counted as
        ``corrupt``, and reported as a miss.
        """
        return self.get_entry(key)[0]

    def get_entry(self, key: str) -> tuple[Any | None, str | None]:
        """Load ``(value, codegen_source)`` stored under ``key``.

        ``(None, None)`` on miss.  v1 envelopes load fine and report no
        codegen source; a v2 envelope whose ``codegen`` field is not text
        keeps its value but drops the source (counted under
        ``cache.disk.codegen_corrupt`` — the caller re-plans).
        """
        path = self._path(key)
        with span("cache.disk.lookup", cache_key=key) as sp:
            try:
                blob = path.read_bytes()
                envelope = pickle.loads(blob)
                if (
                    not isinstance(envelope, dict)
                    or not (
                        MIN_FORMAT_VERSION
                        <= envelope.get("format", 0)
                        <= FORMAT_VERSION
                    )
                    or envelope.get("key") != key
                ):
                    raise ValueError("stale or mismatched cache envelope")
                value = envelope["value"]
                codegen = envelope.get("codegen")
            except FileNotFoundError:
                self._misses.inc()
                sp.set(hit=False)
                return None, None
            except Exception as exc:
                # Corrupt entry: discard it so the next write is clean.
                self._corrupt.inc()
                self._misses.inc()
                sp.set(hit=False, corrupt=True, error=type(exc).__name__)
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                return None, None
            if codegen is not None and not isinstance(codegen, str):
                self.metrics.counter(
                    "cache.disk.codegen_corrupt",
                    "persisted codegen sources unusable at load time",
                ).inc()
                codegen = None
            # Refresh recency so size-based eviction spares hot entries.
            try:
                os.utime(path)
            except OSError:
                pass
            self._hits.inc()
            sp.set(hit=True, codegen=codegen is not None)
            return value, codegen

    def peek(self, key: str) -> bool:
        """Membership test without touching counters or entry recency."""
        return self._path(key).exists()

    def put(self, key: str, value: Any, *, codegen: str | None = None) -> None:
        """Persist ``value`` under ``key`` atomically, then evict LRU
        entries until the cache fits ``max_bytes``.

        ``codegen`` (optional) is the generated NumPy source text stored
        next to the program — re-writing a key without it drops any
        previously stored source (deterministic compiles rewrite identical
        programs, so the next codegen-aware write repopulates it).
        """
        path = self._path(key)
        envelope: dict[str, Any] = {
            "format": FORMAT_VERSION, "key": key, "value": value,
        }
        if codegen is not None:
            envelope["codegen"] = codegen
        blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        with span("cache.disk.store", cache_key=key, bytes=len(blob)):
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / (
                f".tmp-{os.getpid()}-{threading.get_ident()}-{path.name}"
            )
            try:
                tmp.write_bytes(blob)
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)
            self._writes.inc()
            with self._lock:
                self._evict_to_fit()

    def _evict_to_fit(self) -> None:
        """Drop oldest-mtime entries until total size <= max_bytes.
        Caller holds the lock."""
        entries = []
        total = 0
        for p in self._entries():
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        if total > self.max_bytes:
            for _mtime, size, p in sorted(entries):
                try:
                    p.unlink()
                except OSError:
                    continue
                self._evictions.inc()
                total -= size
                if total <= self.max_bytes:
                    break
        self._bytes.set(total)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        total = 0
        for p in self._entries():
            try:
                total += p.stat().st_size
            except OSError:
                pass
        return total

    @property
    def hits(self) -> int:
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        return int(self._evictions.value)

    @property
    def corrupt(self) -> int:
        return int(self._corrupt.value)

    def clear(self) -> None:
        """Delete every entry (counters are kept)."""
        with self._lock:
            for p in self._entries():
                try:
                    p.unlink()
                except OSError:
                    pass
            self._bytes.set(0)

    def as_dict(self) -> dict:
        return {
            "root": str(self.root),
            "entries": len(self),
            "bytes": self.total_bytes(),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": int(self._writes.value),
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }

    def summary(self) -> str:
        return (
            f"disk cache at {self.root}: {len(self)} entries, "
            f"{self.total_bytes()} bytes, {self.hits} hits, "
            f"{self.misses} misses, {self.corrupt} corrupt"
        )
