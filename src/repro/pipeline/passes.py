"""The pass pipeline: a first-class ``Pass``/``PassManager`` abstraction.

The driver's historical region pipeline (auto-parallelisation → LICM →
optional unrolling → optional Carr-Kennedy → optional SAFARA) is expressed
as five :class:`Pass` objects registered into a :class:`PassManager`.  The
manager owns ordering and instrumentation: every run yields a
:class:`~repro.pipeline.trace.RegionTrace` with per-pass wall time,
IR-size delta, and — for passes that drive the backend — the register
climb read from the :class:`~repro.feedback.driver.FeedbackCompiler`
history.

Passes mutate the region IR in place, exactly like the transformations
they wrap; a region must therefore come from a fresh parse per
configuration, as always.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.cost_model import LatencyModel
from ..codegen.kernelgen import CodegenOptions
from ..feedback.driver import FeedbackCompiler
from ..gpu.arch import GpuArch, KEPLER_K20XM
from ..gpu.registers import PtxasInfo
from ..ir.stmt import Region, walk_stmts
from ..ir.symbols import SymbolTable
from ..obs.tracer import span as obs_span
from ..transforms.autopar import auto_parallelize
from ..transforms.carr_kennedy import apply_carr_kennedy
from ..transforms.licm import apply_licm
from ..transforms.safara import SafaraReport, apply_safara
from ..transforms.unroll import apply_unrolling
from .trace import PassTrace, RegionTrace

# CompilerConfig is only needed for type context; imported lazily in
# signatures to keep repro.pipeline free of a hard compiler dependency.


def ir_size(region: Region) -> int:
    """Statement count of a region (the instrumented IR-size metric)."""
    return sum(1 for _ in walk_stmts(region.body))


@dataclass(slots=True)
class PassContext:
    """Everything a pass may read or write while processing one region."""

    region: Region
    symtab: SymbolTable
    config: "object"  # CompilerConfig; untyped to avoid an import cycle
    options: CodegenOptions
    kernel_name: str
    #: Backend compilations attributed to the whole region compile.  The
    #: final code generation adds one more after the pipeline finishes.
    backend_compilations: int = 1
    #: Reports keyed by each pass's ``report_key`` (consumed by the driver
    #: to populate :class:`~repro.compiler.driver.CompiledKernel`).
    reports: dict[str, object] = field(default_factory=dict)
    #: Set by a pass that ran the backend: the PTXAS history it produced.
    ptxas_history: list[PtxasInfo] | None = None


class Pass:
    """One unit of the region pipeline.

    Subclasses set ``name`` (the trace/CLI identifier), optionally
    ``report_key`` (where the returned report lands in
    ``PassContext.reports``), override :meth:`enabled` to gate on the
    configuration, and implement :meth:`run`.
    """

    name: str = "pass"
    report_key: str | None = None

    def enabled(self, config) -> bool:
        return True

    def run(self, ctx: PassContext):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class AutoParallelizePass(Pass):
    """``kernels``-construct lowering: map undirected loops automatically
    (paper Section II-C; OpenUH reference [16])."""

    name = "autopar"
    report_key = "autopar"

    def run(self, ctx: PassContext):
        return auto_parallelize(ctx.region)


class LicmPass(Pass):
    """Baseline global optimisation (WOPT): invariant-load hoisting runs
    in every configuration."""

    name = "licm"
    report_key = "licm"

    def run(self, ctx: PassContext):
        return apply_licm(ctx.region, ctx.symtab)


class UnrollPass(Pass):
    """Innermost-loop unrolling (the paper's future-work combination),
    followed by a LICM re-run: unrolling may expose new invariants."""

    name = "unroll"
    report_key = "unroll"

    def enabled(self, config) -> bool:
        return config.unroll_factor > 1

    def run(self, ctx: PassContext):
        report = apply_unrolling(
            ctx.region, ctx.symtab, factor=ctx.config.unroll_factor
        )
        apply_licm(ctx.region, ctx.symtab)
        return report


class EsatPass(Pass):
    """Equality saturation + extraction (:mod:`repro.esat`): canonicalize
    every expression of the region so equal-but-differently-spelled
    subscripts and subexpressions become structurally identical before
    the scalar-replacement passes group references.  Runs after
    unrolling (unrolled bodies are where duplicate spellings bloom) and
    before Carr-Kennedy/SAFARA (the consumers of the canonical forms)."""

    name = "esat"
    report_key = "esat"

    def enabled(self, config) -> bool:
        return getattr(config, "saturate", False)

    def run(self, ctx: PassContext):
        from ..esat import saturate_region

        return saturate_region(
            ctx.region, weights=ctx.config.extraction_weights()
        )


class CarrKennedyPass(Pass):
    """The classic scalar-replacement baseline (paper Section III-A)."""

    name = "carr-kennedy"
    report_key = "carr_kennedy"

    def enabled(self, config) -> bool:
        return config.carr_kennedy

    def run(self, ctx: PassContext):
        return apply_carr_kennedy(
            ctx.region,
            ctx.symtab,
            register_budget=ctx.config.ck_register_budget,
            intra_only=ctx.config.ck_intra_only,
        )


def run_safara(
    region: Region,
    symtab: SymbolTable,
    *,
    options: CodegenOptions,
    arch: GpuArch = KEPLER_K20XM,
    register_limit: int | None = None,
    latency: LatencyModel | None = None,
    name: str | None = None,
    max_candidates: int | None = None,
) -> tuple[SafaraReport, FeedbackCompiler]:
    """The SAFARA feedback loop core: compile → read PTXAS info → replace.

    Shared by :class:`SafaraPass` and the public ``optimize_region``
    entrypoint; returns the SAFARA trace and the feedback compiler whose
    ``history`` holds every intermediate PTXAS report.
    """
    feedback = FeedbackCompiler(
        symtab=symtab,
        options=options,
        arch=arch,
        register_limit=register_limit,
        name=name,
    )
    report = apply_safara(
        region,
        symtab,
        feedback,
        register_limit=register_limit or arch.max_registers_per_thread,
        has_readonly_cache=options.readonly_cache and arch.has_readonly_cache,
        latency=latency or arch.latency,
        max_candidates=max_candidates,
    )
    return report, feedback


class SafaraPass(Pass):
    """SAFARA: feedback-driven, latency-aware scalar replacement
    (paper Section III-B)."""

    name = "safara"
    report_key = "safara"

    def enabled(self, config) -> bool:
        return config.safara

    def run(self, ctx: PassContext):
        config = ctx.config
        report, feedback = run_safara(
            ctx.region,
            ctx.symtab,
            options=ctx.options,
            arch=config.arch,
            register_limit=config.register_limit,
            latency=config.latency or config.arch.latency,
            name=ctx.kernel_name,
            max_candidates=config.safara_max_candidates,
        )
        ctx.backend_compilations = feedback.compilations
        ctx.ptxas_history = feedback.history
        return report


#: Canonical order of the paper's region pipeline, by registry key.
DEFAULT_PASS_ORDER = (
    "autopar", "licm", "unroll", "esat", "carr-kennedy", "safara",
)


def default_passes() -> list[Pass]:
    """The paper's region pipeline, in its canonical order.

    Instantiated through the :mod:`~repro.pipeline.registry`, so a
    subclass registered over a default key (e.g. a project-specific
    ``safara``) replaces the stock pass in every new session."""
    from .registry import PASSES

    return [PASSES.get(key)() for key in DEFAULT_PASS_ORDER]


class PassManager:
    """Runs registered passes over one region and instruments each one."""

    def __init__(self, passes: list[Pass] | None = None):
        self.passes: list[Pass] = (
            list(passes) if passes is not None else default_passes()
        )

    def register(
        self,
        p: Pass,
        *,
        before: str | None = None,
        after: str | None = None,
    ) -> Pass:
        """Add a pass (appended by default, or anchored to an existing
        pass's ``name`` with ``before=``/``after=``)."""
        if before is not None and after is not None:
            raise ValueError("give at most one of before/after")
        anchor = before or after
        if anchor is None:
            self.passes.append(p)
            return p
        for i, existing in enumerate(self.passes):
            if existing.name == anchor:
                self.passes.insert(i if before else i + 1, p)
                return p
        raise KeyError(f"no pass named {anchor!r}")

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, ctx: PassContext) -> RegionTrace:
        """Run every enabled pass over ``ctx.region``, in order."""
        trace = RegionTrace(kernel=ctx.kernel_name)
        with obs_span("pipeline", kernel=ctx.kernel_name):
            for p in self.passes:
                if not p.enabled(ctx.config):
                    trace.passes.append(PassTrace(name=p.name, ran=False))
                    continue
                ctx.ptxas_history = None
                compilations_before = ctx.backend_compilations
                before = ir_size(ctx.region)
                with obs_span(f"pass:{p.name}", kernel=ctx.kernel_name) as sp:
                    t0 = time.perf_counter()
                    report = p.run(ctx)
                    wall_ms = (time.perf_counter() - t0) * 1000.0
                    entry = PassTrace(
                        name=p.name,
                        ran=True,
                        wall_ms=wall_ms,
                        ir_before=before,
                        ir_after=ir_size(ctx.region),
                    )
                    if ctx.ptxas_history:
                        entry.registers_before = ctx.ptxas_history[0].registers
                        entry.registers_after = ctx.ptxas_history[-1].registers
                        entry.backend_compilations = len(ctx.ptxas_history)
                    elif ctx.backend_compilations != compilations_before:
                        entry.backend_compilations = (
                            ctx.backend_compilations - compilations_before
                        )
                    sp.set(
                        ir_delta=entry.ir_delta,
                        backend_compilations=entry.backend_compilations,
                    )
                    if entry.registers_after is not None:
                        sp.set(registers=entry.registers_after)
                if report is not None and p.report_key:
                    ctx.reports[p.report_key] = report
                trace.passes.append(entry)
        return trace
