"""The pluggable optimization-pass registry.

Mirrors the device-fleet pattern of :class:`repro.gpu.arch.ArchRegistry`:
canonical keys are kebab-case, lookups normalize case / spaces /
underscores, aliases resolve to the same entry, and an unknown name
raises :class:`~repro.errors.ConfigError` listing every registered pass —
a typo in a custom pipeline definition fails loudly at configuration
time, not as a silently shorter pipeline.

The registry holds pass *classes* (passes are stateless; a
:class:`~repro.pipeline.passes.PassManager` instantiates what it runs),
so ``get_pass("safara")()`` is a fresh pass object and subclassing a
registered pass never mutates shared state.  The default pipeline in
:func:`repro.pipeline.passes.default_passes` is built from this registry,
which makes it the single place third-party transformations plug in::

    from repro import register_pass

    class FusePass(Pass):
        name = "fuse"
        def run(self, ctx): ...

    register_pass("fuse", FusePass, aliases=("loop-fuse",))
"""

from __future__ import annotations

from ..errors import ConfigError
from .passes import (
    AutoParallelizePass,
    CarrKennedyPass,
    EsatPass,
    LicmPass,
    Pass,
    SafaraPass,
    UnrollPass,
)


class PassRegistry:
    """Named, pluggable optimization passes (see module docstring)."""

    def __init__(self) -> None:
        self._passes: dict[str, type[Pass]] = {}
        self._aliases: dict[str, str] = {}

    @staticmethod
    def normalize(name: str) -> str:
        return "-".join(
            str(name).strip().lower().replace("_", " ").replace("-", " ").split()
        )

    def register(
        self,
        key: str,
        pass_cls: type[Pass],
        *,
        aliases: tuple[str, ...] = (),
    ) -> type[Pass]:
        """Register a pass class under a canonical ``key`` (plus aliases
        and the class's own ``name``); returns the class for chaining —
        usable as a decorator argument-style helper."""
        if not (isinstance(pass_cls, type) and issubclass(pass_cls, Pass)):
            raise ConfigError(
                f"register_pass({key!r}): expected a Pass subclass, "
                f"got {pass_cls!r}"
            )
        canon = self.normalize(key)
        self._passes[canon] = pass_cls
        for alias in (pass_cls.name, *aliases):
            self._aliases[self.normalize(alias)] = canon
        return pass_cls

    def key_of(self, pass_cls: type[Pass]) -> str | None:
        """The canonical key a pass class is registered under, or
        ``None`` for an unregistered ad-hoc pass."""
        for key, registered in self._passes.items():
            if registered is pass_cls:
                return key
        return None

    def get(self, name: "str | type[Pass]") -> type[Pass]:
        """Resolve a pass name (or pass a class straight through)."""
        if isinstance(name, type) and issubclass(name, Pass):
            return name
        norm = self.normalize(name)
        key = self._aliases.get(norm, norm)
        pass_cls = self._passes.get(key)
        if pass_cls is None:
            raise ConfigError(
                f"unknown optimization pass {name!r} "
                f"(registered passes: {', '.join(self.names())})"
            )
        return pass_cls

    def names(self) -> list[str]:
        """Canonical pass names, sorted."""
        return sorted(self._passes)

    def __contains__(self, name: str) -> bool:
        norm = self.normalize(name)
        return norm in self._passes or norm in self._aliases

    def items(self) -> list[tuple[str, type[Pass]]]:
        return sorted(self._passes.items())


#: The process-wide registry ``default_passes()`` and the CLI resolve in.
PASSES = PassRegistry()
PASSES.register("autopar", AutoParallelizePass, aliases=("auto-parallelize",))
PASSES.register("licm", LicmPass, aliases=("invariant-hoisting",))
PASSES.register("unroll", UnrollPass, aliases=("loop-unroll",))
PASSES.register("esat", EsatPass, aliases=("equality-saturation", "saturate"))
PASSES.register("carr-kennedy", CarrKennedyPass, aliases=("ck",))
PASSES.register("safara", SafaraPass, aliases=("scalar-replacement",))


def register_pass(
    key: str, pass_cls: type[Pass], *, aliases: tuple[str, ...] = ()
) -> type[Pass]:
    """Register a custom pass class in the process-wide registry."""
    return PASSES.register(key, pass_cls, aliases=aliases)


def get_pass(name: "str | type[Pass]") -> type[Pass]:
    """Look up a registered pass class by name (or alias)."""
    return PASSES.get(name)


def list_passes() -> list[str]:
    """Canonical names of every registered pass."""
    return PASSES.names()
