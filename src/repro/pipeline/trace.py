"""Structured instrumentation records for the pass pipeline.

Every compilation run through a :class:`~repro.compiler.session.CompilerSession`
produces one :class:`CompileTrace` (per program) holding one
:class:`RegionTrace` per offload region, which in turn holds one
:class:`PassTrace` per registered pass — wall time, IR-size delta, and
(where the pass talks to the backend) the register delta read off the
``FeedbackCompiler`` history.  The same objects serialise to JSON for the
CLI's ``--stats`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class PassTrace:
    """Instrumentation for one pass over one region."""

    name: str
    #: False when the pass was registered but disabled by the configuration.
    ran: bool = True
    wall_ms: float = 0.0
    #: Statement count of the region before/after the pass.
    ir_before: int = 0
    ir_after: int = 0
    #: Register usage read from the feedback compiler's first/last PTXAS
    #: report, for passes that drive the backend (SAFARA); None otherwise.
    registers_before: int | None = None
    registers_after: int | None = None
    #: Backend (ptxas-simulator) invocations performed by this pass.
    backend_compilations: int = 0

    @property
    def ir_delta(self) -> int:
        return self.ir_after - self.ir_before

    @property
    def register_delta(self) -> int | None:
        if self.registers_before is None or self.registers_after is None:
            return None
        return self.registers_after - self.registers_before

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "ran": self.ran,
            "wall_ms": round(self.wall_ms, 4),
            "ir_before": self.ir_before,
            "ir_after": self.ir_after,
            "ir_delta": self.ir_delta,
            "registers_before": self.registers_before,
            "registers_after": self.registers_after,
            "register_delta": self.register_delta,
            "backend_compilations": self.backend_compilations,
        }


@dataclass(slots=True)
class RegionTrace:
    """All pass records for one offload region (one GPU kernel)."""

    kernel: str
    passes: list[PassTrace] = field(default_factory=list)

    @property
    def wall_ms(self) -> float:
        return sum(p.wall_ms for p in self.passes)

    @property
    def backend_compilations(self) -> int:
        return sum(p.backend_compilations for p in self.passes)

    def pass_trace(self, name: str) -> PassTrace:
        for p in self.passes:
            if p.name == name:
                return p
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "wall_ms": round(self.wall_ms, 4),
            "passes": [p.as_dict() for p in self.passes],
        }


@dataclass(slots=True)
class CompileTrace:
    """One compiled program: every region, every pass."""

    function: str
    config: str
    regions: list[RegionTrace] = field(default_factory=list)
    wall_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "config": self.config,
            "wall_ms": round(self.wall_ms, 4),
            "regions": [r.as_dict() for r in self.regions],
        }


@dataclass(slots=True)
class SessionStats:
    """Aggregate counters and traces for one compiler session."""

    #: Programs actually compiled (cache misses + uncached entrypoints).
    compilations: int = 0
    #: Timing-model evaluations.
    timings: int = 0
    #: Stand-alone feedback optimisations (``optimize_region``).
    feedback_optimizations: int = 0
    #: Functional kernel executions (``CompilerSession.execute``).
    executions: int = 0
    #: ... of which ran through the vectorized engine.
    vector_executions: int = 0
    #: ... of which fell back to the scalar interpreter.
    scalar_fallbacks: int = 0
    #: One record per execution: the kernel name plus the
    #: :class:`~repro.gpu.vector_exec.ExecutionInfo` payload (executor
    #: requested/used, fallback reason, per-region element counts).
    execution_traces: list[dict] = field(default_factory=list)
    traces: list[CompileTrace] = field(default_factory=list)
    #: Oldest traces are dropped past this bound.
    max_traces: int = 4096

    def record(self, trace: CompileTrace) -> None:
        self.compilations += 1
        self.traces.append(trace)
        if len(self.traces) > self.max_traces:
            del self.traces[: len(self.traces) - self.max_traces]

    def record_execution(self, function: str, info: dict) -> None:
        self.executions += 1
        if info.get("used") == "vector":
            self.vector_executions += 1
        else:
            self.scalar_fallbacks += 1
        self.execution_traces.append({"kernel": function, **info})
        if len(self.execution_traces) > self.max_traces:
            del self.execution_traces[
                : len(self.execution_traces) - self.max_traces
            ]

    def pass_totals(self) -> dict[str, dict]:
        """Aggregate (calls, wall time, backend compiles) per pass name."""
        totals: dict[str, dict] = {}
        for trace in self.traces:
            for region in trace.regions:
                for p in region.passes:
                    agg = totals.setdefault(
                        p.name,
                        {"calls": 0, "skipped": 0, "wall_ms": 0.0,
                         "backend_compilations": 0},
                    )
                    if p.ran:
                        agg["calls"] += 1
                        agg["wall_ms"] += p.wall_ms
                        agg["backend_compilations"] += p.backend_compilations
                    else:
                        agg["skipped"] += 1
        for agg in totals.values():
            agg["wall_ms"] = round(agg["wall_ms"], 4)
        return totals

    def as_dict(self) -> dict:
        return {
            "compilations": self.compilations,
            "timings": self.timings,
            "feedback_optimizations": self.feedback_optimizations,
            "pass_totals": self.pass_totals(),
            "traces": [t.as_dict() for t in self.traces],
            "execution": {
                "executions": self.executions,
                "vector": self.vector_executions,
                "scalar_fallbacks": self.scalar_fallbacks,
                "kernels": list(self.execution_traces),
            },
        }

    def reset(self) -> None:
        self.compilations = 0
        self.timings = 0
        self.feedback_optimizations = 0
        self.executions = 0
        self.vector_executions = 0
        self.scalar_fallbacks = 0
        self.execution_traces.clear()
        self.traces.clear()
