"""Structured instrumentation records for the pass pipeline.

Every compilation run through a :class:`~repro.compiler.session.CompilerSession`
produces one :class:`CompileTrace` (per program) holding one
:class:`RegionTrace` per offload region, which in turn holds one
:class:`PassTrace` per registered pass — wall time, IR-size delta, and
(where the pass talks to the backend) the register delta read off the
``FeedbackCompiler`` history.  The same objects serialise to JSON for the
CLI's ``--stats`` flag, and each ``CompileTrace`` carries the compile
cache key of its program so traces can be joined to cache entries.

:class:`SessionStats` aggregates those traces.  Its counters are backed
by a :class:`~repro.obs.metrics.MetricsRegistry` (shared with the
session's :class:`~repro.pipeline.cache.CompileCache`); the historical
attributes — ``compilations``, ``timings``, ``scalar_fallbacks``, … —
survive as compatibility properties over the named metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.expr import intern_stats
from ..obs.metrics import COUNT_BUCKETS, MetricsRegistry


@dataclass(slots=True)
class PassTrace:
    """Instrumentation for one pass over one region."""

    name: str
    #: False when the pass was registered but disabled by the configuration.
    ran: bool = True
    wall_ms: float = 0.0
    #: Statement count of the region before/after the pass.
    ir_before: int = 0
    ir_after: int = 0
    #: Register usage read from the feedback compiler's first/last PTXAS
    #: report, for passes that drive the backend (SAFARA); None otherwise.
    registers_before: int | None = None
    registers_after: int | None = None
    #: Backend (ptxas-simulator) invocations performed by this pass.
    backend_compilations: int = 0

    @property
    def ir_delta(self) -> int:
        return self.ir_after - self.ir_before

    @property
    def register_delta(self) -> int | None:
        if self.registers_before is None or self.registers_after is None:
            return None
        return self.registers_after - self.registers_before

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "ran": self.ran,
            "wall_ms": round(self.wall_ms, 4),
            "ir_before": self.ir_before,
            "ir_after": self.ir_after,
            "ir_delta": self.ir_delta,
            "registers_before": self.registers_before,
            "registers_after": self.registers_after,
            "register_delta": self.register_delta,
            "backend_compilations": self.backend_compilations,
        }


@dataclass(slots=True)
class RegionTrace:
    """All pass records for one offload region (one GPU kernel)."""

    kernel: str
    passes: list[PassTrace] = field(default_factory=list)

    @property
    def wall_ms(self) -> float:
        return sum(p.wall_ms for p in self.passes)

    @property
    def backend_compilations(self) -> int:
        return sum(p.backend_compilations for p in self.passes)

    def pass_trace(self, name: str) -> PassTrace:
        for p in self.passes:
            if p.name == name:
                return p
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "wall_ms": round(self.wall_ms, 4),
            "passes": [p.as_dict() for p in self.passes],
        }


@dataclass(slots=True)
class CompileTrace:
    """One compiled program: every region, every pass."""

    function: str
    config: str
    regions: list[RegionTrace] = field(default_factory=list)
    wall_ms: float = 0.0
    #: Compile-cache key of the program this trace describes (``None`` for
    #: uncached entrypoints like ``compile_function`` on caller-owned IR).
    cache_key: str | None = None

    def as_dict(self) -> dict:
        return {
            "function": self.function,
            "config": self.config,
            "cache_key": self.cache_key,
            "wall_ms": round(self.wall_ms, 4),
            "regions": [r.as_dict() for r in self.regions],
        }


class SessionStats:
    """Aggregate counters and traces for one compiler session.

    Counters live in a metrics registry (pass one to share it with the
    compile cache; a private one is created otherwise).  The attribute
    API is unchanged from the dataclass era: ``stats.compilations`` still
    reads — and, for backward compatibility, still assigns — the counter.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._compilations = m.counter(
            "session.compilations",
            "programs actually compiled (cache misses + uncached entrypoints)",
        )
        self._timings = m.counter(
            "session.timings", "timing-model evaluations"
        )
        self._feedback_optimizations = m.counter(
            "session.feedback_optimizations",
            "stand-alone feedback optimisations (optimize_region)",
        )
        self._executions = m.counter(
            "session.executions", "functional kernel executions"
        )
        self._codegen_executions = m.counter(
            "session.executions.codegen",
            "executions through generated NumPy code",
        )
        self._vector_executions = m.counter(
            "session.executions.vector", "executions through the vector engine"
        )
        self._scalar_fallbacks = m.counter(
            "session.executions.scalar_fallback",
            "vector/auto requests that fell back to the scalar interpreter",
        )
        self._scalar_requested = m.counter(
            "session.executions.scalar_requested",
            "executions that explicitly requested the scalar interpreter",
        )
        self._compile_wall_ms = m.histogram(
            "session.compile_wall_ms", help="wall time per compiled program"
        )
        # Intern-table counters: the process-wide totals of
        # repro.ir.expr.intern_stats() are snapshotted per record() and
        # published as per-session deltas (high evictions = the bounded
        # table is thrashing and hash-consing has stopped paying).
        self._intern_hits = m.counter(
            "ir.intern.hits", "expression intern-table hits"
        )
        self._intern_misses = m.counter(
            "ir.intern.misses", "expression intern-table misses"
        )
        self._intern_evictions = m.counter(
            "ir.intern.evictions",
            "expressions dropped by intern-table wholesale clears",
        )
        self._intern_last = intern_stats()
        # Equality-saturation counters, fed from each region's EsatReport.
        self._esat_unions = m.counter(
            "esat.unions", "e-class merges performed by saturation"
        )
        self._esat_unified = m.counter(
            "esat.unified_spellings",
            "e-classes that unified distinct source spellings",
        )
        self._esat_rewritten = m.counter(
            "esat.rewritten", "expression slots changed by extraction"
        )
        self._esat_candidates = m.counter(
            "esat.new_candidates",
            "newly repeated array references fed to scalar replacement",
        )
        self._esat_fallbacks = m.counter(
            "esat.guard_fallbacks",
            "regions where the pressure guard kept the unsaturated kernel",
        )
        self._esat_saturated = m.counter(
            "esat.saturated_runs",
            "saturation runs that reached a fixpoint within bounds",
        )
        self._execution_elements = m.histogram(
            "session.execution_elements",
            boundaries=COUNT_BUCKETS,
            help="batched lane-iterations per vector execution",
        )
        #: One record per execution: the kernel name plus the
        #: :class:`~repro.gpu.vector_exec.ExecutionInfo` payload (executor
        #: requested/used, fallback reason, per-region element counts).
        self.execution_traces: list[dict] = []
        self.traces: list[CompileTrace] = []
        #: Oldest traces are dropped past this bound.
        self.max_traces: int = 4096

    # -- compatibility properties over the named metrics -------------------

    @property
    def compilations(self) -> int:
        return int(self._compilations.value)

    @compilations.setter
    def compilations(self, value: int) -> None:
        self._compilations.value = value

    @property
    def timings(self) -> int:
        return int(self._timings.value)

    @timings.setter
    def timings(self, value: int) -> None:
        self._timings.value = value

    @property
    def feedback_optimizations(self) -> int:
        return int(self._feedback_optimizations.value)

    @feedback_optimizations.setter
    def feedback_optimizations(self, value: int) -> None:
        self._feedback_optimizations.value = value

    @property
    def executions(self) -> int:
        return int(self._executions.value)

    @property
    def codegen_executions(self) -> int:
        return int(self._codegen_executions.value)

    @property
    def vector_executions(self) -> int:
        return int(self._vector_executions.value)

    @property
    def scalar_fallbacks(self) -> int:
        return int(self._scalar_fallbacks.value)

    @property
    def scalar_requested(self) -> int:
        return int(self._scalar_requested.value)

    # -- recording ---------------------------------------------------------

    def record(self, trace: CompileTrace) -> None:
        self._compilations.inc()
        self._compile_wall_ms.observe(trace.wall_ms)
        m = self.metrics
        for region in trace.regions:
            for p in region.passes:
                base = f"pipeline.pass.{p.name}"
                if p.ran:
                    m.counter(base + ".runs").inc()
                    m.counter(base + ".wall_ms").inc(p.wall_ms)
                    if p.backend_compilations:
                        m.counter(base + ".backend_compilations").inc(
                            p.backend_compilations
                        )
                else:
                    m.counter(base + ".skips").inc()
        current = intern_stats()
        for key, counter in (
            ("hits", self._intern_hits),
            ("misses", self._intern_misses),
            ("evictions", self._intern_evictions),
        ):
            delta = current[key] - self._intern_last[key]
            if delta > 0:
                counter.inc(delta)
        self._intern_last = current
        self.traces.append(trace)
        if len(self.traces) > self.max_traces:
            del self.traces[: len(self.traces) - self.max_traces]

    def record_esat(self, report) -> None:
        """Fold one region's :class:`~repro.esat.optimize.EsatReport`
        into the ``esat.*`` counters."""
        self._esat_unions.inc(report.unions)
        self._esat_unified.inc(report.unified_spellings)
        self._esat_rewritten.inc(report.rewritten)
        self._esat_candidates.inc(report.new_candidates)
        if report.saturated:
            self._esat_saturated.inc()
        if not report.applied:
            self._esat_fallbacks.inc()

    def record_timing(self) -> None:
        self._timings.inc()

    def record_feedback_optimization(self) -> None:
        self._feedback_optimizations.inc()

    def record_execution(self, function: str, info: dict) -> None:
        """Record one functional execution.

        A *fallback* is counted only when the caller asked for a batched
        engine (``requested`` of ``codegen``, ``vector`` or ``auto``) and
        the scalar interpreter ran anyway; an explicitly requested scalar
        run counts under ``scalar_requested`` instead.
        """
        self._executions.inc()
        requested = info.get("requested")
        used = info.get("used")
        if used == "codegen":
            self._codegen_executions.inc()
            self._execution_elements.observe(info.get("elements", 0))
        elif used == "vector":
            self._vector_executions.inc()
            self._execution_elements.observe(info.get("elements", 0))
        elif requested in ("codegen", "vector", "auto"):
            self._scalar_fallbacks.inc()
        else:
            self._scalar_requested.inc()
        self.execution_traces.append({"kernel": function, **info})
        if len(self.execution_traces) > self.max_traces:
            del self.execution_traces[
                : len(self.execution_traces) - self.max_traces
            ]

    def pass_totals(self) -> dict[str, dict]:
        """Aggregate (calls, wall time, backend compiles) per pass name."""
        totals: dict[str, dict] = {}
        for trace in self.traces:
            for region in trace.regions:
                for p in region.passes:
                    agg = totals.setdefault(
                        p.name,
                        {"calls": 0, "skipped": 0, "wall_ms": 0.0,
                         "backend_compilations": 0},
                    )
                    if p.ran:
                        agg["calls"] += 1
                        agg["wall_ms"] += p.wall_ms
                        agg["backend_compilations"] += p.backend_compilations
                    else:
                        agg["skipped"] += 1
        for agg in totals.values():
            agg["wall_ms"] = round(agg["wall_ms"], 4)
        return totals

    def as_dict(self) -> dict:
        return {
            "compilations": self.compilations,
            "timings": self.timings,
            "feedback_optimizations": self.feedback_optimizations,
            "pass_totals": self.pass_totals(),
            "traces": [t.as_dict() for t in self.traces],
            "execution": {
                "executions": self.executions,
                "codegen": self.codegen_executions,
                "vector": self.vector_executions,
                "scalar_fallbacks": self.scalar_fallbacks,
                "scalar_requested": self.scalar_requested,
                "kernels": list(self.execution_traces),
            },
        }

    def reset(self) -> None:
        """Zero every counter and drop every trace (metric registrations
        are kept — a shared registry stays shared)."""
        self.metrics.reset()
        self.execution_traces.clear()
        self.traces.clear()
