"""The compile-and-run service: a long-running daemon over compiler
sessions.

* :mod:`repro.serve.protocol` — the JSON-lines request/response schemas
  and error codes;
* :mod:`repro.serve.broker` — bounded admission, a worker pool of
  per-worker :class:`~repro.compiler.session.CompilerSession` objects
  sharing one metrics registry and one persistent disk cache, per-request
  deadlines, retry-with-backoff on transient backend failures, and
  graceful degradation to the scalar executor;
* :mod:`repro.serve.placement` — the fleet placement policy: route each
  request to the modeled-best (arch, config) pair across the broker's
  configured device fleet;
* :mod:`repro.serve.daemon` — the stdin/stdout loop behind
  ``repro serve`` (and the in-process path behind ``repro submit``),
  plus the unix-domain-socket front end (``repro serve --socket``) and
  the daemon-side ``watch`` telemetry streaming;
* :mod:`repro.serve.client` — the socket client the live tools
  (``repro top``, ``repro serve-trace``, ``repro loadgen --socket``)
  connect with;
* :mod:`repro.serve.cluster` — the sharded tier behind ``repro serve
  --shards N``: a consistent-hash router over N broker shards with
  hot-key replication, hedged retries, per-tenant quotas and graceful
  drain/restart (:mod:`repro.serve.hashring` provides the rendezvous
  hashing, :mod:`repro.serve.quota` the token buckets — see
  ``docs/sharding.md``).

See ``docs/serving.md`` for the protocol reference and the disk-cache
layout, and ``docs/architecture.md`` for where this layer sits.
"""

from .broker import Broker, BrokerConfig
from .client import SocketClient
from .cluster import ClusterConfig, Router, routing_key, run_cluster
from .daemon import SocketServer, run_daemon, serve_loop, serve_socket
from .placement import PlacementCandidate, PlacementDecision, choose_placement
from .protocol import ServeError, error_response, ok_response, validate_request

__all__ = [
    "Broker",
    "BrokerConfig",
    "ClusterConfig",
    "PlacementCandidate",
    "PlacementDecision",
    "Router",
    "ServeError",
    "SocketClient",
    "SocketServer",
    "choose_placement",
    "error_response",
    "ok_response",
    "routing_key",
    "run_cluster",
    "run_daemon",
    "serve_loop",
    "serve_socket",
    "validate_request",
]
