"""The async request broker: admission, workers, retries, degradation.

:class:`Broker` sits between the wire protocol (:mod:`repro.serve.daemon`)
and the compiler (:class:`~repro.compiler.session.CompilerSession`):

* **bounded admission** — at most ``workers + queue_limit`` requests are
  in flight; past that, :meth:`submit` answers ``queue_full`` immediately
  (the protocol's 429) instead of letting latency grow without bound;
* **worker pool over per-worker sessions** — each worker thread owns a
  private :class:`CompilerSession` (its own in-memory cache and pass
  pipeline), but all sessions share one :class:`MetricsRegistry` and one
  persistent :class:`~repro.pipeline.diskcache.DiskCache`, so the service
  has a single metrics surface and a single warm store;
* **per-request deadlines** — the clock starts at admission (queue wait
  eats into the budget); the deadline is pushed into the feedback driver
  (:func:`~repro.feedback.driver.deadline_scope`), so even a mid-SAFARA
  compile stops at the fence instead of holding a worker;
* **retry with exponential backoff and jitter** — failures classified
  transient by :func:`~repro.feedback.driver.classify_failure` are
  retried up to ``max_retries`` times, sleeping
  ``min(cap, base·2^attempt)`` scaled by deterministic jitter; permanent
  failures (parse errors, deterministic compiler bugs) fail fast with a
  structured, non-retryable error;
* **graceful degradation** — ``run`` requests under deadline pressure
  (remaining budget below ``degrade_threshold_ms``) are demoted from the
  vectorized executor to the scalar interpreter, and vector-engine
  fallbacks are observed through the PR 3 hook
  (:func:`~repro.gpu.vector_exec.fallback_listener`); both are counted
  with their reasons under ``serve.degradations.*``.

Everything is exported through the shared registry: ``serve.requests.*``,
``serve.rejected``, ``serve.retries``, ``serve.degradations.*``,
``serve.codegen.tier.*`` (execution tier answering each ``run``) and the
``serve.codegen.codegen_ms`` histogram, ``serve.wait_ms`` /
``serve.handle_ms`` histograms, the ``serve.latency_ms.<op>``
log-histograms (admission → response, quantile-exact), and the
``serve.queue_depth`` gauge, next to the sessions' ``cache.*`` /
``cache.disk.*`` / ``cache.fnobj.*`` / ``session.*`` metrics.

**Tracing** (PR 8): every admitted request is processed under a
:func:`~repro.obs.tracer.trace_scope` carrying its ``trace_id``
(client-supplied or broker-generated, echoed in the response) and a
bounded per-request span collector.  The broker synthesizes a root
``request`` span (admission → response) and a ``queue.wait`` span, so
the collector holds one connected tree — queue wait, placement, compile
pipeline, execute — and feeds it to the :class:`~repro.obs.flight.
FlightRecorder`, which retains the N slowest and all errored requests
for the ``trace`` op / ``repro serve-trace``.
"""

from __future__ import annotations

import hashlib
import threading
import time
import uuid
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from random import Random

from ..compiler.options import ALL_CONFIGS, SMALL_DIM_SAFARA
from ..compiler.session import CompileJob, CompilerSession
from ..errors import ConfigError
from ..executors import parse_executor
from ..feedback.driver import (
    FeedbackTimeout,
    classify_failure,
    deadline_scope,
)
from ..gpu.arch import arch_key, list_archs
from ..gpu.vector_exec import VectorUnsupported, fallback_listener
from ..lang.errors import MiniAccError
from ..obs.flight import FlightRecorder, RequestRecord, span_dict, to_chrome
from ..obs.metrics import MS_BUCKETS, MetricsRegistry
from ..obs.tracer import Span, request_collector, span, trace_scope
from ..pipeline.diskcache import DiskCache
from . import protocol
from .placement import PlacementDecision, choose_placement
from .protocol import ServeError


@dataclass(frozen=True, slots=True)
class BrokerConfig:
    """Service tuning knobs (see ``docs/serving.md`` for semantics)."""

    #: Worker threads, each with a private compiler session.
    workers: int = 4
    #: Requests allowed to *wait* beyond the ones being worked on; the
    #: total in-flight bound is ``workers + queue_limit``.
    queue_limit: int = 32
    #: Budget per request (admission → response) when the request does
    #: not carry its own ``deadline_ms``.
    default_deadline_ms: float = 30_000.0
    #: Retry attempts after the first try, for transient failures only.
    max_retries: int = 3
    #: Exponential-backoff base and cap (milliseconds).
    backoff_base_ms: float = 25.0
    backoff_cap_ms: float = 1_000.0
    #: Backoff is scaled by ``1 + jitter·U[0,1)`` to decorrelate retries.
    jitter: float = 0.25
    #: ``run`` requests with less remaining budget than this are demoted
    #: to the scalar executor rather than risk a vector plan + fallback.
    degrade_threshold_ms: float = 250.0
    #: Persistent cache directory (``None`` → memory-only service).
    cache_dir: str | None = None
    #: Size bound for the persistent tier.
    cache_max_bytes: int = 256 * 1024 * 1024
    #: In-memory compile-cache entries per worker session.
    cache_size: int = 512
    #: Configuration used when a request names none.
    default_config: str = SMALL_DIM_SAFARA.name
    #: The device fleet: arch-registry profile names, in preference
    #: order (ties in modeled time go to the earlier entry).  ``None``
    #: or empty → single-arch service (each config's own arch).  With a
    #: fleet, ``run``/``compile`` requests that do not pin an ``arch``
    #: are routed to the modeled-best profile, and ``tune`` requests
    #: search the fleet as an axis (see docs/serving.md).
    fleet: tuple[str, ...] | None = None
    #: Resumable tuning-ledger path for ``tune`` requests.  ``None``
    #: defaults to ``<cache_dir>/tune_ledger.json`` when a cache
    #: directory is configured (warm re-tunes then survive restarts,
    #: like the compile cache), else tuning runs without a ledger.
    tune_ledger: str | None = None
    #: Flight-recorder retention: the N slowest requests…
    flight_slow: int = 32
    #: …and the most recent M errored requests keep their span trees.
    flight_errors: int = 64
    #: Span budget per request (the per-request collector's memory bound;
    #: overflowing spans are counted in ``dropped_spans``, never lost
    #: silently).
    trace_max_spans: int = 512
    #: Seed for the jitter RNG (deterministic backoff schedules in tests).
    seed: int = 0


class Broker:
    """Bounded, retrying, deadline-aware front end over compiler sessions."""

    def __init__(self, config: BrokerConfig | None = None):
        self.config = config or BrokerConfig()
        if self.config.workers < 1:
            raise ValueError("workers must be >= 1")
        self.metrics = MetricsRegistry()
        self.disk_cache = (
            DiskCache(
                self.config.cache_dir,
                max_bytes=self.config.cache_max_bytes,
                metrics=self.metrics,
            )
            if self.config.cache_dir is not None
            else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._sessions = threading.local()
        self._all_sessions: list[CompilerSession] = []
        self._lock = threading.Lock()
        self._pending = 0
        self._stopping = False
        self._rng = Random(self.config.seed)
        self._sleep = time.sleep  # overridable for tests
        self._started = time.monotonic()
        self.flight = FlightRecorder(
            max_slow=self.config.flight_slow,
            max_errors=self.config.flight_errors,
        )
        #: Per-request scratch (one worker thread processes one request
        #: at a time): degradation events attributed to the in-flight
        #: request, harvested into its flight record.
        self._req = threading.local()
        # A misconfigured fleet fails at construction, not per-request.
        self._fleet: tuple[str, ...] = tuple(
            arch_key(name) for name in (self.config.fleet or ())
        )

        m = self.metrics
        self._queue_depth = m.gauge(
            "serve.queue_depth", "requests admitted and not yet answered"
        )
        self._rejected = m.counter(
            "serve.rejected", "requests refused at admission (queue_full)"
        )
        self._retries = m.counter(
            "serve.retries", "retry attempts after transient failures"
        )
        self._deadline_exceeded = m.counter(
            "serve.deadline_exceeded", "requests that ran out of budget"
        )
        self._degraded_total = m.counter(
            "serve.degradations", "executions demoted to the scalar engine"
        )
        self._wait_ms = m.histogram(
            "serve.wait_ms", MS_BUCKETS, help="admission → worker pickup"
        )
        self._handle_ms = m.histogram(
            "serve.handle_ms", MS_BUCKETS, help="worker pickup → response"
        )
        self._placements = m.counter(
            "serve.placement.decisions", "fleet placement decisions made"
        )
        self._placement_pinned = m.counter(
            "serve.placement.pinned", "requests that pinned an arch explicitly"
        )
        self._placement_ms = m.histogram(
            "serve.placement.model_ms",
            help="modeled time of the chosen placement",
        )
        # Quantile-exact admission→response latency per op, registered
        # eagerly so the telemetry surface is stable from request zero.
        self._latency = {
            op: m.log_histogram(
                f"serve.latency_ms.{op}",
                help=f"admission → response latency of {op} requests",
            )
            for op in ("compile", "run", "tune", "stats")
        }

    # -- sessions ----------------------------------------------------------

    def _session(self) -> CompilerSession:
        """The calling worker thread's session (created on first use)."""
        session = getattr(self._sessions, "session", None)
        if session is None:
            session = CompilerSession(
                cache_size=self.config.cache_size,
                disk_cache=self.disk_cache,
                metrics=self.metrics,
            )
            self._sessions.session = session
            with self._lock:
                self._all_sessions.append(session)
        return session

    # -- admission ---------------------------------------------------------

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    @staticmethod
    def _trace_id_for(request) -> str:
        """The request's correlation id: the client's ``trace_id`` when
        present and well-formed, else a fresh broker-generated one (also
        for rejections — every response is correlatable)."""
        supplied = request.get("trace_id") if isinstance(request, dict) else None
        if (
            isinstance(supplied, str)
            and 0 < len(supplied) <= protocol.MAX_TRACE_ID_LEN
        ):
            return supplied
        return uuid.uuid4().hex[:16]

    def submit(self, request: dict) -> "Future[dict]":
        """Admit a request; always returns a future resolving to a
        response dict (rejections resolve immediately)."""
        request_id = request.get("id") if isinstance(request, dict) else None
        trace_id = self._trace_id_for(request)
        try:
            protocol.validate_request(request)
        except ServeError as exc:
            return self._rejection(request_id, exc.code, exc.message, trace_id)
        op = request["op"]
        self.metrics.counter(
            f"serve.requests.{op}", f"admitted {op} requests"
        )  # registered even if this one is rejected, for a stable surface
        with self._lock:
            if self._stopping:
                return self._rejection(
                    request_id,
                    protocol.SHUTTING_DOWN,
                    "daemon is draining; resubmit to the next instance",
                    trace_id,
                )
            capacity = self.config.workers + self.config.queue_limit
            if self._pending >= capacity:
                self._rejected.inc()
                return self._rejection(
                    request_id,
                    protocol.QUEUE_FULL,
                    f"admission queue full ({self._pending} in flight, "
                    f"capacity {capacity}); retry later",
                    trace_id,
                )
            self._pending += 1
            self._queue_depth.set(self._pending)
        self.metrics.counter(f"serve.requests.{op}").inc()
        deadline_ms = request.get("deadline_ms") or self.config.default_deadline_ms
        enqueue_t = time.monotonic()
        deadline = enqueue_t + deadline_ms / 1000.0
        return self._pool.submit(
            self._process, request, enqueue_t, deadline, trace_id
        )

    def _rejection(
        self, request_id, code: str, message: str, trace_id: str | None = None
    ) -> "Future[dict]":
        """An immediately-resolved error future.  Rejections are real
        errors to the client, so they are flight-recorded too (spanless:
        they never reached a worker) — the recorder can explain a
        ``queue_full`` burst after the fact."""
        future: "Future[dict]" = Future()
        future.set_result(
            protocol.error_response(
                request_id, code, message, trace_id=trace_id
            )
        )
        if trace_id is not None:
            self.flight.record(
                RequestRecord(
                    trace_id=trace_id,
                    op="(rejected)",
                    ok=False,
                    duration_ms=0.0,
                    error_code=code,
                )
            )
        return future

    def handle(self, request: dict) -> dict:
        """Synchronous convenience: submit and wait (the one-shot client)."""
        return self.submit(request).result()

    # -- processing --------------------------------------------------------

    def _process(
        self, request: dict, enqueue_t: float, deadline: float, trace_id: str
    ) -> dict:
        request_id = request.get("id")
        op = request["op"]
        start = time.monotonic()
        wait_ms = (start - enqueue_t) * 1000.0
        self._wait_ms.observe(wait_ms)
        collector = request_collector(self.config.trace_max_spans)
        #: Worker-pickup instant on the collector clock — the anchor both
        #: synthesized spans (queue.wait, the request root) are placed
        #: from, so their relative order never depends on how long the
        #: bookkeeping after the response took.
        anchor_us = collector._now_us()
        self._req.degradations = []
        try:
            with trace_scope(trace_id, collector):
                self._synth_span(
                    collector,
                    trace_id,
                    "queue.wait",
                    anchor_us - wait_ms * 1000.0,
                    wait_ms * 1000.0,
                    wait_ms=round(wait_ms, 4),
                )
                with span("serve.request", op=op, id=request_id) as sp:
                    if op == "compile":
                        response = self._handle_compile(request, deadline)
                    elif op == "run":
                        response = self._handle_run(request, deadline)
                    elif op == "tune":
                        response = self._handle_tune(request, deadline)
                    elif op == "stats":
                        response = protocol.ok_response(request_id, self.stats())
                    elif op == "trace":
                        response = protocol.ok_response(
                            request_id, self._handle_trace(request)
                        )
                    elif op == "watch":
                        response = protocol.ok_response(
                            request_id, self.telemetry_snapshot()
                        )
                    elif op == "drain":
                        # Cluster-router op: a single-process broker has
                        # no shards to drain (use shutdown instead).
                        response = protocol.error_response(
                            request_id,
                            protocol.BAD_REQUEST,
                            "op 'drain' targets a cluster router shard; "
                            "this is a single-process daemon (use "
                            "'shutdown' to drain it)",
                        )
                    else:  # "shutdown" — answered here, drained by the daemon
                        response = protocol.ok_response(
                            request_id, {"stopping": True}
                        )
                    sp.set(ok=response["ok"])
                    if not response["ok"]:
                        sp.set(error=response["error"]["code"])
        except ServeError as exc:
            response = protocol.error_response(
                request_id, exc.code, exc.message, retryable=exc.retryable
            )
        except Exception as exc:  # a service bug must still answer
            response = protocol.error_response(
                request_id, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._handle_ms.observe((time.monotonic() - start) * 1000.0)
            with self._lock:
                self._pending -= 1
                self._queue_depth.set(self._pending)
        response["trace_id"] = trace_id
        total_ms = (time.monotonic() - enqueue_t) * 1000.0
        hist = self._latency.get(op)
        if hist is not None:
            hist.observe(total_ms)
        # One connected tree per request: synthesize the root span
        # covering admission → response, then hand the collector's spans
        # to the flight recorder.
        # Root span from queue-wait start to now, with 100 µs of slack on
        # both ends so it strictly contains every child under containment
        # nesting; the honest duration rides in the args.
        root_ts = anchor_us - wait_ms * 1000.0 - 100.0
        self._synth_span(
            collector,
            trace_id,
            "request",
            root_ts,
            collector._now_us() + 100.0 - root_ts,
            op=op,
            ok=response["ok"],
            duration_ms=round(total_ms, 4),
        )
        self.flight.record(
            RequestRecord(
                trace_id=trace_id,
                op=op,
                ok=response["ok"],
                duration_ms=total_ms,
                error_code=(
                    None if response["ok"] else response["error"]["code"]
                ),
                spans=[span_dict(s) for s in collector.spans],
                degradations=list(
                    getattr(self._req, "degradations", None) or ()
                ),
                dropped_spans=collector.dropped,
            )
        )
        return response

    @staticmethod
    def _synth_span(
        collector, trace_id: str, name: str, ts_us: float, dur_us: float, **args
    ) -> None:
        """Record a span with explicit placement into the per-request
        collector — for intervals the worker thread could not bracket
        live (the queue wait happens before any worker runs; the request
        root is only known complete once the response exists)."""
        sp = Span(
            collector, name, "serve", {"trace_id": trace_id, **args}
        )
        sp.ts_us = ts_us
        sp.dur_us = dur_us
        collector._record(sp)

    def _degradation(self, reason: str, **detail) -> None:
        """Attribute one degradation event to the in-flight request (the
        flight record's ``degradations`` list) and mark it on the trace."""
        from ..obs.tracer import current_trace_id

        event = {"reason": reason, "trace_id": current_trace_id(), **detail}
        events = getattr(self._req, "degradations", None)
        if events is not None:
            events.append(event)
        self._synth_degradation_span(event)

    def _synth_degradation_span(self, event: dict) -> None:
        from ..obs.tracer import current_trace

        ctx = current_trace()
        if ctx is not None and ctx.collector is not None:
            sp = Span(ctx.collector, "degradation", "serve", dict(event))
            sp.ts_us = ctx.collector._now_us()
            ctx.collector._record(sp)

    def _remaining_ms(self, deadline: float) -> float:
        return (deadline - time.monotonic()) * 1000.0

    def _config_for(self, request: dict):
        name = request.get("config") or self.config.default_config
        config = ALL_CONFIGS.get(name)
        if config is None:
            raise ServeError(
                protocol.UNKNOWN_CONFIG,
                f"unknown config {name!r}; known: {', '.join(sorted(ALL_CONFIGS))}",
            )
        saturate = request.get("saturate")
        if saturate is not None and saturate != config.saturate:
            config = config.derive(saturate=bool(saturate))
        return config

    @staticmethod
    def _int_env(request: dict) -> dict[str, int] | None:
        env = request.get("env")
        return {k: int(v) for k, v in env.items()} if env else None

    def _arch_for(self, request: dict) -> str | None:
        """The canonical key of the request's pinned arch, or ``None``.

        An unregistered name is a permanent ``unknown_arch`` failure —
        the client must pick from the advertised registry (any
        registered profile may be pinned, fleet member or not)."""
        name = request.get("arch")
        if name is None:
            return None
        try:
            return arch_key(name)
        except ConfigError:
            known = ", ".join(list_archs())
            raise ServeError(
                protocol.UNKNOWN_ARCH,
                f"unknown arch {name!r}; registered profiles: {known}"
                + (
                    f"; fleet: {', '.join(self._fleet)}"
                    if self._fleet
                    else ""
                ),
            ) from None

    def _place(
        self,
        session: CompilerSession,
        request: dict,
        config,
        env: dict[str, int],
    ) -> "PlacementDecision":
        """Run the fleet placement policy under a ``placement`` span,
        exporting ``serve.placement.*`` metrics."""
        with span("placement", fleet=",".join(self._fleet)) as sp:
            decision = choose_placement(
                session,
                request["source"],
                config,
                self._fleet,
                env,
                kernel_name=request.get("kernel"),
            )
            sp.set(arch=decision.arch, model_ms=decision.model_ms)
        self._placements.inc()
        self._placement_ms.observe(decision.model_ms)
        self.metrics.counter(
            f"serve.placement.chosen.{decision.arch}",
            "placements routed to this arch",
        ).inc()
        return decision

    def _handle_compile(self, request: dict, deadline: float) -> dict:
        """Compile with retry-on-transient inside the request deadline."""
        request_id = request.get("id")
        session = self._session()
        config = self._config_for(request)
        env = self._int_env(request)
        pinned = self._arch_for(request)
        placement = None
        if pinned is not None:
            config = config.derive(arch=pinned)
            self._placement_pinned.inc()
        elif self._fleet and env:
            # Placement compiles every fleet variant through the shared
            # cache; if it fails, fall through to the single-arch path,
            # which owns the retry/error taxonomy and will surface the
            # same failure with the right code.
            try:
                placement = self._place(session, request, config, env)
                config = config.derive(arch=placement.arch)
            except Exception:
                self.metrics.counter(
                    "serve.placement.errors",
                    "placement attempts that failed and fell through",
                ).inc()
        job = CompileJob(
            source=request["source"],
            config=config,
            kernel_name=request.get("kernel"),
            env=env,
        )
        key = job.key()
        tier = (
            "memory"
            if session.cache.peek(key)
            else "disk"
            if self.disk_cache is not None and self.disk_cache.peek(key)
            else None
        )

        attempt = 0
        while True:
            if self._remaining_ms(deadline) <= 0.0:
                self._deadline_exceeded.inc()
                return protocol.error_response(
                    request_id,
                    protocol.DEADLINE_EXCEEDED,
                    f"deadline passed after {attempt} attempt(s)",
                )
            try:
                with span(
                    "compile",
                    config=config.name,
                    arch=arch_key(config.arch),
                    attempt=attempt,
                ), deadline_scope(deadline):
                    program = session.compile_source(
                        job.source,
                        job.config,
                        kernel_name=job.kernel_name,
                        env=job.env,
                    )
                break
            except MiniAccError as exc:
                return protocol.error_response(
                    request_id, protocol.PARSE_ERROR, str(exc)
                )
            except Exception as exc:
                if classify_failure(exc) != "transient":
                    return protocol.error_response(
                        request_id,
                        protocol.COMPILE_ERROR,
                        f"{type(exc).__name__}: {exc}",
                    )
                if isinstance(exc, FeedbackTimeout) and self._remaining_ms(
                    deadline
                ) <= 0.0:
                    self._deadline_exceeded.inc()
                    return protocol.error_response(
                        request_id, protocol.DEADLINE_EXCEEDED, str(exc)
                    )
                if attempt >= self.config.max_retries:
                    return protocol.error_response(
                        request_id,
                        protocol.TRANSIENT_FAILURE,
                        f"still failing after {attempt + 1} attempts: "
                        f"{type(exc).__name__}: {exc}",
                    )
                self._backoff(attempt, deadline)
                attempt += 1
                self._retries.inc()

        result: dict = {
            "config": config.name,
            "arch": arch_key(config.arch),
            "cache_key": key,
            "cached": tier,
            "attempts": attempt + 1,
            "kernels": [
                {
                    "name": k.name,
                    "registers": k.ptxas.registers,
                    "spill_bytes": k.ptxas.spill_bytes,
                    "backend_compilations": k.backend_compilations,
                }
                for k in program.kernels
            ],
        }
        if env:
            timing = session.time_program(program, env)
            result["timing"] = {
                "total_ms": round(timing.total_ms, 6),
                "kernels": [
                    {
                        "name": kt.name,
                        "time_ms": round(kt.time_ms, 6),
                        "bound": kt.bound,
                    }
                    for kt in timing.kernels
                ],
            }
        if placement is not None:
            result["placement"] = placement.as_dict()
        return protocol.ok_response(request_id, result)

    def _backoff(self, attempt: int, deadline: float) -> None:
        """Sleep ``min(cap, base·2^attempt)·(1 + jitter·U[0,1))``, clipped
        to the remaining budget."""
        c = self.config
        backoff_ms = min(c.backoff_cap_ms, c.backoff_base_ms * (2.0**attempt))
        with self._lock:
            scale = 1.0 + c.jitter * self._rng.random()
        sleep_ms = min(backoff_ms * scale, max(0.0, self._remaining_ms(deadline)))
        if sleep_ms > 0.0:
            self._sleep(sleep_ms / 1000.0)

    def _handle_run(self, request: dict, deadline: float) -> dict:
        """Functional execution with deadline-pressure degradation."""
        from ..gpu.interpreter import build_run_args
        from ..ir.builder import build_module
        from ..lang.parser import parse_program

        request_id = request.get("id")
        session = self._session()
        try:
            requested = parse_executor(request.get("executor", "auto")).value
        except ConfigError as exc:
            raise ServeError(protocol.BAD_REQUEST, str(exc)) from None
        pinned = self._arch_for(request)
        try:
            with span("compile", phase="frontend"):
                fn = build_module(parse_program(request["source"])).functions[0]
        except MiniAccError as exc:
            return protocol.error_response(
                request_id, protocol.PARSE_ERROR, str(exc)
            )
        # Fleet routing: model every fleet variant's time at the run's
        # problem size and record the verdict (a pinned arch skips the
        # policy; placement failures fall through to an unrouted run).
        placement = None
        env_int = self._int_env(request) or {}
        if pinned is not None:
            self._placement_pinned.inc()
        elif self._fleet and env_int:
            try:
                placement = self._place(
                    session, request, self._config_for(request), env_int
                )
            except Exception:
                self.metrics.counter(
                    "serve.placement.errors",
                    "placement attempts that failed and fell through",
                ).inc()
        try:
            run_args = build_run_args(fn, request.get("env") or {})
        except ValueError as exc:
            raise ServeError(protocol.BAD_REQUEST, str(exc)) from None

        executor = requested
        degraded: str | None = None
        if (
            requested == "auto"
            and self._remaining_ms(deadline) < self.config.degrade_threshold_ms
        ):
            executor = "scalar"
            degraded = "deadline_pressure"
            self._degraded_total.inc()
            self.metrics.counter(
                "serve.degradations.deadline",
                "runs demoted to scalar under deadline pressure",
            ).inc()
            self._degradation(
                "deadline_pressure",
                remaining_ms=round(self._remaining_ms(deadline), 3),
            )

        def on_fallback(kernel: str, reason: str) -> None:
            self._degraded_total.inc()
            self.metrics.counter(
                "serve.degradations.vector_fallback",
                "vector executions that fell back to the scalar engine",
            ).inc()
            self._degradation("vector_fallback", kernel=kernel, detail=reason)

        # Warm hot path: the generated-function cache is keyed by the
        # request source's content hash, and the generated source text is
        # persisted in its own disk envelope — a restarted daemon rebinds
        # text instead of re-planning.
        content_key = hashlib.sha256(
            ("run:" + request["source"]).encode()
        ).hexdigest()
        codegen_src = None
        if self.disk_cache is not None:
            _, codegen_src = self.disk_cache.get_entry(content_key)

        try:
            with fallback_listener(on_fallback):
                _arrays, stats, info = session.execute(
                    fn,
                    run_args,
                    executor=executor,
                    content_key=content_key,
                    codegen_source=codegen_src,
                )
        except VectorUnsupported as exc:
            return protocol.error_response(
                request_id,
                protocol.EXECUTION_ERROR,
                f"vector executor unsupported: {exc}",
            )
        except Exception as exc:
            return protocol.error_response(
                request_id,
                protocol.EXECUTION_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        self.metrics.counter(
            f"serve.codegen.tier.{info.used}",
            "run requests answered by this execution tier",
        ).inc()
        if info.codegen_ms is not None:
            self.metrics.histogram(
                "serve.codegen.codegen_ms",
                help="time obtaining the generated program per run request",
            ).observe(info.codegen_ms)
        if (
            info.used == "codegen"
            and codegen_src is None
            and self.disk_cache is not None
        ):
            from ..codegen import numpy_source

            src = numpy_source.function_cache().source_for(content_key)
            if src is not None:
                self.disk_cache.put(content_key, None, codegen=src)
        result = {
            "kernel": fn.name,
            "arch": (
                placement.arch
                if placement is not None
                else pinned
                if pinned is not None
                else arch_key(self._config_for(request).arch)
            ),
            "executor": {
                "requested": requested,
                "used": info.used,
                "fallback_reason": info.fallback_reason,
                "degraded": degraded,
            },
            "stats": {
                "loads": stats.loads,
                "stores": stats.stores,
                "flops": stats.flops,
                "iterations": stats.iterations,
            },
            "elements": info.elements,
        }
        if placement is not None:
            result["placement"] = placement.as_dict()
        return protocol.ok_response(request_id, result)

    def _tune_ledger_path(self) -> str | None:
        if self.config.tune_ledger is not None:
            return self.config.tune_ledger
        if self.config.cache_dir is not None:
            import os

            return os.path.join(self.config.cache_dir, "tune_ledger.json")
        return None

    def _handle_tune(self, request: dict, deadline: float) -> dict:
        """Autotune under the request deadline (the deadline scope is
        re-installed inside ``compile_many`` workers, so even a
        mid-SAFARA trial compile stops at the fence)."""
        from ..errors import TuneError
        from ..tune import tune

        request_id = request.get("id")
        session = self._session()
        base = self._config_for(request)
        env = self._int_env(request) or {}
        pinned = self._arch_for(request)
        archs = None
        if pinned is not None:
            base = base.derive(arch=pinned)
            self._placement_pinned.inc()
        elif self._fleet:
            archs = list(self._fleet)
        try:
            with deadline_scope(deadline):
                result = tune(
                    request["source"],
                    env=env,
                    launches=request.get("launches", 1),
                    base=base,
                    strategy=request.get("strategy", "beam"),
                    budget=request.get("budget"),
                    session=session,
                    ledger=self._tune_ledger_path(),
                    kernel_name=request.get("kernel"),
                    archs=archs,
                )
        except MiniAccError as exc:
            return protocol.error_response(
                request_id, protocol.PARSE_ERROR, str(exc)
            )
        except FeedbackTimeout as exc:
            self._deadline_exceeded.inc()
            return protocol.error_response(
                request_id, protocol.DEADLINE_EXCEEDED, str(exc)
            )
        except TuneError as exc:
            return protocol.error_response(
                request_id, protocol.TUNE_ERROR, str(exc)
            )
        except Exception as exc:
            return protocol.error_response(
                request_id,
                protocol.TUNE_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        return protocol.ok_response(request_id, result.as_dict())

    # -- introspection & lifecycle ----------------------------------------

    def stats(self) -> dict:
        """The service-wide observability snapshot (the ``stats`` op)."""
        out: dict = {
            "broker": {
                "workers": self.config.workers,
                "queue_limit": self.config.queue_limit,
                "pending": self.pending,
                "stopping": self._stopping,
                "sessions": len(self._all_sessions),
                "fleet": list(self._fleet),
            },
            "metrics": self.metrics.as_dict(),
            "flight": {
                "recorded": self.flight.recorded,
                "slow_retained": len(self.flight.slowest()),
                "errors_retained": len(self.flight.errors()),
            },
        }
        if self.disk_cache is not None:
            out["disk_cache"] = self.disk_cache.as_dict()
        return out

    def _handle_trace(self, request: dict) -> dict:
        """The ``trace`` op: the flight recorder's retained traces.

        With a ``trace_id`` field, answers for that one request (the op's
        own correlation id doubles as the selector — ``found: false``
        when it aged out of retention, not an error).  ``perfetto: true``
        additionally renders the Chrome ``trace_event`` document (of the
        selected record, or of the slowest retained one)."""
        perfetto = bool(request.get("perfetto"))
        wanted = request.get("trace_id")
        if wanted:
            rec = self.flight.get(wanted)
            out: dict = {
                "trace_id": wanted,
                "found": rec is not None,
                "record": rec.as_dict() if rec is not None else None,
            }
            if perfetto and rec is not None:
                out["chrome"] = to_chrome(rec)
            return out
        out = self.flight.snapshot()
        if perfetto:
            slowest = self.flight.slowest()
            if slowest:
                out["chrome"] = to_chrome(slowest[0])
        return out

    def telemetry_snapshot(self) -> dict:
        """One live-telemetry frame (the ``watch`` op; ``repro top``).

        Counters are cumulative — clients diff consecutive frames
        against ``ts`` (a monotonic-seconds stamp) for rates.  Latency
        quantiles come from the ``serve.latency_ms.*`` log-histograms.
        """
        m = self.metrics

        def value(name: str) -> float:
            metric = m.get(name)
            v = metric.value if metric is not None else 0
            return int(v) if v == int(v) else round(v, 4)

        def rate(hits: str, misses: str) -> float | None:
            h, miss = value(hits), value(misses)
            return round(h / (h + miss), 4) if h + miss else None

        requests = {
            op: value(f"serve.requests.{op}")
            for op in protocol.VALID_OPS
            if m.get(f"serve.requests.{op}") is not None
        }
        placement = {
            name.rsplit(".", 1)[1]: value(name)
            for name in m.names()
            if name.startswith("serve.placement.chosen.")
        }
        tiers = {
            name.rsplit(".", 1)[1]: value(name)
            for name in m.names()
            if name.startswith("serve.codegen.tier.")
        }
        return {
            "ts": round(time.monotonic(), 6),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "queue_depth": self.pending,
            "stopping": self._stopping,
            "requests": requests,
            "requests_total": sum(requests.values()),
            "rejected": value("serve.rejected"),
            "retries": value("serve.retries"),
            "deadline_exceeded": value("serve.deadline_exceeded"),
            "degradations": {
                "total": value("serve.degradations"),
                "deadline": value("serve.degradations.deadline"),
                "vector_fallback": value("serve.degradations.vector_fallback"),
            },
            "cache": {
                "memory_hit_rate": rate("cache.hits", "cache.misses"),
                "disk_hit_rate": rate("cache.disk.hits", "cache.disk.misses"),
                "fnobj_hit_rate": rate("cache.fnobj.hits", "cache.fnobj.misses"),
            },
            "placement": placement,
            "codegen_tiers": tiers,
            "latency_ms": {
                op: hist.as_dict()
                for op, hist in self._latency.items()
                if hist.count
            },
            "flight_recorded": self.flight.recorded,
        }

    def drain(self) -> None:
        """Stop admitting, then wait for in-flight requests to finish."""
        with self._lock:
            self._stopping = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()
