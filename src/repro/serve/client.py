"""A line-protocol client for the unix-socket daemon.

:class:`SocketClient` speaks the JSON-lines protocol of
:mod:`repro.serve.daemon` over one connection: sequential
request/response for the ordinary ops, plus a generator interface over
the ``watch`` stream.  It is deliberately synchronous and
single-threaded — it exists for the CLI tools (``repro top``, ``repro
serve-trace``, ``repro submit --socket``, ``repro loadgen --socket``)
and the test suite, not for high-fan-out clients (those should hold one
connection per in-flight request, exactly like this class does).
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any, Iterator


class SocketClient:
    """One connection to a ``repro serve --socket PATH`` daemon."""

    def __init__(self, path: str, *, timeout: float | None = 30.0):
        self.path = path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(path)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")
        self._ids = itertools.count(1)

    # -- plumbing ----------------------------------------------------------

    def send(self, request: dict) -> Any:
        """Send one request line; returns the ``id`` it was sent under."""
        request = dict(request)
        request.setdefault("id", next(self._ids))
        self._wfile.write(json.dumps(request) + "\n")
        self._wfile.flush()
        return request["id"]

    def recv(self) -> dict:
        """The next response line (whatever request it answers)."""
        line = self._rfile.readline()
        if not line:
            raise ConnectionError(f"daemon at {self.path} closed the stream")
        return json.loads(line)

    def request(self, request: dict) -> dict:
        """Send and wait for *this* request's response (responses to
        other ids — e.g. a concurrent watch frame — are skipped; this
        client sends sequentially, so nothing else is in flight)."""
        request_id = self.send(request)
        while True:
            response = self.recv()
            if response.get("id") == request_id:
                return response

    # -- ops ---------------------------------------------------------------

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def trace(
        self, trace_id: str | None = None, *, perfetto: bool = False
    ) -> dict:
        request: dict = {"op": "trace", "perfetto": perfetto}
        if trace_id is not None:
            request["trace_id"] = trace_id
        return self.request(request)

    def watch(
        self,
        *,
        interval_ms: float = 1000.0,
        count: int | None = None,
    ) -> Iterator[dict]:
        """Yield telemetry frames (the ``result`` payloads) as they
        arrive; ends after ``count`` frames (or when closed)."""
        request: dict = {"op": "watch", "interval_ms": interval_ms}
        if count is not None:
            request["count"] = count
        request_id = self.send(request)
        received = 0
        while count is None or received < count:
            response = self.recv()
            if response.get("id") != request_id:
                continue
            if not response.get("ok"):
                raise ConnectionError(
                    f"watch failed: {response.get('error')}"
                )
            received += 1
            yield response["result"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._rfile.close()
            self._wfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
