"""The sharded serving tier: a consistent-hash router over N broker
shards.

One :class:`Router` owns the client-facing stream or socket (it
duck-types :class:`~repro.serve.broker.Broker`, so the daemon front ends
in :mod:`repro.serve.daemon` and the load generator drive it unchanged)
and spreads keyed requests (``compile`` / ``run`` / ``tune``) over N
shards, each a full broker — worker pool, retries, deadlines, placement
— sharing one content-addressed disk-cache namespace.  See
``docs/sharding.md`` for the architecture and failure matrix.

* **Routing** — each request's content-addressed routing key (source +
  config + kernel + arch + env shape) is rendezvous-hashed over the live
  shards (:mod:`repro.serve.hashring`); the same key always lands on the
  same shard, so per-shard in-memory caches stay hot, and compile/run
  traffic for one kernel co-locates.
* **Hot-key replication** — keys seen often enough (top-K by hit count)
  rotate over their first ``replication`` ranks instead of pinning to
  rank 0, so one viral kernel does not saturate a single shard.  The
  rank order is a permutation per key, so replicas are always distinct
  shards.
* **Hedged retries** — after a p95-derived delay (of observed
  router→shard service time) the router sends the same request to the
  next-ranked shard; the first response wins and the loser is counted
  (``cluster.hedges`` / ``cluster.hedge_wins`` / ``cluster.hedge_wasted``).
  Duplicated work is safe: keyed ops are deterministic and cached.
* **Admission quotas** — with a configured per-tenant rate, keyed
  requests charge a token bucket keyed by the protocol's ``tenant``
  field before routing (:mod:`repro.serve.quota`); an empty bucket
  answers the retryable ``quota_exceeded``.
* **Drain/restart** — the ``drain`` op (``repro cluster-drain``) marks a
  shard draining (no new routes), waits out its in-flight requests,
  stops it, and optionally restarts it.  The restarted shard rejoins
  over the shared disk tier, so its warm keys survive — zero warm-cache
  loss across the cycle.
* **Tracing** — the router stamps every forwarded request with its
  ``trace_id``, so the shard's span tree carries the router-visible
  correlation id: one request, one connected tree, findable via the
  ``trace`` op on the router (which fans out to the shards).

Shards come in two kinds behind one interface: :class:`LocalShard`
(an in-process broker — deterministic, used by tests and the regression
ledger) and :class:`ProcessShard` (a ``repro serve --socket`` daemon
subprocess per shard — what ``repro serve --shards N`` runs).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field, replace

from ..obs.metrics import MetricsRegistry
from . import hashring, protocol
from .broker import Broker, BrokerConfig
from .client import SocketClient
from .protocol import ServeError
from .quota import TenantQuotas

__all__ = [
    "ClusterConfig",
    "LocalShard",
    "ProcessShard",
    "Router",
    "routing_key",
    "run_cluster",
]

#: Ops that carry a routable content key (everything else is control
#: plane, handled by the router itself).
KEYED_OPS = frozenset({"compile", "run", "tune"})


def routing_key(request: dict) -> str:
    """The content-addressed routing key of a keyed request.

    Deliberately excludes the ``op`` *and* the ``env``: a ``compile``, a
    ``run`` at any problem size, and a ``tune`` of the same kernel all
    hash identically, so every request for one kernel lands on the shard
    whose in-memory tiers (compile cache, function objects) are already
    hot for it.  What it does include — source, config, kernel, arch —
    is exactly what distinguishes cache entries that could never share a
    warm tier.
    """
    material = {
        "source": request.get("source", ""),
        "config": request.get("config"),
        "kernel": request.get("kernel"),
        "arch": request.get("arch"),
    }
    blob = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True, slots=True)
class ClusterConfig:
    """Router tuning knobs (see ``docs/sharding.md`` for semantics)."""

    #: Number of broker shards behind the router.
    shards: int = 2
    #: Per-shard broker configuration.  Give it a ``cache_dir`` — the
    #: shared disk namespace is what makes drain/restart lossless.
    broker: BrokerConfig = field(default_factory=BrokerConfig)
    #: Ranks a hot key may be served from (≥2 enables replication).
    replication: int = 2
    #: Hot-key set size (top-K keys by hit count)…
    hot_key_count: int = 8
    #: …and the hit count below which a key is never considered hot.
    hot_key_min_hits: int = 3
    #: Fixed hedge delay in ms; ``None`` derives it per request as
    #: ``hedge_multiplier × p95(shard service ms)`` clamped to
    #: ``[hedge_min_ms, hedge_max_ms]`` (no hedging until 20 samples).
    hedge_after_ms: float | None = None
    hedge_multiplier: float = 3.0
    hedge_min_ms: float = 50.0
    hedge_max_ms: float = 2_000.0
    #: Per-tenant admission: tokens/second and bucket ceiling.  ``None``
    #: rate disables quotas entirely.
    tenant_rate: float | None = None
    tenant_burst: float = 10.0
    #: Router threads (each carries one in-flight request end to end,
    #: including its hedge wait) and the extra requests allowed to queue.
    router_workers: int = 16
    queue_limit: int = 64
    #: ``True`` → one ``repro serve --socket`` subprocess per shard;
    #: ``False`` → in-process brokers (tests, regression ledger).
    process_shards: bool = False
    #: Directory for the per-shard unix sockets (``None`` → a temp dir).
    socket_dir: str | None = None
    #: How long to wait for a shard subprocess socket to appear.
    spawn_timeout_s: float = 30.0


class _ShardConnection:
    """One multiplexed connection to a shard daemon: requests are
    re-numbered onto an internal id space, a reader thread resolves each
    response into its caller's future (responses arrive out of order),
    and the original request id is restored before the future resolves.

    Unlike :class:`~repro.serve.client.SocketClient` (sequential, one
    request in flight) this carries every in-flight request the router
    sends a shard, which is what makes hedging and fan-out possible over
    a single descriptor.
    """

    def __init__(self, path: str, *, connect_timeout: float = 5.0):
        import socket as socket_mod

        self.path = path
        self._sock = socket_mod.socket(
            socket_mod.AF_UNIX, socket_mod.SOCK_STREAM
        )
        self._sock.settimeout(connect_timeout)
        self._sock.connect(path)
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._wfile = self._sock.makefile("w", encoding="utf-8")
        self._ids = itertools.count(1)
        self._pending: dict[int, tuple[Future, object]] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-shard-read", daemon=True
        )
        self._reader.start()

    def submit(self, request: dict) -> "Future[dict]":
        future: "Future[dict]" = Future()
        with self._lock:
            if self._closed:
                raise ConnectionError(f"connection to {self.path} is closed")
            internal = next(self._ids)
            self._pending[internal] = (future, request.get("id"))
            line = json.dumps({**request, "id": internal})
            try:
                self._wfile.write(line + "\n")
                self._wfile.flush()
            except (OSError, ValueError):
                self._pending.pop(internal, None)
                raise ConnectionError(f"shard at {self.path} went away")
        return future

    def _read_loop(self) -> None:
        try:
            for line in self._rfile:
                try:
                    response = json.loads(line)
                except json.JSONDecodeError:
                    continue
                with self._lock:
                    entry = self._pending.pop(response.get("id"), None)
                if entry is not None:
                    future, original_id = entry
                    response["id"] = original_id
                    future.set_result(response)
        except (OSError, ValueError):
            pass
        finally:
            self._fail_pending(ConnectionError(f"shard at {self.path} closed"))

    def _fail_pending(self, exc: Exception) -> None:
        with self._lock:
            self._closed = True
            pending, self._pending = self._pending, {}
        for future, _ in pending.values():
            if not future.done():
                future.set_exception(exc)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def wait_idle(self, timeout: float) -> bool:
        """Poll until no request is in flight; ``False`` on timeout."""
        deadline = time.monotonic() + timeout
        while self.pending_count:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True

    def close(self) -> None:
        with self._lock:
            self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


class LocalShard:
    """An in-process broker shard (deterministic; tests and regress)."""

    kind = "local"

    def __init__(self, index: int, broker_config: BrokerConfig):
        self.index = index
        self.shard_id = f"shard-{index}"
        self.config = broker_config
        self.broker: Broker | None = Broker(broker_config)
        #: Router-managed lifecycle state: ``up`` / ``draining`` / ``down``.
        self.state = "up"

    def try_submit(self, request: dict) -> "Future[dict] | None":
        broker = self.broker
        if broker is None:
            return None
        try:
            return broker.submit(request)
        except RuntimeError:  # pool already shut down under us
            return None

    def drain(self, timeout: float = 60.0) -> None:
        broker, self.broker = self.broker, None
        if broker is not None:
            broker.drain()

    def restart(self) -> None:
        """Rejoin with a fresh broker over the *same* cache directory —
        the disk tier is what carries the warm keys across the cycle."""
        self.broker = Broker(self.config)

    def stop(self, timeout: float = 60.0) -> None:
        self.drain(timeout)

    def telemetry(self, timeout: float = 5.0) -> dict | None:
        broker = self.broker
        return broker.telemetry_snapshot() if broker is not None else None

    def stats_snapshot(self, timeout: float = 5.0) -> dict | None:
        broker = self.broker
        return broker.stats() if broker is not None else None

    def trace_snapshot(self, request: dict, timeout: float = 5.0) -> dict | None:
        broker = self.broker
        return broker._handle_trace(request) if broker is not None else None


class ProcessShard:
    """A ``repro serve --socket`` daemon subprocess shard."""

    kind = "process"

    def __init__(
        self,
        index: int,
        broker_config: BrokerConfig,
        socket_dir: str,
        *,
        spawn_timeout_s: float = 30.0,
    ):
        self.index = index
        self.shard_id = f"shard-{index}"
        self.config = broker_config
        self.socket_path = os.path.join(socket_dir, f"shard-{index}.sock")
        self.spawn_timeout_s = spawn_timeout_s
        self._proc: subprocess.Popen | None = None
        self._conn: _ShardConnection | None = None
        self.state = "down"
        self.start()

    def _argv(self) -> list[str]:
        c = self.config
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            self.socket_path,
            "--workers",
            str(c.workers),
            "--queue-limit",
            str(c.queue_limit),
            "--deadline-ms",
            str(c.default_deadline_ms),
            "--retries",
            str(c.max_retries),
        ]
        if c.cache_dir is not None:
            argv += ["--cache-dir", c.cache_dir]
        if c.tune_ledger is not None:
            argv += ["--tune-ledger", c.tune_ledger]
        if c.fleet:
            argv += ["--fleet", ",".join(c.fleet)]
        return argv

    def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self._proc = subprocess.Popen(
            self._argv(),
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        deadline = time.monotonic() + self.spawn_timeout_s
        while not os.path.exists(self.socket_path):
            if self._proc.poll() is not None:
                raise RuntimeError(
                    f"shard {self.index} daemon exited with "
                    f"{self._proc.returncode} before listening"
                )
            if time.monotonic() >= deadline:
                self._proc.kill()
                raise TimeoutError(
                    f"shard {self.index} socket {self.socket_path} did not "
                    f"appear within {self.spawn_timeout_s}s"
                )
            time.sleep(0.02)
        self._conn = _ShardConnection(self.socket_path)
        self.state = "up"

    def try_submit(self, request: dict) -> "Future[dict] | None":
        conn = self._conn
        if conn is None:
            return None
        try:
            return conn.submit(request)
        except ConnectionError:
            return None

    def drain(self, timeout: float = 60.0) -> None:
        """Wait out the in-flight requests on the data connection, then
        shut the daemon down over a fresh connection (a ``shutdown`` on
        the data connection would sever responses still being written)."""
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.wait_idle(timeout)
            conn.close()
        proc = self._proc
        if proc is not None and proc.poll() is None:
            try:
                with SocketClient(self.socket_path, timeout=10.0) as client:
                    client.shutdown()
            except (OSError, ConnectionError):
                pass
            try:
                proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)

    def restart(self) -> None:
        self.start()

    def stop(self, timeout: float = 60.0) -> None:
        self.drain(timeout)

    def _control(self, request: dict, timeout: float) -> dict | None:
        future = self.try_submit(request)
        if future is None:
            return None
        try:
            response = future.result(timeout=timeout)
        except Exception:
            return None
        return response.get("result") if response.get("ok") else None

    def telemetry(self, timeout: float = 5.0) -> dict | None:
        return self._control(
            {"op": "watch", "count": 1, "interval_ms": 1.0}, timeout
        )

    def stats_snapshot(self, timeout: float = 5.0) -> dict | None:
        return self._control({"op": "stats"}, timeout)

    def trace_snapshot(self, request: dict, timeout: float = 5.0) -> dict | None:
        return self._control({**request, "op": "trace"}, timeout)


class Router:
    """The consistent-hash front end over the shard fleet.

    Duck-types the broker surface the daemon and load generator rely on:
    ``submit`` → ``Future[response]``, ``handle``, ``metrics``,
    ``telemetry_snapshot``, ``drain``, and context management.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        shards: "list | None" = None,
    ):
        self.config = config or ClusterConfig()
        if shards is None and self.config.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        if self.config.replication < 1:
            raise ValueError("replication must be >= 1")
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._pending = 0
        self._stopping = False
        self._started = time.monotonic()
        self._socket_dir: str | None = None

        if shards is not None:
            self.shards = list(shards)
        elif self.config.process_shards:
            broker = self.config.broker
            if broker.cache_dir is None:
                # Without a shared disk namespace a restart would lose
                # every warm key; default one rather than degrade.
                broker = replace(
                    broker,
                    cache_dir=tempfile.mkdtemp(prefix="repro-cluster-cache-"),
                )
            self._socket_dir = self.config.socket_dir or tempfile.mkdtemp(
                prefix="repro-cluster-"
            )
            self.shards = [
                ProcessShard(
                    i,
                    broker,
                    self._socket_dir,
                    spawn_timeout_s=self.config.spawn_timeout_s,
                )
                for i in range(self.config.shards)
            ]
        else:
            self.shards = [
                LocalShard(i, self.config.broker)
                for i in range(self.config.shards)
            ]

        self._pool = ThreadPoolExecutor(
            max_workers=self.config.router_workers,
            thread_name_prefix="repro-router",
        )
        self._quotas = (
            None
            if self.config.tenant_rate is None
            else TenantQuotas(self.config.tenant_rate, self.config.tenant_burst)
        )

        # Hot-key tracking: hit counts per routing key, with the top-K
        # set recomputed every _HOT_EVERY keyed requests.
        self._key_hits: dict[str, int] = {}
        self._hot_keys: frozenset[str] = frozenset()
        self._keyed_seen = 0
        self._HOT_EVERY = 32

        m = self.metrics
        self._rejected = m.counter(
            "cluster.rejected", "requests refused at router admission"
        )
        self._quota_rejected = m.counter(
            "cluster.quota_rejected", "requests refused by tenant quotas"
        )
        self._hedges = m.counter(
            "cluster.hedges", "hedged (duplicated) shard requests sent"
        )
        self._hedge_wins = m.counter(
            "cluster.hedge_wins", "requests answered by the hedge first"
        )
        self._hedge_wasted = m.counter(
            "cluster.hedge_wasted", "hedge losers (duplicated work discarded)"
        )
        self._failovers = m.counter(
            "cluster.failovers", "requests rerouted past an unavailable shard"
        )
        self._drains = m.counter("cluster.drains", "shard drains performed")
        self._restarts = m.counter(
            "cluster.restarts", "shards restarted after a drain"
        )
        self._queue_depth = m.gauge(
            "cluster.queue_depth", "requests inside the router, unanswered"
        )
        self._shards_up = m.gauge("cluster.shards_up", "shards accepting load")
        self._shards_up.set(sum(1 for s in self.shards if s.state == "up"))
        for shard in self.shards:
            m.counter(
                f"cluster.routed.{shard.shard_id}",
                f"requests routed to {shard.shard_id}",
            )
        self._service_ms = m.log_histogram(
            "cluster.shard_ms",
            help="router→shard service time (hedge-delay basis)",
        )
        self._latency = {
            op: m.log_histogram(
                f"cluster.latency_ms.{op}",
                help=f"router admission → response latency of {op} requests",
            )
            for op in ("compile", "run", "tune", "stats")
        }

    # -- admission ---------------------------------------------------------

    @property
    def pending(self) -> int:
        with self._lock:
            return self._pending

    def _rejection(
        self, request_id, code: str, message: str, trace_id: str
    ) -> "Future[dict]":
        future: "Future[dict]" = Future()
        future.set_result(
            protocol.error_response(request_id, code, message, trace_id=trace_id)
        )
        return future

    def submit(self, request: dict) -> "Future[dict]":
        """Admit a request; always returns a future resolving to a
        response dict (mirrors :meth:`Broker.submit`)."""
        request_id = request.get("id") if isinstance(request, dict) else None
        trace_id = Broker._trace_id_for(request)
        try:
            protocol.validate_request(request)
        except ServeError as exc:
            self._rejected.inc()
            return self._rejection(request_id, exc.code, exc.message, trace_id)
        op = request["op"]
        self.metrics.counter(
            f"cluster.requests.{op}", f"admitted {op} requests"
        )
        if op in KEYED_OPS and self._quotas is not None:
            if not self._quotas.try_acquire(request.get("tenant")):
                self._quota_rejected.inc()
                return self._rejection(
                    request_id,
                    protocol.QUOTA_EXCEEDED,
                    f"tenant {request.get('tenant') or '(anonymous)'!s} is "
                    f"over its admission quota "
                    f"({self.config.tenant_rate}/s, burst "
                    f"{self.config.tenant_burst}); retry with backoff",
                    trace_id,
                )
        with self._lock:
            if self._stopping:
                return self._rejection(
                    request_id,
                    protocol.SHUTTING_DOWN,
                    "router is draining; resubmit to the next instance",
                    trace_id,
                )
            capacity = self.config.router_workers + self.config.queue_limit
            if self._pending >= capacity:
                self._rejected.inc()
                return self._rejection(
                    request_id,
                    protocol.QUEUE_FULL,
                    f"router queue full ({self._pending} in flight, "
                    f"capacity {capacity}); retry later",
                    trace_id,
                )
            self._pending += 1
            self._queue_depth.set(self._pending)
        self.metrics.counter(f"cluster.requests.{op}").inc()
        enqueue_t = time.monotonic()
        return self._pool.submit(self._process, request, enqueue_t, trace_id)

    def handle(self, request: dict) -> dict:
        """Synchronous convenience: submit and wait."""
        return self.submit(request).result()

    # -- processing --------------------------------------------------------

    def _process(self, request: dict, enqueue_t: float, trace_id: str) -> dict:
        request_id = request.get("id")
        op = request["op"]
        try:
            if op in KEYED_OPS:
                response = self._route(request, trace_id)
            elif op == "stats":
                response = protocol.ok_response(request_id, self.stats())
            elif op == "trace":
                response = protocol.ok_response(
                    request_id, self._handle_trace(request)
                )
            elif op == "watch":
                response = protocol.ok_response(
                    request_id, self.telemetry_snapshot()
                )
            elif op == "drain":
                response = self._handle_drain(request)
            else:  # "shutdown" — answered here, drained by the daemon
                response = protocol.ok_response(request_id, {"stopping": True})
        except ServeError as exc:
            response = protocol.error_response(
                request_id, exc.code, exc.message, retryable=exc.retryable
            )
        except Exception as exc:  # a router bug must still answer
            response = protocol.error_response(
                request_id, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            with self._lock:
                self._pending -= 1
                self._queue_depth.set(self._pending)
        response["trace_id"] = trace_id
        hist = self._latency.get(op)
        if hist is not None:
            hist.observe((time.monotonic() - enqueue_t) * 1000.0)
        return response

    # -- routing -----------------------------------------------------------

    def _note_key(self, key: str) -> int:
        """Count a hit; recompute the hot set every ``_HOT_EVERY`` keyed
        requests.  Returns this key's cumulative hit count (which also
        drives replica rotation)."""
        cfg = self.config
        with self._lock:
            hits = self._key_hits.get(key, 0) + 1
            self._key_hits[key] = hits
            self._keyed_seen += 1
            if len(self._key_hits) > 4096:
                # Bound the tracking map: keep the busiest quarter (the
                # cold tail restarts its counts, which only delays
                # hot-key promotion, never corrupts routing).
                keep = sorted(
                    self._key_hits.items(), key=lambda kv: -kv[1]
                )[:1024]
                self._key_hits = dict(keep)
            if (
                self._keyed_seen % self._HOT_EVERY == 0
                or hits == cfg.hot_key_min_hits  # a key just became eligible
            ):
                eligible = [
                    (n, k)
                    for k, n in self._key_hits.items()
                    if n >= cfg.hot_key_min_hits
                ]
                eligible.sort(reverse=True)
                self._hot_keys = frozenset(
                    k for _, k in eligible[: cfg.hot_key_count]
                )
            return hits

    def _alive_in_rank_order(self, key: str) -> list:
        with self._lock:
            alive = {s.shard_id: s for s in self.shards if s.state == "up"}
        return [
            alive[shard_id] for shard_id in hashring.rank(key, list(alive))
        ]

    def _hedge_delay_s(self) -> float:
        cfg = self.config
        if cfg.hedge_after_ms is not None:
            return cfg.hedge_after_ms / 1000.0
        if self._service_ms.count < 20:
            return cfg.hedge_max_ms / 1000.0
        derived = self._service_ms.quantile(0.95) * cfg.hedge_multiplier
        return min(cfg.hedge_max_ms, max(cfg.hedge_min_ms, derived)) / 1000.0

    def _route(self, request: dict, trace_id: str) -> dict:
        request_id = request.get("id")
        key = routing_key(request)
        hits = self._note_key(key)
        wire = dict(request)
        wire["trace_id"] = trace_id
        order = self._alive_in_rank_order(key)
        if not order:
            return protocol.error_response(
                request_id,
                protocol.SHARD_UNAVAILABLE,
                "no shard is accepting requests (all draining or down)",
            )
        r = min(self.config.replication, len(order))
        if r > 1 and key in self._hot_keys:
            # Hot keys rotate over their replica set instead of pinning
            # to rank 0; the backup for hedging stays within the set.
            rotation = hits % r
            order = [order[rotation]] + [
                s for i, s in enumerate(order) if i != rotation
            ]
        for i, shard in enumerate(order):
            backup = order[i + 1] if i + 1 < len(order) else None
            outcome = self._attempt(shard, backup, wire)
            if outcome is not None:
                response, winner = outcome
                if (
                    not response.get("ok")
                    and response.get("error", {}).get("code")
                    == protocol.SHUTTING_DOWN
                ):
                    self._failovers.inc()  # raced a drain; next rank
                    continue
                response = dict(response)
                response["shard"] = winner.index
                return response
            self._failovers.inc()
        return protocol.error_response(
            request_id,
            protocol.SHARD_UNAVAILABLE,
            f"all {len(order)} candidate shards for this key are "
            f"unavailable; retry later",
        )

    def _attempt(self, shard, backup, wire: dict):
        """One placement attempt with hedging: wait on ``shard`` for the
        hedge delay, then duplicate onto ``backup``; first response wins.
        Returns ``(response, winning_shard)`` or ``None`` when every
        transport failed (→ failover)."""
        start = time.monotonic()
        primary = shard.try_submit(wire)
        if primary is None:
            return None
        self.metrics.counter(f"cluster.routed.{shard.shard_id}").inc()
        in_flight = {primary: shard}
        done, _ = wait([primary], timeout=self._hedge_delay_s())
        if not done and backup is not None:
            hedge = backup.try_submit(wire)
            if hedge is not None:
                self._hedges.inc()
                self.metrics.counter(
                    f"cluster.routed.{backup.shard_id}"
                ).inc()
                in_flight[hedge] = backup
        while in_flight:
            done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
            future = next(iter(done))
            winner = in_flight.pop(future)
            try:
                response = future.result()
            except Exception:
                continue  # transport death; maybe the other leg answers
            self._service_ms.observe((time.monotonic() - start) * 1000.0)
            if winner is not shard:
                self._hedge_wins.inc()
            for loser in in_flight:
                loser.add_done_callback(lambda _f: self._hedge_wasted.inc())
            return response, winner
        return None

    # -- control plane -----------------------------------------------------

    def drain_shard(self, index: int, *, restart: bool = False) -> dict:
        """Drain (and optionally restart) one shard; the public API
        behind the ``drain`` op and ``repro cluster-drain``."""
        response = self.handle(
            {"op": "drain", "shard": index, "restart": restart}
        )
        from ..errors import raise_for_response

        return raise_for_response(response)

    def _handle_drain(self, request: dict) -> dict:
        request_id = request.get("id")
        index = request["shard"]
        restart = bool(request.get("restart", False))
        if not 0 <= index < len(self.shards):
            return protocol.error_response(
                request_id,
                protocol.BAD_REQUEST,
                f"no shard {index}: this cluster has shards "
                f"0..{len(self.shards) - 1}",
            )
        shard = self.shards[index]
        with self._lock:
            if shard.state != "up":
                return protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    f"shard {index} is {shard.state}, not up",
                )
            up = sum(1 for s in self.shards if s.state == "up")
            if up <= 1 and not restart:
                return protocol.error_response(
                    request_id,
                    protocol.BAD_REQUEST,
                    "cannot drain the last live shard without restart "
                    "(use the shutdown op to stop the cluster)",
                )
            shard.state = "draining"
            self._shards_up.set(up - 1)
        self._drains.inc()
        t0 = time.monotonic()
        shard.drain()
        shard.state = "down"
        if restart:
            shard.restart()
            with self._lock:
                shard.state = "up"
                self._shards_up.set(
                    sum(1 for s in self.shards if s.state == "up")
                )
            self._restarts.inc()
        return protocol.ok_response(
            request_id,
            {
                "shard": index,
                "state": shard.state,
                "restarted": restart,
                "drain_ms": round((time.monotonic() - t0) * 1000.0, 3),
            },
        )

    def _handle_trace(self, request: dict) -> dict:
        """Fan the ``trace`` op out to the shards: a specific
        ``trace_id`` answers from the first shard that retains it (the
        router propagates its trace id downstream, so the record lives
        wherever the request ran); without one, a per-shard snapshot."""
        wanted = request.get("trace_id")
        snapshots = []
        for shard in self.shards:
            if shard.state != "up":
                continue
            out = shard.trace_snapshot(dict(request))
            if out is None:
                continue
            if wanted and out.get("found"):
                out = dict(out)
                out["shard"] = shard.index
                return out
            if not wanted:
                snapshots.append({"shard": shard.index, **out})
        if wanted:
            return {"trace_id": wanted, "found": False, "record": None}
        return {"shards": snapshots}

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """The cluster-wide ``stats`` payload: router config + metrics,
        plus each live shard's own stats document."""
        shard_stats = []
        for shard in self.shards:
            entry: dict = {
                "shard": shard.index,
                "id": shard.shard_id,
                "kind": shard.kind,
                "state": shard.state,
            }
            if shard.state == "up":
                snapshot = shard.stats_snapshot()
                if snapshot is not None:
                    entry["stats"] = snapshot
            shard_stats.append(entry)
        out: dict = {
            "router": {
                "shards": len(self.shards),
                "up": sum(1 for s in self.shards if s.state == "up"),
                "replication": self.config.replication,
                "pending": self.pending,
                "stopping": self._stopping,
                "hot_keys": len(self._hot_keys),
                "process_shards": any(
                    s.kind == "process" for s in self.shards
                ),
            },
            "metrics": self.metrics.as_dict(),
            "shards": shard_stats,
        }
        if self._quotas is not None:
            out["router"]["quotas"] = self._quotas.snapshot()
        return out

    def telemetry_snapshot(self) -> dict:
        """One live-telemetry frame, shaped like the broker's (so
        ``repro top`` renders a router unchanged) plus a ``cluster``
        stanza and per-shard rollup rows."""
        m = self.metrics

        def value(name: str) -> float:
            metric = m.get(name)
            v = metric.value if metric is not None else 0
            return int(v) if v == int(v) else round(v, 4)

        frames = []
        for shard in self.shards:
            frame = shard.telemetry(timeout=2.0) if shard.state == "up" else None
            frames.append((shard, frame))
        live = [f for _, f in frames if f is not None]

        def total(key: str) -> float:
            v = sum(f.get(key) or 0 for f in live)
            return int(v) if v == int(v) else round(v, 4)

        def mean_rate(*path: str) -> float | None:
            values = []
            for f in live:
                node = f
                for part in path:
                    node = (node or {}).get(part)
                values.append(node)
            values = [v for v in values if v is not None]
            return round(sum(values) / len(values), 4) if values else None

        requests = {}
        for op in protocol.VALID_OPS:
            count = value(f"cluster.requests.{op}") + value(
                f"serve.requests.{op}"  # the daemon's watch counter
            )
            if m.get(f"cluster.requests.{op}") is not None or m.get(
                f"serve.requests.{op}"
            ) is not None:
                requests[op] = count
        placement: dict = {}
        tiers: dict = {}
        for f in live:
            for k, v in (f.get("placement") or {}).items():
                placement[k] = placement.get(k, 0) + v
            for k, v in (f.get("codegen_tiers") or {}).items():
                tiers[k] = tiers.get(k, 0) + v
        shard_rows = []
        for shard, frame in frames:
            row: dict = {
                "shard": shard.index,
                "state": shard.state,
                "routed": value(f"cluster.routed.{shard.shard_id}"),
            }
            if frame is not None:
                row.update(
                    {
                        "requests_total": frame.get("requests_total", 0),
                        "queue_depth": frame.get("queue_depth", 0),
                        "memory_hit_rate": (frame.get("cache") or {}).get(
                            "memory_hit_rate"
                        ),
                        "disk_hit_rate": (frame.get("cache") or {}).get(
                            "disk_hit_rate"
                        ),
                    }
                )
            shard_rows.append(row)
        return {
            "ts": round(time.monotonic(), 6),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": sum(
                s.config.workers for s in self.shards if s.state == "up"
            ),
            "queue_limit": self.config.queue_limit,
            "queue_depth": self.pending,
            "stopping": self._stopping,
            "requests": requests,
            "requests_total": sum(requests.values()),
            "rejected": value("cluster.rejected"),
            "retries": total("retries"),
            "deadline_exceeded": total("deadline_exceeded"),
            "degradations": {
                "total": sum(
                    (f.get("degradations") or {}).get("total", 0) for f in live
                ),
                "deadline": sum(
                    (f.get("degradations") or {}).get("deadline", 0)
                    for f in live
                ),
                "vector_fallback": sum(
                    (f.get("degradations") or {}).get("vector_fallback", 0)
                    for f in live
                ),
            },
            # Mean across live shards (rates cannot be exactly merged
            # without raw hit/miss counts; per-shard exact rates are in
            # the rollup rows below).
            "cache": {
                "memory_hit_rate": mean_rate("cache", "memory_hit_rate"),
                "disk_hit_rate": mean_rate("cache", "disk_hit_rate"),
                "fnobj_hit_rate": mean_rate("cache", "fnobj_hit_rate"),
            },
            "placement": placement,
            "codegen_tiers": tiers,
            "latency_ms": {
                op: hist.as_dict()
                for op, hist in self._latency.items()
                if hist.count
            },
            "flight_recorded": total("flight_recorded"),
            "cluster": {
                "shards": len(self.shards),
                "up": sum(1 for s in self.shards if s.state == "up"),
                "replication": self.config.replication,
                "hot_keys": len(self._hot_keys),
                "hedges": value("cluster.hedges"),
                "hedge_wins": value("cluster.hedge_wins"),
                "hedge_wasted": value("cluster.hedge_wasted"),
                "failovers": value("cluster.failovers"),
                "quota_rejected": value("cluster.quota_rejected"),
                "drains": value("cluster.drains"),
                "restarts": value("cluster.restarts"),
            },
            "shards": shard_rows,
        }

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> None:
        """Stop admitting, answer everything in flight, stop the shards."""
        with self._lock:
            self._stopping = True
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            if shard.state == "up":
                shard.state = "draining"
                try:
                    shard.stop()
                except Exception:
                    pass
                shard.state = "down"
        self._shards_up.set(0)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()


def run_cluster(config: ClusterConfig, socket_path: str | None = None) -> int:
    """Construct a router from ``config`` and serve stdin/stdout (or the
    unix socket at ``socket_path``) — the ``repro serve --shards N``
    entry point."""
    from .daemon import serve_loop, serve_socket

    router = Router(config)
    cache = config.broker.cache_dir
    if cache is None and router.shards and router.shards[0].kind == "process":
        cache = router.shards[0].config.cache_dir
    print(
        f"repro serve: cluster router over {len(router.shards)} "
        f"{'process' if config.process_shards else 'in-process'} shards, "
        f"replication {config.replication}, cache dir "
        f"{cache or '(memory only)'}",
        file=sys.stderr,
    )
    if socket_path is not None:
        return serve_socket(router, socket_path)
    return serve_loop(router)
