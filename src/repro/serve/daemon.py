"""The JSON-lines daemon front ends: ``repro serve`` over stdio or a
unix-domain socket.

Reads one request per line from a text stream (normally stdin), submits
each to the :class:`~repro.serve.broker.Broker`, and writes one response
per line (normally to stdout) **as results complete** — responses may be
out of order with respect to requests; clients correlate by ``id`` (and
by ``trace_id``, which every response carries).

Two ops are intercepted at this layer instead of occupying a broker
worker:

* ``watch`` streams telemetry: the daemon emits one response line per
  interval (each an :func:`~repro.serve.broker.Broker.telemetry_snapshot`
  with a ``seq`` number), for ``count`` frames or until the stream
  closes.  A worker thread that slept between frames would be a denial
  of service against the admission queue — watching must never cost
  serving capacity.
* ``shutdown`` is still answered by the broker, but the daemon sees it
  go by and drains afterwards.

With ``--socket PATH``, :func:`serve_socket` listens on a unix-domain
socket instead; each connection gets the same line protocol on its own
thread (``repro top``, ``repro serve-trace`` and ``repro loadgen
--socket`` are such clients, via :class:`~repro.serve.client.
SocketClient`).  A ``shutdown`` from any connection stops the listener.

Lifecycle: the stdio loop ends on EOF or on a ``shutdown`` request.
Either way the broker drains — every admitted request is answered before
the process exits; requests arriving after shutdown are answered
``shutting_down``.  Diagnostics go to stderr; stdout carries protocol
lines only.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
from typing import IO

from .broker import Broker, BrokerConfig
from . import protocol
from .protocol import ServeError


def _emit(stream: IO[str], lock: threading.Lock, response: dict) -> None:
    line = json.dumps(response, sort_keys=True)
    with lock:
        stream.write(line + "\n")
        stream.flush()


#: Telemetry cadence when a ``watch`` request names none.
DEFAULT_WATCH_INTERVAL_MS = 1000.0


def _watch_stream(
    broker: Broker,
    stdout: IO[str],
    lock: threading.Lock,
    request: dict,
    stop: threading.Event,
) -> None:
    """Emit telemetry frames for one ``watch`` request until ``count``
    frames are sent, the stream dies, or ``stop`` is set."""
    request_id = request.get("id")
    trace_id = Broker._trace_id_for(request)
    interval_s = (
        request.get("interval_ms") or DEFAULT_WATCH_INTERVAL_MS
    ) / 1000.0
    count = request.get("count")
    seq = 0
    while not stop.is_set():
        frame = broker.telemetry_snapshot()
        frame["seq"] = seq
        try:
            _emit(
                stdout,
                lock,
                protocol.ok_response(request_id, frame, trace_id=trace_id),
            )
        except (ValueError, OSError):  # stream closed under us
            return
        seq += 1
        if count is not None and seq >= count:
            return
        stop.wait(interval_s)


def _start_watch(
    broker: Broker,
    stdout: IO[str],
    lock: threading.Lock,
    request: dict,
    stop: threading.Event,
) -> None:
    """Validate and launch one ``watch`` stream on its own thread."""
    trace_id = Broker._trace_id_for(request)
    try:
        protocol.validate_request(request)
    except ServeError as exc:
        _emit(
            stdout,
            lock,
            protocol.error_response(
                request.get("id"), exc.code, exc.message, trace_id=trace_id
            ),
        )
        return
    broker.metrics.counter(
        "serve.requests.watch", "admitted watch requests"
    ).inc()
    threading.Thread(
        target=_watch_stream,
        args=(broker, stdout, lock, request, stop),
        name="repro-watch",
        daemon=True,
    ).start()


def handle_stream(
    broker: Broker, stdin: IO[str], stdout: IO[str]
) -> bool:
    """Run the line protocol over one request/response stream pair.

    Returns ``True`` when the stream ended because of a ``shutdown``
    request (the caller decides whether that stops just this connection
    or the whole daemon).
    """
    write_lock = threading.Lock()
    stop_watch = threading.Event()
    saw_shutdown = False

    try:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                _emit(
                    stdout,
                    write_lock,
                    protocol.error_response(None, protocol.BAD_JSON, str(exc)),
                )
                continue
            if isinstance(request, dict) and request.get("op") == "watch":
                _start_watch(broker, stdout, write_lock, request, stop_watch)
                continue
            is_shutdown = (
                isinstance(request, dict) and request.get("op") == "shutdown"
            )
            future = broker.submit(request)
            future.add_done_callback(
                lambda f: _emit(stdout, write_lock, f.result())
            )
            if is_shutdown:
                saw_shutdown = True
                break
    finally:
        stop_watch.set()
    return saw_shutdown


def serve_loop(
    broker: Broker,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> int:
    """Run the request/response loop until EOF or shutdown; returns 0."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    handle_stream(broker, stdin, stdout)
    broker.drain()  # answers everything in flight before returning
    return 0


class SocketServer:
    """A unix-domain-socket front end over one broker.

    Each accepted connection runs :func:`handle_stream` on its own
    thread; a ``shutdown`` request from any connection stops the accept
    loop (after which the caller drains the broker).
    """

    def __init__(self, broker: Broker, path: str):
        self.broker = broker
        self.path = path
        if os.path.exists(path):
            os.unlink(path)  # a previous daemon's stale socket
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(path)
        self._sock.listen(16)
        self._sock.settimeout(0.2)  # bounded poll so shutdown is prompt
        self._shutdown = threading.Event()
        self._threads: list[threading.Thread] = []

    def _connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                rfile = conn.makefile("r", encoding="utf-8")
                wfile = conn.makefile("w", encoding="utf-8")
                if handle_stream(self.broker, rfile, wfile):
                    self._shutdown.set()
        except OSError:
            pass  # client went away mid-line; nothing to answer

    def serve_forever(self) -> None:
        """Accept connections until a ``shutdown`` request arrives."""
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _ = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._connection,
                    args=(conn,),
                    name="repro-serve-conn",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        finally:
            self.close()

    def shutdown(self) -> None:
        self._shutdown.set()

    def close(self) -> None:
        try:
            self._sock.close()
        finally:
            if os.path.exists(self.path):
                os.unlink(self.path)

    def __enter__(self) -> "SocketServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_socket(broker: Broker, path: str) -> int:
    """Listen on a unix socket until a client sends ``shutdown``."""
    server = SocketServer(broker, path)
    print(f"repro serve: listening on {path}", file=sys.stderr)
    server.serve_forever()
    broker.drain()
    return 0


def run_daemon(config: BrokerConfig, socket_path: str | None = None) -> int:
    """Construct a broker from ``config`` and serve stdin/stdout (or the
    unix socket at ``socket_path``)."""
    broker = Broker(config)
    print(
        f"repro serve: {config.workers} workers, queue limit "
        f"{config.queue_limit}, cache dir {config.cache_dir or '(memory only)'}",
        file=sys.stderr,
    )
    if socket_path is not None:
        return serve_socket(broker, socket_path)
    return serve_loop(broker)
