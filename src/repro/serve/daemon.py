"""The JSON-lines daemon front end: ``repro serve``.

Reads one request per line from a text stream (normally stdin), submits
each to the :class:`~repro.serve.broker.Broker`, and writes one response
per line (normally to stdout) **as results complete** — responses may be
out of order with respect to requests; clients correlate by ``id``.

Lifecycle: the loop ends on EOF or on a ``shutdown`` request.  Either
way the broker drains — every admitted request is answered before the
process exits; requests arriving after shutdown are answered
``shutting_down``.  Diagnostics go to stderr; stdout carries protocol
lines only.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import IO

from .broker import Broker, BrokerConfig
from . import protocol


def _emit(stream: IO[str], lock: threading.Lock, response: dict) -> None:
    line = json.dumps(response, sort_keys=True)
    with lock:
        stream.write(line + "\n")
        stream.flush()


def serve_loop(
    broker: Broker,
    stdin: IO[str] | None = None,
    stdout: IO[str] | None = None,
) -> int:
    """Run the request/response loop until EOF or shutdown; returns 0."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    write_lock = threading.Lock()
    stop = threading.Event()

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            _emit(
                stdout,
                write_lock,
                protocol.error_response(None, protocol.BAD_JSON, str(exc)),
            )
            continue
        is_shutdown = isinstance(request, dict) and request.get("op") == "shutdown"
        future = broker.submit(request)
        future.add_done_callback(
            lambda f: _emit(stdout, write_lock, f.result())
        )
        if is_shutdown:
            stop.set()
            break

    broker.drain()  # answers everything in flight before returning
    return 0


def run_daemon(config: BrokerConfig) -> int:
    """Construct a broker from ``config`` and serve stdin/stdout."""
    broker = Broker(config)
    print(
        f"repro serve: {config.workers} workers, queue limit "
        f"{config.queue_limit}, cache dir {config.cache_dir or '(memory only)'}",
        file=sys.stderr,
    )
    return serve_loop(broker)
