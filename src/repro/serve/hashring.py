"""Deterministic consistent hashing for the cluster router.

The router (:mod:`repro.serve.cluster`) spreads keyed requests over N
broker shards with **rendezvous hashing** (highest-random-weight): every
(key, shard) pair gets a pseudo-random score from SHA-256, and a key
routes to the live shard with the highest score.  Compared to a
vnode-based hash ring this needs no ring state at all, gives the same
properties, and is trivially deterministic across processes:

* **Stability** — adding or removing one shard only remaps the keys
  whose top-ranked shard changed: an expected ``1/N`` fraction on
  removal, ``1/(N+1)`` on addition.  Everything else keeps its shard,
  so warm in-memory caches survive membership churn.
* **Replication for free** — the score order over shards is a full
  permutation per key, so the top ``r`` ranks are ``r`` *distinct*
  shards: hot-key replicas never co-locate.
* **Cross-process determinism** — scores come from SHA-256 over the
  UTF-8 bytes of ``"<shard>|<key>"``, never Python's randomized
  :func:`hash`, so every router process (and the test suite's subprocess
  property check) ranks identically.

All functions take shard identifiers as strings; the router uses
``"shard-<index>"``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

__all__ = ["score", "rank", "route", "replicas", "remap_fraction"]


def score(key: str, shard: str) -> int:
    """The rendezvous weight of ``shard`` for ``key``: the first 8 bytes
    of ``sha256("<shard>|<key>")`` as a big-endian integer.  Uniform over
    ``[0, 2**64)`` and identical in every process."""
    digest = hashlib.sha256(f"{shard}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rank(key: str, shards: Sequence[str]) -> list[str]:
    """All ``shards`` ordered by descending score for ``key`` (ties — a
    ~2**-64 event — broken by shard id so the order is still total)."""
    return sorted(shards, key=lambda shard: (-score(key, shard), shard))


def route(key: str, shards: Sequence[str]) -> str:
    """The owning shard for ``key``: the top-ranked member."""
    if not shards:
        raise ValueError("cannot route over an empty shard set")
    return rank(key, shards)[0]


def replicas(key: str, shards: Sequence[str], n: int) -> list[str]:
    """The first ``min(n, len(shards))`` ranks for ``key`` — always
    distinct shards, since the rank order is a permutation."""
    if n < 1:
        raise ValueError(f"replica count must be >= 1, got {n}")
    return rank(key, shards)[: min(n, len(shards))]


def remap_fraction(
    keys: Iterable[str], before: Sequence[str], after: Sequence[str]
) -> float:
    """The fraction of ``keys`` whose top-ranked shard differs between
    the ``before`` and ``after`` memberships (test/diagnostic helper for
    the 1/N stability property)."""
    keys = list(keys)
    if not keys:
        return 0.0
    moved = sum(1 for k in keys if route(k, before) != route(k, after))
    return moved / len(keys)
