"""Fleet placement: route a request to the modeled-best (arch, config).

A broker configured with a *fleet* (an ordered list of arch-registry
profile names) stops assuming one device.  For each candidate arch the
policy derives the request's :class:`~repro.compiler.options.CompilerConfig`
for that profile, compiles it through the worker's session — the
content-addressed cache already keys on the arch (it hashes the config
repr, which embeds the :class:`~repro.gpu.arch.GpuArch`), so per-arch
variants share the two-tier store without collisions — and scores it
with the analytic timing model at the request's problem size.  The
winner is the candidate with the lowest modeled time; exact ties go to
fleet order, so operators control preference by ordering the fleet.

Batching matters: all candidate variants go through
``CompilerSession.compile_many`` in one call, so a fleet of N archs
costs one batch (and, warm, zero backend compiles) rather than N
serial compiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.session import CompileJob, CompilerSession
from ..gpu.arch import arch_key


@dataclass(frozen=True, slots=True)
class PlacementCandidate:
    """One (arch, config) pair the policy considered."""

    arch: str  # canonical registry key
    config: str  # derived config name
    model_ms: float
    max_registers: int
    min_occupancy: float

    def as_dict(self) -> dict:
        return {
            "arch": self.arch,
            "config": self.config,
            "model_ms": round(self.model_ms, 6),
            "max_registers": self.max_registers,
            "min_occupancy": round(self.min_occupancy, 4),
        }


@dataclass(frozen=True, slots=True)
class PlacementDecision:
    """The routing verdict for one request."""

    arch: str  # canonical key of the chosen profile
    config: str
    model_ms: float
    #: Every candidate, in fleet order (the chosen one included).
    candidates: tuple[PlacementCandidate, ...]
    #: ``"modeled"`` (policy chose by modeled time) or ``"pinned"``
    #: (the request named an arch explicitly).
    reason: str = "modeled"

    def as_dict(self) -> dict:
        return {
            "arch": self.arch,
            "config": self.config,
            "model_ms": round(self.model_ms, 6),
            "reason": self.reason,
            "candidates": [c.as_dict() for c in self.candidates],
        }


def choose_placement(
    session: CompilerSession,
    source: str,
    config,
    fleet: "list[str] | tuple[str, ...]",
    env: dict[str, int],
    *,
    launches: "dict | list | int" = 1,
    kernel_name: str | None = None,
) -> PlacementDecision:
    """Score ``config`` on every fleet arch and pick the modeled-best.

    ``fleet`` entries are arch names already validated by the broker;
    ``env`` must bind the problem sizes (the timing model evaluates trip
    counts).  Raises whatever the compile raises — the caller owns the
    retry/deadline policy.
    """
    keys = [arch_key(name) for name in fleet]
    jobs = [
        CompileJob(
            source=source,
            config=config.derive(arch=key),
            kernel_name=kernel_name,
            env=env,
        )
        for key in keys
    ]
    programs = session.compile_many(jobs)
    candidates = []
    for key, job, program in zip(keys, jobs, programs):
        timing = session.time_program(program, env, launches=launches)
        candidates.append(
            PlacementCandidate(
                arch=key,
                config=job.config.name,
                model_ms=timing.total_ms,
                max_registers=program.max_registers,
                min_occupancy=min(
                    (kt.occupancy.occupancy for kt in timing.kernels),
                    default=0.0,
                ),
            )
        )
    # min() is stable: exact ties resolve to the earliest fleet entry.
    chosen = min(candidates, key=lambda c: c.model_ms)
    return PlacementDecision(
        arch=chosen.arch,
        config=chosen.config,
        model_ms=chosen.model_ms,
        candidates=tuple(candidates),
    )
