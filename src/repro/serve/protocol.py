"""The compile-service wire protocol: JSON-lines requests and responses.

One request per line on stdin, one response per line on stdout (see
``docs/serving.md`` for the full schemas).  Responses carry the request's
``id`` and may arrive out of order — the broker answers requests as its
workers finish them.

Request envelope::

    {"id": <any JSON value>,
     "op": "compile" | "run" | "tune" | "stats" | "trace" | "watch"
           | "drain" | "shutdown",
     "trace_id": "<optional client-chosen correlation id>",
     "tenant": "<optional tenant name for admission quotas>",
     ...op-specific fields...}

Response envelope::

    {"id": ..., "ok": true,  "trace_id": "...", "result": {...}}
    {"id": ..., "ok": false, "trace_id": "...",
     "error": {"code": "...", "message": "...", "retryable": true|false}}

Every response carries a ``trace_id`` — the client-supplied one when the
request had a valid ``trace_id`` field, otherwise one the broker
generates at admission.  The same id tags every span the request emits
(queue wait, placement, compile, execute), keys the flight recorder
(:mod:`repro.obs.flight`), and is the argument of the ``trace`` op — so
one id correlates a slow response with its full span tree after the
fact.

``retryable`` tells clients whether resubmitting the identical request
can succeed: ``queue_full``, ``deadline_exceeded``, ``quota_exceeded``
and ``shard_unavailable`` are backpressure (retry later, ideally with
backoff); ``parse_error`` / ``bad_request`` / ``compile_error`` are
permanent — the request itself is wrong.

Every error code maps 1:1 onto an exception type in :mod:`repro.errors`
(:func:`repro.errors.error_for` / :func:`repro.errors.code_for`), so a
client that calls :func:`repro.errors.raise_for_response` on a failed
response raises the same exception type the in-process API would have.
"""

from __future__ import annotations

from typing import Any

from ..errors import ReproError

# -- error codes -------------------------------------------------------------

#: The request line was not valid JSON, or not a JSON object.
BAD_JSON = "bad_json"
#: The request object is malformed (unknown op, missing/mistyped field).
BAD_REQUEST = "bad_request"
#: The named compiler configuration does not exist.
UNKNOWN_CONFIG = "unknown_config"
#: The named GPU architecture profile is not registered (permanent: the
#: client must pick a profile from the server's registry/fleet).
UNKNOWN_ARCH = "unknown_arch"
#: The MiniACC source failed to parse or lower (permanent).
PARSE_ERROR = "parse_error"
#: The admission queue is full — the 429 of this protocol (retry later).
QUEUE_FULL = "queue_full"
#: The per-request deadline passed before a result was produced.
DEADLINE_EXCEEDED = "deadline_exceeded"
#: A transient backend failure survived every retry (retryable).
TRANSIENT_FAILURE = "transient_failure"
#: The compile failed permanently (deterministic failure; do not retry).
COMPILE_ERROR = "compile_error"
#: Functional execution failed (bad env bindings, runtime error).
EXECUTION_ERROR = "execution_error"
#: The autotuner failed (unknown strategy, empty space, un-timeable kernel).
TUNE_ERROR = "tune_error"
#: The daemon is draining after a shutdown request.
SHUTTING_DOWN = "shutting_down"
#: The tenant's token bucket is empty — per-tenant admission throttling
#: (the router's 429; retry after the bucket refills).
QUOTA_EXCEEDED = "quota_exceeded"
#: No shard could take the request (all candidates draining, down, or
#: unreachable).  Retryable: shards rejoin after drain/restart.
SHARD_UNAVAILABLE = "shard_unavailable"
#: An unexpected failure inside the service itself (a bug; not retryable).
INTERNAL = "internal"

#: Codes whose requests may succeed if resubmitted later.
RETRYABLE_CODES = frozenset(
    {
        QUEUE_FULL,
        DEADLINE_EXCEEDED,
        TRANSIENT_FAILURE,
        QUOTA_EXCEEDED,
        SHARD_UNAVAILABLE,
    }
)

VALID_OPS = (
    "compile",
    "run",
    "tune",
    "stats",
    "trace",
    "watch",
    "drain",
    "shutdown",
)

#: Longest accepted client-supplied ``trace_id`` (keeps log lines and
#: flight-recorder keys bounded).
MAX_TRACE_ID_LEN = 128

#: Longest accepted ``tenant`` name (keys token buckets and metric
#: labels; bounded for the same reason as trace ids).
MAX_TENANT_LEN = 64


class ServeError(ReproError):
    """A structured protocol failure, rendered as an error response."""

    def __init__(self, code: str, message: str, *, retryable: bool | None = None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.retryable = (
            retryable if retryable is not None else code in RETRYABLE_CODES
        )


def validate_request(obj: Any) -> dict:
    """Check the envelope and op-specific required fields; returns ``obj``.

    Raises :class:`ServeError` (``bad_request``) on any violation — field
    *values* (config names, env bindings) are validated by the handlers,
    which own the relevant namespaces.
    """
    if not isinstance(obj, dict):
        raise ServeError(BAD_REQUEST, "request must be a JSON object")
    op = obj.get("op")
    if op not in VALID_OPS:
        raise ServeError(
            BAD_REQUEST, f"unknown op {op!r}; expected one of {VALID_OPS}"
        )
    trace_id = obj.get("trace_id")
    if trace_id is not None and (
        not isinstance(trace_id, str)
        or not trace_id
        or len(trace_id) > MAX_TRACE_ID_LEN
    ):
        raise ServeError(
            BAD_REQUEST,
            f"'trace_id' must be a non-empty string of at most "
            f"{MAX_TRACE_ID_LEN} characters",
        )
    tenant = obj.get("tenant")
    if tenant is not None and (
        not isinstance(tenant, str)
        or not tenant
        or len(tenant) > MAX_TENANT_LEN
    ):
        raise ServeError(
            BAD_REQUEST,
            f"'tenant' must be a non-empty string of at most "
            f"{MAX_TENANT_LEN} characters",
        )
    if op == "trace":
        # Optional narrowing to one retained trace; optional Perfetto doc.
        if "perfetto" in obj and not isinstance(obj["perfetto"], bool):
            raise ServeError(BAD_REQUEST, "'perfetto' must be a boolean")
    if op == "drain":
        shard = obj.get("shard")
        if not isinstance(shard, int) or isinstance(shard, bool) or shard < 0:
            raise ServeError(
                BAD_REQUEST, "op 'drain' needs a non-negative 'shard' integer"
            )
        if "restart" in obj and not isinstance(obj["restart"], bool):
            raise ServeError(BAD_REQUEST, "'restart' must be a boolean")
    if op == "watch":
        interval_ms = obj.get("interval_ms")
        if interval_ms is not None and (
            not isinstance(interval_ms, (int, float))
            or isinstance(interval_ms, bool)
            or interval_ms <= 0
        ):
            raise ServeError(
                BAD_REQUEST, "'interval_ms' must be a positive number"
            )
        count = obj.get("count")
        if count is not None and (
            not isinstance(count, int) or isinstance(count, bool) or count < 1
        ):
            raise ServeError(BAD_REQUEST, "'count' must be a positive integer")
    if op in ("compile", "run", "tune"):
        source = obj.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServeError(BAD_REQUEST, f"op {op!r} needs a 'source' string")
        arch = obj.get("arch")
        if arch is not None and not isinstance(arch, str):
            raise ServeError(
                BAD_REQUEST, "'arch' must be a profile-name string"
            )
        saturate = obj.get("saturate")
        if saturate is not None and not isinstance(saturate, bool):
            raise ServeError(BAD_REQUEST, "'saturate' must be a boolean")
    if op == "tune":
        env = obj.get("env")
        if not isinstance(env, dict) or not env:
            raise ServeError(
                BAD_REQUEST,
                "op 'tune' needs a non-empty 'env' (the timing model "
                "evaluates trip counts at a concrete problem size)",
            )
        strategy = obj.get("strategy")
        if strategy is not None and not isinstance(strategy, str):
            raise ServeError(BAD_REQUEST, "'strategy' must be a string")
        budget = obj.get("budget")
        if budget is not None and (
            not isinstance(budget, int)
            or isinstance(budget, bool)
            or budget < 1
        ):
            raise ServeError(BAD_REQUEST, "'budget' must be a positive integer")
        launches = obj.get("launches")
        if launches is not None and (
            not isinstance(launches, int)
            or isinstance(launches, bool)
            or launches < 1
        ):
            raise ServeError(
                BAD_REQUEST, "'launches' must be a positive integer"
            )
    env = obj.get("env")
    if env is not None:
        if not isinstance(env, dict) or not all(
            isinstance(k, str) and isinstance(v, (int, float))
            for k, v in env.items()
        ):
            raise ServeError(
                BAD_REQUEST, "'env' must map names to numeric values"
            )
    deadline_ms = obj.get("deadline_ms")
    if deadline_ms is not None and (
        not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
    ):
        raise ServeError(BAD_REQUEST, "'deadline_ms' must be a positive number")
    return obj


def ok_response(
    request_id: Any, result: dict, *, trace_id: str | None = None
) -> dict:
    out: dict = {"id": request_id, "ok": True, "result": result}
    if trace_id is not None:
        out["trace_id"] = trace_id
    return out


def error_response(
    request_id: Any,
    code: str,
    message: str,
    *,
    retryable: bool | None = None,
    trace_id: str | None = None,
) -> dict:
    out: dict = {
        "id": request_id,
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "retryable": (
                retryable if retryable is not None else code in RETRYABLE_CODES
            ),
        },
    }
    if trace_id is not None:
        out["trace_id"] = trace_id
    return out
