"""Per-tenant admission quotas: token buckets keyed by the protocol's
``tenant`` field.

The router (:mod:`repro.serve.cluster`) charges one token per keyed
request before routing; an empty bucket yields the retryable
``quota_exceeded`` error code.  Buckets refill continuously at
``rate`` tokens/second up to a ``burst`` ceiling, so a tenant that sits
idle earns back at most one burst, not an unbounded backlog of credit.

Control-plane ops (``stats``, ``watch``, ``trace``, ``drain``,
``shutdown``) are never charged — an over-quota tenant can still
observe and operate the service.

The clock is injectable so tests can drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["TokenBucket", "TenantQuotas"]


class TokenBucket:
    """A continuously-refilling token bucket (thread-safe)."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; ``False`` (no partial debit)
        otherwise."""
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._refilled)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._refilled = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """The current (refill-adjusted) balance — diagnostic only."""
        with self._lock:
            elapsed = max(0.0, self._clock() - self._refilled)
            return min(self.burst, self._tokens + elapsed * self.rate)


class TenantQuotas:
    """One token bucket per tenant name, created on first sight.

    Requests without a ``tenant`` field are charged to ``default_tenant``
    so an anonymous flood cannot sidestep admission control.
    """

    #: Bucket charged for requests that carry no ``tenant`` field.
    default_tenant = "_anonymous"

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def try_acquire(self, tenant: str | None) -> bool:
        name = tenant if tenant else self.default_tenant
        with self._lock:
            bucket = self._buckets.get(name)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[name] = bucket
        return bucket.try_acquire()

    def snapshot(self) -> dict[str, float]:
        """Tenant → current token balance (for stats rollups)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {name: round(b.tokens, 3) for name, b in sorted(buckets.items())}
