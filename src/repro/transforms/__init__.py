"""Transformations: scalar replacement (Carr-Kennedy baseline and SAFARA)
plus the proposed ``dim``/``small`` clause semantics."""

from .autopar import AutoparReport, auto_parallelize
from .carr_kennedy import CarrKennedyReport, apply_carr_kennedy
from .dim_clause import DopeClasses, compute_dope_classes
from .licm import LicmReport, apply_licm
from .safara import (
    SafaraIteration,
    SafaraReport,
    apply_safara,
    collect_candidates,
)
from .scalar_replacement import (
    ReplacementError,
    ReplacementResult,
    can_replace,
    replace_group,
)
from .small_clause import SMALL_LIMIT_BYTES, offset_bits, small_arrays
from .unroll import UnrollError, UnrollReport, apply_unrolling, can_unroll, unroll_loop

__all__ = [
    "AutoparReport",
    "auto_parallelize",
    "CarrKennedyReport",
    "DopeClasses",
    "LicmReport",
    "apply_licm",
    "ReplacementError",
    "ReplacementResult",
    "SMALL_LIMIT_BYTES",
    "SafaraIteration",
    "SafaraReport",
    "apply_carr_kennedy",
    "apply_safara",
    "can_replace",
    "collect_candidates",
    "compute_dope_classes",
    "offset_bits",
    "replace_group",
    "small_arrays",
    "UnrollError",
    "UnrollReport",
    "apply_unrolling",
    "can_unroll",
    "unroll_loop",
]
